//! The concurrent serving runtime: a bounded multi-worker request
//! pipeline whose output byte stream is **identical to sequential
//! serving for every worker count**, plus the single-flight rescan cache
//! that keeps concurrent envelope misses from stampeding the kernel.
//!
//! # Pipeline shape
//!
//! ```text
//!            bounded queue                reorder buffer
//! reader ──▶ (seq, line) ──▶ worker ×N ──▶ (seq, json) ──▶ emitter ──▶ output
//!  tags           │             │                │            orders by seq,
//!  lines      blocks when   handle_line      BTreeMap,       writes + flushes
//!  with seq   full (back-   in parallel      workers may     one line at a
//!             pressure)                      finish out      time
//!                                            of order
//! ```
//!
//! The reader runs on the caller's thread: it tags every non-blank input
//! line with a sequence number and pushes it into a bounded queue
//! (capacity `4 × workers`, so a slow worker back-pressures the reader
//! instead of buffering the whole input). A [`std::thread::scope`] worker
//! pool pops lines, answers them through the same
//! `FleetService::handle_line` funnel the sequential loop uses, and
//! inserts the serialized responses into a reorder buffer. A dedicated
//! emitter thread drains that buffer strictly in sequence order, flushing
//! after **every** line so request/reply clients over a pipe never block
//! behind a buffered writer.
//!
//! # Why the bytes cannot drift
//!
//! Every response is a pure function of its request line and the loaded
//! store: the caches below are *deterministic* (they memoize pure
//! computations, never approximate them), counters do not feed back into
//! answers, and the emitter re-serializes strictly by sequence number.
//! Scheduling can only change *when* a response is computed, never *what*
//! it says or *where* it lands in the stream — the property the
//! `serve_pipeline` proptest pins across worker counts and shuffled
//! completion orders.
//!
//! # The single-flight rescan cache
//!
//! A model-only store answers an envelope-abstaining `Recommend` by
//! re-deriving the device's exact fault-count row with the coupled-carry
//! kernel — by far the most expensive operation the service performs.
//! [`RescanCache`] memoizes those rows per device (one kernel pass
//! derives the counts for **all** knots at once, so the device row is the
//! natural cache unit rather than a single `(device, knot)` cell) under
//! an LRU byte budget, and deduplicates concurrent misses: the first
//! requester becomes the flight leader and runs the kernel, every
//! concurrent requester for the same device blocks on the in-flight
//! result instead of rescanning — N identical concurrent misses perform
//! exactly one kernel rescan.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::api::ApiError;
use crate::config::FleetError;
use crate::serve::{FleetService, ServeStats};

/// Log₂ buckets in a [`LatencyStats`] histogram.
pub const LATENCY_BUCKETS: usize = 16;

/// Options for [`serve_concurrent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineOptions {
    /// Worker threads answering requests in parallel. Clamped to ≥ 1.
    pub workers: usize,
    /// Deterministic completion-order jitter for tests: when set, each
    /// worker sleeps a pseudo-random (seed, sequence)-hashed 0–2 ms before
    /// handing its response to the emitter, shuffling completion order
    /// without touching response bytes. Production callers leave this
    /// `None`.
    pub completion_jitter: Option<u64>,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            workers: 1,
            completion_jitter: None,
        }
    }
}

/// Per-request wall-time distribution in microseconds, measured from a
/// worker popping the line to its response being serialized.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Requests measured.
    pub count: u64,
    /// Sum of all request latencies, in microseconds.
    pub sum_us: u64,
    /// Fastest request (0 when nothing was measured).
    pub min_us: u64,
    /// Slowest request.
    pub max_us: u64,
    /// [`LATENCY_BUCKETS`] log₂ buckets: bucket `i > 0` counts latencies
    /// in `[2^(i−1), 2^i)` µs, bucket 0 counts sub-microsecond requests,
    /// the last bucket absorbs longer ones.
    pub log2_buckets: Vec<u64>,
}

/// Session stats returned by [`serve_concurrent`]: the service counters
/// plus the pipeline's own runtime accounting.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct PipelineStats {
    /// The service counters, identical in meaning to sequential serving.
    pub serve: ServeStats,
    /// Worker threads the session ran with.
    pub workers: usize,
    /// High-water mark of the bounded request queue — how far the reader
    /// ran ahead of the slowest worker before back-pressure engaged.
    pub queue_depth_max: u64,
    /// Per-request latency distribution.
    pub latency: LatencyStats,
}

/// The internal latency histogram behind [`LatencyStats`].
#[derive(Debug)]
struct LatencyHist {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; LATENCY_BUCKETS],
}

impl LatencyHist {
    const fn new() -> Self {
        LatencyHist {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; LATENCY_BUCKETS],
        }
    }

    fn record(&mut self, us: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(us);
        self.min = self.min.min(us);
        self.max = self.max.max(us);
        let bucket = (u64::BITS - us.leading_zeros()) as usize;
        self.buckets[bucket.min(LATENCY_BUCKETS - 1)] += 1;
    }

    fn stats(&self) -> LatencyStats {
        LatencyStats {
            count: self.count,
            sum_us: self.sum,
            min_us: if self.count == 0 { 0 } else { self.min },
            max_us: self.max,
            log2_buckets: self.buckets.to_vec(),
        }
    }
}

/// The bounded reader→worker queue.
#[derive(Debug)]
struct RequestQueue {
    state: Mutex<QueueState>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct QueueState {
    items: VecDeque<(u64, String)>,
    closed: bool,
    high_water: u64,
}

impl RequestQueue {
    fn new(capacity: usize) -> Self {
        RequestQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
                high_water: 0,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Blocks while the queue is full (back-pressure on the reader).
    fn push(&self, seq: u64, line: String) {
        let mut state = self.state.lock().expect("request queue poisoned");
        while state.items.len() >= self.capacity {
            state = self.not_full.wait(state).expect("request queue poisoned");
        }
        state.items.push_back((seq, line));
        state.high_water = state.high_water.max(state.items.len() as u64);
        self.not_empty.notify_one();
    }

    fn close(&self) {
        self.state.lock().expect("request queue poisoned").closed = true;
        self.not_empty.notify_all();
    }

    /// `None` once the queue is both drained and closed.
    fn pop(&self) -> Option<(u64, String)> {
        let mut state = self.state.lock().expect("request queue poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("request queue poisoned");
        }
    }

    fn high_water(&self) -> u64 {
        self.state
            .lock()
            .expect("request queue poisoned")
            .high_water
    }
}

/// The worker→emitter reorder buffer: responses keyed by sequence number,
/// drained strictly in order.
#[derive(Debug)]
struct Reorder {
    state: Mutex<ReorderState>,
    ready: Condvar,
}

#[derive(Debug)]
struct ReorderState {
    next: u64,
    pending: BTreeMap<u64, Result<String, ApiError>>,
    /// Total sequence numbers assigned, set by the reader at EOF; the
    /// emitter is done when `next` reaches it.
    total: Option<u64>,
}

impl Reorder {
    fn new() -> Self {
        Reorder {
            state: Mutex::new(ReorderState {
                next: 0,
                pending: BTreeMap::new(),
                total: None,
            }),
            ready: Condvar::new(),
        }
    }

    fn push(&self, seq: u64, response: Result<String, ApiError>) {
        self.state
            .lock()
            .expect("reorder buffer poisoned")
            .pending
            .insert(seq, response);
        self.ready.notify_all();
    }

    fn set_total(&self, total: u64) {
        self.state.lock().expect("reorder buffer poisoned").total = Some(total);
        self.ready.notify_all();
    }

    /// The next in-order response; `None` once every assigned sequence
    /// number has been emitted.
    fn next_in_order(&self) -> Option<Result<String, ApiError>> {
        let mut state = self.state.lock().expect("reorder buffer poisoned");
        loop {
            let next = state.next;
            if let Some(response) = state.pending.remove(&next) {
                state.next += 1;
                return Some(response);
            }
            if state.total == Some(next) {
                return None;
            }
            state = self.ready.wait(state).expect("reorder buffer poisoned");
        }
    }
}

/// SplitMix64 finalizer — the jitter hash for shuffled completion orders.
fn jitter_ns(seed: u64, seq: u64) -> u64 {
    let mut z = seed ^ seq.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (z ^ (z >> 31)) % 2_000_000
}

/// Runs the LDJSON request loop concurrently until EOF and returns the
/// session stats. The output byte stream is identical to
/// [`crate::serve::serve`] on the same input for every worker count: the
/// reader tags each line with a sequence number, workers answer in
/// parallel through the same per-line funnel, and the emitter
/// re-serializes responses strictly in sequence order, flushing after
/// every line.
///
/// # Errors
///
/// Only transport I/O errors (reading the input, writing or flushing the
/// output) abort the loop; request-level problems are answered in-band as
/// `Error` response lines, exactly as in sequential serving.
pub fn serve_concurrent(
    service: &FleetService,
    input: impl BufRead,
    mut output: impl Write + Send,
    options: &PipelineOptions,
) -> std::io::Result<PipelineStats> {
    let workers = options.workers.max(1);
    let queue = RequestQueue::new(workers * 4);
    let reorder = Reorder::new();
    let latency = Mutex::new(LatencyHist::new());

    let io_result: std::io::Result<()> = std::thread::scope(|scope| {
        let emitter = scope.spawn(|| -> std::io::Result<()> {
            while let Some(response) = reorder.next_in_order() {
                let json = response.map_err(|err| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, err.message)
                })?;
                writeln!(output, "{json}")?;
                output.flush()?;
            }
            Ok(())
        });
        for _ in 0..workers {
            scope.spawn(|| {
                while let Some((seq, line)) = queue.pop() {
                    let start = Instant::now();
                    let response = service.handle_line(&line);
                    let elapsed_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
                    latency
                        .lock()
                        .expect("latency histogram poisoned")
                        .record(elapsed_us);
                    if let Some(seed) = options.completion_jitter {
                        std::thread::sleep(std::time::Duration::from_nanos(jitter_ns(seed, seq)));
                    }
                    reorder.push(seq, response);
                }
            });
        }

        // The reader runs on the caller's thread.
        let mut seq = 0u64;
        let mut read_error = None;
        for line in input.lines() {
            match line {
                Ok(line) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    queue.push(seq, line);
                    seq += 1;
                }
                Err(err) => {
                    read_error = Some(err);
                    break;
                }
            }
        }
        queue.close();
        reorder.set_total(seq);
        let emit_result = emitter.join().expect("emitter thread panicked");
        match read_error {
            Some(err) => Err(err),
            None => emit_result,
        }
    });
    io_result?;

    let latency_stats = latency.lock().expect("latency histogram poisoned").stats();
    Ok(PipelineStats {
        serve: service.stats(),
        workers,
        queue_depth_max: queue.high_water(),
        latency: latency_stats,
    })
}

/// Heap overhead charged per cache entry on top of the raw count bytes
/// (map slot, `Arc` header, bookkeeping) — keeps the byte budget honest
/// for small rows.
const ENTRY_OVERHEAD_BYTES: usize = 64;

/// Counter snapshot of a [`RescanCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct RescanCacheCounters {
    pub hits: u64,
    pub kernel_rescans: u64,
    pub evictions: u64,
    pub singleflight_waits: u64,
}

/// The single-flight, LRU-byte-bounded rescan cache.
///
/// Keys are device IDs: one kernel pass re-derives a device's exact
/// fault-count row for every knot at once, so the row is the cache unit.
/// A byte budget of 0 disables caching *and* single-flight entirely —
/// every call runs the kernel (the uncached baseline the serve-throughput
/// bench compares against).
///
/// Determinism: the cache memoizes a pure function of `(store, device)`,
/// so a hit returns byte-identical counts to a fresh rescan; hit/wait
/// *counters* are scheduling-dependent (like every other metric), but
/// answers never are.
#[derive(Debug)]
pub(crate) struct RescanCache {
    budget_bytes: usize,
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    kernel_rescans: AtomicU64,
    evictions: AtomicU64,
    singleflight_waits: AtomicU64,
}

#[derive(Debug)]
struct CacheInner {
    ready: HashMap<u32, CacheEntry>,
    inflight: HashMap<u32, Arc<Flight>>,
    bytes: usize,
    tick: u64,
}

#[derive(Debug)]
struct CacheEntry {
    counts: Arc<Vec<u16>>,
    bytes: usize,
    last_used: u64,
}

/// One in-flight rescan: the leader publishes the result, waiters block
/// on the condvar.
#[derive(Debug)]
struct Flight {
    done: Mutex<Option<Result<Arc<Vec<u16>>, FleetError>>>,
    finished: Condvar,
}

impl RescanCache {
    pub(crate) fn new(budget_bytes: usize) -> Self {
        RescanCache {
            budget_bytes,
            inner: Mutex::new(CacheInner {
                ready: HashMap::new(),
                inflight: HashMap::new(),
                bytes: 0,
                tick: 0,
            }),
            hits: AtomicU64::new(0),
            kernel_rescans: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            singleflight_waits: AtomicU64::new(0),
        }
    }

    pub(crate) fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    pub(crate) fn counters(&self) -> RescanCacheCounters {
        RescanCacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            kernel_rescans: self.kernel_rescans.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            singleflight_waits: self.singleflight_waits.load(Ordering::Relaxed),
        }
    }

    /// The memoized count row for `key`, computing it at most once across
    /// concurrent callers. `compute` must be a pure function of `key` (it
    /// is for kernel rescans: counts derive from `(config, device_id)`
    /// alone).
    pub(crate) fn get_or_rescan(
        &self,
        key: u32,
        compute: impl FnOnce() -> Result<Vec<u16>, FleetError>,
    ) -> Result<Arc<Vec<u16>>, FleetError> {
        if self.budget_bytes == 0 {
            self.kernel_rescans.fetch_add(1, Ordering::Relaxed);
            return compute().map(Arc::new);
        }

        let flight = {
            let mut inner = self.inner.lock().expect("rescan cache poisoned");
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.ready.get_mut(&key) {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(entry.counts.clone());
            }
            if let Some(flight) = inner.inflight.get(&key) {
                // Someone else is already rescanning this device: wait for
                // their result instead of stampeding the kernel.
                let flight = flight.clone();
                drop(inner);
                self.singleflight_waits.fetch_add(1, Ordering::Relaxed);
                let mut done = flight.done.lock().expect("flight poisoned");
                while done.is_none() {
                    done = flight.finished.wait(done).expect("flight poisoned");
                }
                return done.clone().expect("flight resolved");
            }
            let flight = Arc::new(Flight {
                done: Mutex::new(None),
                finished: Condvar::new(),
            });
            inner.inflight.insert(key, flight.clone());
            flight
        };

        // This caller is the flight leader: run the kernel outside the
        // cache lock, publish to waiters, then install the entry.
        self.kernel_rescans.fetch_add(1, Ordering::Relaxed);
        let result = compute().map(Arc::new);
        *flight.done.lock().expect("flight poisoned") = Some(result.clone());
        flight.finished.notify_all();

        let mut inner = self.inner.lock().expect("rescan cache poisoned");
        inner.inflight.remove(&key);
        if let Ok(counts) = &result {
            let bytes = counts.len() * std::mem::size_of::<u16>() + ENTRY_OVERHEAD_BYTES;
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(old) = inner.ready.insert(
                key,
                CacheEntry {
                    counts: counts.clone(),
                    bytes,
                    last_used: tick,
                },
            ) {
                inner.bytes -= old.bytes;
            }
            inner.bytes += bytes;
            while inner.bytes > self.budget_bytes {
                let victim = inner
                    .ready
                    .iter()
                    .min_by_key(|(_, entry)| entry.last_used)
                    .map(|(&key, _)| key);
                let Some(victim) = victim else { break };
                let evicted = inner.ready.remove(&victim).expect("victim present");
                inner.bytes -= evicted.bytes;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;

    fn row(fill: u16) -> Vec<u16> {
        vec![fill; 8]
    }

    #[test]
    fn single_flight_runs_compute_exactly_once_across_concurrent_misses() {
        let cache = RescanCache::new(1 << 20);
        let computed = AtomicU64::new(0);
        let threads = 8;
        let barrier = Barrier::new(threads);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    barrier.wait();
                    let counts = cache
                        .get_or_rescan(42, || {
                            // Hold the flight open long enough that the other
                            // threads arrive while it is still in flight.
                            std::thread::sleep(std::time::Duration::from_millis(25));
                            computed.fetch_add(1, Ordering::SeqCst);
                            Ok(row(7))
                        })
                        .unwrap();
                    assert_eq!(*counts, row(7));
                });
            }
        });
        assert_eq!(computed.load(Ordering::SeqCst), 1, "one kernel rescan");
        let counters = cache.counters();
        assert_eq!(counters.kernel_rescans, 1);
        assert_eq!(
            counters.hits + counters.singleflight_waits,
            threads as u64 - 1,
            "every non-leader either waited on the flight or hit the cache: {counters:?}"
        );
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget() {
        // Budget fits exactly one 8-count row (16 B + overhead).
        let cache = RescanCache::new(row(0).len() * 2 + ENTRY_OVERHEAD_BYTES);
        cache.get_or_rescan(1, || Ok(row(1))).unwrap();
        cache.get_or_rescan(2, || Ok(row(2))).unwrap(); // evicts 1
        cache.get_or_rescan(1, || Ok(row(1))).unwrap(); // miss again
        let counters = cache.counters();
        assert_eq!(counters.kernel_rescans, 3);
        assert_eq!(counters.hits, 0);
        assert!(counters.evictions >= 2, "{counters:?}");
    }

    #[test]
    fn zero_budget_disables_caching_and_single_flight() {
        let cache = RescanCache::new(0);
        cache.get_or_rescan(1, || Ok(row(1))).unwrap();
        cache.get_or_rescan(1, || Ok(row(1))).unwrap();
        let counters = cache.counters();
        assert_eq!(counters.kernel_rescans, 2);
        assert_eq!(counters.hits, 0);
    }

    #[test]
    fn errors_propagate_to_leader_and_waiters_and_are_not_cached() {
        let cache = RescanCache::new(1 << 20);
        let err = cache.get_or_rescan(9, || Err(FleetError::Artifact("boom".into())));
        assert!(matches!(err, Err(FleetError::Artifact(_))));
        // The failure was not installed: the next call recomputes.
        let ok = cache.get_or_rescan(9, || Ok(row(3))).unwrap();
        assert_eq!(*ok, row(3));
        assert_eq!(cache.counters().kernel_rescans, 2);
    }
}
