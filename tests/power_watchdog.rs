//! Integration test: the INA226 alert subsystem as a power/brown-out
//! watchdog over the undervolted platform — host-style supervision built
//! from the same register-level pieces the study's measurement loop uses.

use hbm_undervolt_suite::units::{Amperes, Volts, Watts};
use hbm_undervolt_suite::vreg::{Ina226, ALERT_FUNCTION_FLAG, CONVERSION_READY_FLAG};

#[test]
fn power_budget_watchdog_catches_overdraw() {
    // Supervise a 7 W budget on the VCC_HBM rail.
    let mut monitor = Ina226::vcc_hbm(77);
    monitor.arm_power_alert(Watts(7.0));

    // Nominal full-load operation: 9 W at 1.2 V exceeds the budget.
    monitor.set_input(Volts(1.2), Amperes(9.0 / 1.2));
    monitor.convert();
    assert!(monitor.alert_asserted(), "9 W must trip a 7 W budget");

    // Undervolted to 0.98 V the same workload draws 6 W: inside budget.
    let mut monitor = Ina226::vcc_hbm(78);
    monitor.arm_power_alert(Watts(7.0));
    monitor.set_input(Volts(0.98), Amperes(6.0 / 0.98));
    monitor.convert();
    assert!(
        !monitor.alert_asserted(),
        "the 1.5x undervolting saving brings the workload inside the budget"
    );
}

#[test]
fn brownout_watchdog_catches_rail_sag() {
    use hbm_undervolt_suite::vreg::Ina226Register;

    let mut monitor = Ina226::vcc_hbm(79);
    monitor.arm_bus_undervoltage_alert(Volts(0.98));

    // Healthy rail.
    monitor.set_input(Volts(1.0), Amperes(4.0));
    monitor.convert();
    let mask = monitor.read_register(Ina226Register::MaskEnable);
    assert_ne!(mask & CONVERSION_READY_FLAG, 0);
    assert_eq!(mask & ALERT_FUNCTION_FLAG, 0);

    // A droop event below the guardband floor latches the alert, and it
    // stays latched even after the rail recovers — the host sees it on the
    // next poll regardless of timing.
    monitor.set_input(Volts(0.96), Amperes(4.0));
    monitor.convert();
    monitor.set_input(Volts(1.0), Amperes(4.0));
    monitor.convert();
    assert!(monitor.alert_asserted(), "brown-out must stay latched");
}
