//! Dimensionless ratios (fault rates, utilizations, savings factors).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A dimensionless ratio in `[0, +∞)`, typically in `[0, 1]`.
///
/// Used for fault rates (fraction of faulty bits), bandwidth utilizations and
/// power-saving factors. The type deliberately does *not* clamp to `[0, 1]`
/// because savings factors (e.g. the study's 2.3×) exceed one.
///
/// # Examples
///
/// ```
/// use hbm_units::Ratio;
///
/// let fault_rate = Ratio::from_percent(0.0001);
/// assert_eq!(fault_rate.as_f64(), 1e-6);
/// assert_eq!(format!("{}", Ratio(0.5).display_percent()), "50%");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Ratio(pub f64);

impl Ratio {
    /// Zero.
    pub const ZERO: Ratio = Ratio(0.0);
    /// One (100 %).
    pub const ONE: Ratio = Ratio(1.0);

    /// Builds a ratio from a percentage (`50.0` → `0.5`).
    #[must_use]
    pub fn from_percent(percent: f64) -> Self {
        Ratio(percent / 100.0)
    }

    /// Returns the raw fraction.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// Returns the value as a percentage (`0.5` → `50.0`).
    #[must_use]
    pub fn as_percent(self) -> f64 {
        self.0 * 100.0
    }

    /// Clamps into `[0, 1]`.
    #[must_use]
    pub fn clamp_unit(self) -> Ratio {
        Ratio(self.0.clamp(0.0, 1.0))
    }

    /// Returns the smaller of two ratios.
    #[must_use]
    pub fn min(self, other: Ratio) -> Ratio {
        Ratio(self.0.min(other.0))
    }

    /// Returns the larger of two ratios.
    #[must_use]
    pub fn max(self, other: Ratio) -> Ratio {
        Ratio(self.0.max(other.0))
    }

    /// A helper that formats the ratio as a percentage with a trailing `%`.
    ///
    /// Uses as many digits as needed for small rates (`1e-6` → `0.0001%`),
    /// and plain formatting for large ones.
    #[must_use]
    pub fn display_percent(self) -> DisplayPercent {
        DisplayPercent(self)
    }
}

/// Displays a [`Ratio`] as a percentage. Created by [`Ratio::display_percent`].
#[derive(Debug, Clone, Copy)]
pub struct DisplayPercent(Ratio);

impl fmt::Display for DisplayPercent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let pct = self.0.as_percent();
        if pct == 0.0 {
            write!(f, "0%")
        } else if pct.abs() >= 0.01 {
            // Trim trailing zeros from a fixed representation.
            let s = format!("{pct:.4}");
            let s = s.trim_end_matches('0').trim_end_matches('.');
            write!(f, "{s}%")
        } else {
            // Round the mantissa so binary-representation noise (e.g.
            // 9.99…e-5 for the exact rate 1e-4 %) does not leak into output.
            write!(f, "{pct:.0e}%")
        }
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(precision) = f.precision() {
            write!(f, "{:.*}", precision, self.0)
        } else {
            write!(f, "{}", self.0)
        }
    }
}

impl Add for Ratio {
    type Output = Ratio;
    fn add(self, rhs: Ratio) -> Ratio {
        Ratio(self.0 + rhs.0)
    }
}

impl Sub for Ratio {
    type Output = Ratio;
    fn sub(self, rhs: Ratio) -> Ratio {
        Ratio(self.0 - rhs.0)
    }
}

impl Mul for Ratio {
    type Output = Ratio;
    fn mul(self, rhs: Ratio) -> Ratio {
        Ratio(self.0 * rhs.0)
    }
}

impl Mul<f64> for Ratio {
    type Output = Ratio;
    fn mul(self, rhs: f64) -> Ratio {
        Ratio(self.0 * rhs)
    }
}

impl Div<f64> for Ratio {
    type Output = Ratio;
    fn div(self, rhs: f64) -> Ratio {
        Ratio(self.0 / rhs)
    }
}

impl Sum for Ratio {
    fn sum<I: Iterator<Item = Ratio>>(iter: I) -> Ratio {
        Ratio(iter.map(|x| x.0).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_round_trip() {
        let r = Ratio::from_percent(12.5);
        assert_eq!(r.as_f64(), 0.125);
        assert_eq!(r.as_percent(), 12.5);
    }

    #[test]
    fn display_percent_formats() {
        assert_eq!(Ratio(0.5).display_percent().to_string(), "50%");
        assert_eq!(Ratio(0.0).display_percent().to_string(), "0%");
        assert_eq!(Ratio(0.0001).display_percent().to_string(), "0.01%");
        assert_eq!(Ratio(1e-6).display_percent().to_string(), "1e-4%");
        assert_eq!(Ratio(0.21).display_percent().to_string(), "21%");
    }

    #[test]
    fn clamp_unit() {
        assert_eq!(Ratio(1.5).clamp_unit(), Ratio::ONE);
        assert_eq!(Ratio(-0.5).clamp_unit(), Ratio::ZERO);
        assert_eq!(Ratio(0.3).clamp_unit(), Ratio(0.3));
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Ratio(0.25) + Ratio(0.25), Ratio(0.5));
        assert_eq!(Ratio(0.5) * Ratio(0.5), Ratio(0.25));
        assert_eq!(Ratio(0.5) * 2.0, Ratio::ONE);
        assert_eq!(Ratio(0.5).max(Ratio(0.75)), Ratio(0.75));
        assert_eq!(Ratio(0.5).min(Ratio(0.75)), Ratio(0.5));
    }
}
