//! The fleet engine's hard guarantee, pinned at the workspace tier: the
//! work-stealing multi-device sweep produces bit-identical records,
//! artifacts and population statistics for every worker count and
//! scheduling order, and `hbmctl fleet` results therefore depend only on
//! `(config, device_id)`.

use hbm_undervolt_suite::fleet::{
    artifact, characterize_device, sweep, ArtifactMeta, FleetConfig, FleetCostModel,
    PopulationSummary,
};
use hbm_units::Millivolts;

fn fleet_config(workers: usize) -> FleetConfig {
    FleetConfig {
        devices: 24,
        base_seed: 7,
        workers,
        words_per_pc: 8,
        from: Millivolts(960),
        down_to: Millivolts(820),
        step: Millivolts(20),
        weak_reference: Millivolts(900),
        ..FleetConfig::default()
    }
}

#[test]
fn fleet_records_are_identical_across_worker_counts() {
    let baseline = sweep::run(&fleet_config(1)).unwrap();
    for workers in [2, 3, 8] {
        let report = sweep::run(&fleet_config(workers)).unwrap();
        assert_eq!(
            report.records, baseline.records,
            "{workers} workers diverged from the sequential run"
        );
    }
}

#[test]
fn fleet_artifact_and_summary_are_schedule_independent() {
    let cfg = fleet_config(4);
    let forward = sweep::run(&cfg).unwrap();

    // Workers encountering devices in reverse order must merge to the
    // same artifact bytes and the same population roll-up.
    let reversed: Vec<u32> = (0..cfg.devices).rev().collect();
    let backward = sweep::run_scheduled(&cfg, &reversed, characterize_device).unwrap();

    assert_eq!(
        artifact::encode(&cfg, &forward.records),
        artifact::encode(&cfg, &backward.records)
    );
    let meta = ArtifactMeta::from_config(&cfg);
    let cost = FleetCostModel::default();
    assert_eq!(
        PopulationSummary::from_records(&meta, &forward.records, &cost),
        PopulationSummary::from_records(&meta, &backward.records, &cost)
    );
}

#[test]
fn every_device_is_swept_exactly_once() {
    let cfg = fleet_config(0);
    let report = sweep::run(&cfg).unwrap();
    assert_eq!(report.records.len(), cfg.devices as usize);
    assert_eq!(report.stats.devices_swept, u64::from(cfg.devices));
    for (i, record) in report.records.iter().enumerate() {
        assert_eq!(record.device_id, i as u32, "records sorted by device ID");
    }
}
