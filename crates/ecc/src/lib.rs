//! Mitigation extensions for HBM undervolting faults.
//!
//! The DATE 2021 study characterizes reduced-voltage bit flips and proposes
//! a three-factor trade-off; its related work (built-in ECC evaluation on
//! FPGAs, heterogeneous-reliability memory) points at two mitigation
//! routes this crate implements on top of the workspace's fault model:
//!
//! - [`Hamming7264`]: the classic SEC-DED code used by server memory —
//!   single-error correction, double-error detection per 64-bit lane —
//!   and [`EccPort`], a [`MemoryPort`](hbm_traffic::MemoryPort) adapter
//!   that stores check bits in a dedicated region of the pseudo channel
//!   and transparently corrects undervolting flips on the read path;
//! - [`HealthMap`] / region remapping: using the deterministic fault map to
//!   *avoid* weak rows instead of correcting them, which turns the paper's
//!   PC-granular capacity trade-off (Fig. 6) into a row-region-granular
//!   one with much finer capacity steps.
//!
//! # Example: how much further does ECC let you undervolt?
//!
//! ```
//! use hbm_device::{HbmGeometry, PcIndex, WordOffset, Word256};
//! use hbm_ecc::{EccPort, EccStats};
//! use hbm_faults::{FaultInjector, FaultModelParams};
//! use hbm_traffic::MemoryPort;
//! use hbm_units::Millivolts;
//!
//! # fn main() -> Result<(), hbm_device::DeviceError> {
//! // A standalone fault-injecting port stub for the example:
//! struct Faulty {
//!     injector: FaultInjector,
//!     stored: std::collections::HashMap<u64, Word256>,
//!     supply: Millivolts,
//! }
//! impl MemoryPort for Faulty {
//!     fn write(&mut self, o: WordOffset, w: Word256) -> Result<(), hbm_device::DeviceError> {
//!         self.stored.insert(o.0, w);
//!         Ok(())
//!     }
//!     fn read(&mut self, o: WordOffset) -> Result<Word256, hbm_device::DeviceError> {
//!         let stored = self.stored.get(&o.0).copied().unwrap_or(Word256::ZERO);
//!         Ok(self.injector.observe(stored, PcIndex::new(0)?, o, self.supply))
//!     }
//! }
//!
//! let inner = Faulty {
//!     injector: FaultInjector::new(
//!         FaultModelParams::date21(),
//!         HbmGeometry::vcu128_reduced(),
//!         7,
//!     ),
//!     stored: Default::default(),
//!     supply: Millivolts(900),
//! };
//! let mut port = EccPort::new(inner, 4096);
//! port.write(WordOffset(0), Word256::ONES)?;
//! let read = port.read(WordOffset(0))?;
//! assert_eq!(read, Word256::ONES, "sparse flips at 0.90 V are corrected");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hamming;
mod port;
mod remap;

pub use hamming::{DecodeOutcome, Hamming7264};
pub use port::{EccError, EccPort, EccStats};
pub use remap::{HealthMap, RegionHealth, RemapPlan};
