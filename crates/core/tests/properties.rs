//! Property-based tests for the core experiment machinery.

use hbm_undervolt::stats::{margin_for_runs, required_runs, z_value};
use hbm_undervolt::{Platform, UndervoltGovernor, VoltageSweep};
use hbm_units::Millivolts;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sweep construction: every valid (from, down_to, step) triple yields
    /// a descending sweep covering both endpoints with the exact step.
    #[test]
    fn sweep_structure(
        down_to in 810u32..1100,
        steps in 1u32..40,
        step in 1u32..50,
    ) {
        let from = down_to + steps * step;
        prop_assume!(from <= 1300);
        let sweep = VoltageSweep::new(
            Millivolts(from),
            Millivolts(down_to),
            Millivolts(step),
        ).unwrap();
        let points: Vec<Millivolts> = sweep.iter().collect();
        prop_assert_eq!(points.len(), sweep.len());
        prop_assert_eq!(points.len(), steps as usize + 1);
        prop_assert_eq!(points[0], Millivolts(from));
        prop_assert_eq!(*points.last().unwrap(), Millivolts(down_to));
        prop_assert!(points.windows(2).all(|w| w[0] - w[1] == Millivolts(step)));
    }

    /// Statistical sizing: margin_for_runs and required_runs are mutually
    /// consistent inverses at any confidence and margin.
    #[test]
    fn stats_inverse_consistency(
        margin in 0.005f64..0.3,
        confidence in 0.5f64..0.999,
    ) {
        let runs = required_runs(margin, confidence);
        // The computed run count achieves the requested margin …
        prop_assert!(margin_for_runs(runs, confidence) <= margin + 1e-12);
        // … and one run fewer would not (modulo the ceil boundary).
        if runs > 1 {
            prop_assert!(margin_for_runs(runs - 1, confidence) > margin - 1e-9);
        }
        // z is positive and increasing in confidence.
        prop_assert!(z_value(confidence) > 0.0);
    }

    /// The governor's settled voltage on any specimen is clean, above the
    /// floor and at most nominal.
    #[test]
    fn governor_contract(seed in any::<u64>()) {
        let mut platform = Platform::builder().seed(seed).build();
        let governor = UndervoltGovernor::default();
        let outcome = governor.run(&mut platform).unwrap();
        prop_assert!(outcome.settled >= Millivolts(840));
        prop_assert!(outcome.settled <= Millivolts(1200));
        prop_assert!(outcome.lowest_clean <= Millivolts(1200));
        prop_assert!(!platform.is_crashed());
        prop_assert_eq!(platform.voltage(), outcome.settled);
        if let Some(trip) = outcome.tripped_at {
            prop_assert!(trip < outcome.lowest_clean);
        }
    }
}
