//! The `hbmctl` exit-code contract: 0 for success, 1 for runtime failures
//! (experiment, device or I/O errors), 2 for configuration/usage errors.

use std::process::{Command, Output};

fn hbmctl(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_hbmctl"))
        .args(args)
        .output()
        .expect("spawn hbmctl")
}

fn exit_code(output: &Output) -> i32 {
    output.status.code().expect("hbmctl terminated by signal")
}

fn temp_path(stem: &str) -> String {
    std::env::temp_dir()
        .join(format!("hbmctl-cli-{stem}-{}.json", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

#[test]
fn success_exits_zero() {
    let out = hbmctl(&[
        "sweep", "--from", "900", "--to", "890", "--step", "10", "--words", "8",
    ]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("0.90"), "report printed: {stdout}");
}

#[test]
fn configuration_errors_exit_two_with_usage() {
    for args in [
        vec![],
        vec!["no-such-command"],
        vec!["sweep", "--from", "abc"],
        vec!["sweep", "--from", "-900"],
        vec!["sweep", "--from", "-0.0V"],
        vec!["sweep", "--retries"],
        vec!["reliability", "--kernel", "warp"],
        vec!["reliability", "--exec", "warp"],
        vec!["sweep", "--kernel", "cached"],
        vec!["sweep", "--fault-field", "warp"],
        vec!["guardband", "--format", "xml"],
        vec!["sweep", "--from", "900", "--to", "910", "--step", "10"],
        vec!["governor", "--workload", "warp"],
        vec!["governor", "--latency-budget", "abc"],
        vec!["governor", "--format", "xml"],
        vec![
            "plan",
            "--capacity-gb",
            "4",
            "--tolerance",
            "0.001",
            "--workload",
            "both",
        ],
    ] {
        let out = hbmctl(&args);
        assert_eq!(exit_code(&out), 2, "args {args:?}: {out:?}");
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(stderr.contains("usage:"), "args {args:?}: {stderr}");
    }
}

/// The default `governor` run is the two-row latency-vs-throughput
/// scenario; the CSV pins the headline result — a tight latency budget
/// stops the descent at a strictly higher voltage than a flip-only
/// throughput descent on the same seed.
#[test]
fn governor_latency_budget_settles_higher_from_the_cli() {
    let out = hbmctl(&["governor", "--format", "csv"]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let mut lines = stdout.lines();
    let header = lines.next().expect("csv header");
    assert!(
        header.starts_with("scenario,workload,settled_mv"),
        "{header}"
    );
    let rows: Vec<Vec<&str>> = lines.map(|l| l.split(',').collect()).collect();
    assert_eq!(rows.len(), 2, "{stdout}");
    assert_eq!(rows[0][1], "throughput", "{stdout}");
    assert_eq!(rows[1][1], "latency", "{stdout}");
    let settled = |row: &[&str]| row[2].parse::<u32>().expect("settled_mv");
    assert!(
        settled(&rows[1]) > settled(&rows[0]),
        "latency row must settle higher: {stdout}"
    );
    assert_eq!(rows[1][5], "latency-budget", "{stdout}");
}

/// A single-workload governor run produces one row under that mode, and
/// the text rendering names the trip.
#[test]
fn single_workload_governor_runs_one_descent() {
    let out = hbmctl(&["governor", "--workload", "throughput"]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("closed-loop governor"), "{stdout}");
    assert!(stdout.contains("throughput"), "{stdout}");
    assert!(!stdout.contains("latency-budget"), "{stdout}");
}

/// `plan` reports the timing axis, and an impossible latency budget is a
/// runtime failure (no swept voltage can meet 1 ns), not a usage error.
#[test]
fn latency_budgeted_plan_reports_the_timing_axis() {
    let out = hbmctl(&[
        "plan",
        "--capacity-gb",
        "4",
        "--tolerance",
        "0.0001",
        "--workload",
        "latency",
    ]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("delivered"), "{stdout}");
    assert!(stdout.contains("access latency"), "{stdout}");
    assert!(stdout.contains("latency pattern"), "{stdout}");

    let out = hbmctl(&[
        "plan",
        "--capacity-gb",
        "4",
        "--tolerance",
        "0.0001",
        "--workload",
        "latency",
        "--latency-budget",
        "1",
    ]);
    assert_eq!(exit_code(&out), 1, "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(!stderr.contains("usage:"), "{stderr}");
    assert!(stderr.contains("timing constraints"), "{stderr}");
}

#[test]
fn runtime_errors_exit_one_without_usage() {
    // An 8 GB device can never provide 100 GB: the planner fails at runtime.
    let out = hbmctl(&["plan", "--capacity-gb", "100", "--tolerance", "0.001"]);
    assert_eq!(exit_code(&out), 1, "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(!stderr.contains("usage:"), "{stderr}");
}

#[test]
fn foreign_checkpoint_is_a_runtime_error() {
    let path = temp_path("foreign");
    let _ = std::fs::remove_file(&path);
    let base = [
        "sweep", "--from", "900", "--to", "890", "--step", "10", "--words", "8",
    ];

    let mut first = base.to_vec();
    first.extend(["--seed", "1", "--checkpoint", &path]);
    assert_eq!(exit_code(&hbmctl(&first)), 0);

    // Resuming the same file under a different seed must be refused.
    let mut second = base.to_vec();
    second.extend(["--seed", "2", "--checkpoint", &path, "--resume"]);
    let out = hbmctl(&second);
    let _ = std::fs::remove_file(&path);
    assert_eq!(exit_code(&out), 1, "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("seed"), "{stderr}");
}

#[test]
fn cross_fault_field_resume_is_a_configuration_error() {
    let path = temp_path("cross-field");
    let _ = std::fs::remove_file(&path);
    let base = [
        "sweep", "--from", "900", "--to", "890", "--step", "10", "--words", "8",
    ];

    // Checkpoint a run under the default (per-voltage) fault field …
    let mut first = base.to_vec();
    first.extend(["--checkpoint", &path]);
    assert_eq!(exit_code(&hbmctl(&first)), 0);

    // … then ask to resume it under the coupled field: the points would
    // mix two different fault universes, so this is refused up front as a
    // usage error (exit 2), not a runtime failure.
    let mut second = base.to_vec();
    second.extend([
        "--fault-field",
        "coupled",
        "--checkpoint",
        &path,
        "--resume",
    ]);
    let out = hbmctl(&second);
    let _ = std::fs::remove_file(&path);
    assert_eq!(exit_code(&out), 2, "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("fault-field"), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn cross_kernel_resume_is_a_configuration_error() {
    let path = temp_path("cross-kernel");
    let _ = std::fs::remove_file(&path);
    let base = [
        "sweep", "--from", "900", "--to", "890", "--step", "10", "--words", "8",
    ];

    // Checkpoint a run under the default (auto) kernel backend …
    let mut first = base.to_vec();
    first.extend(["--checkpoint", &path]);
    assert_eq!(exit_code(&hbmctl(&first)), 0);

    // … then ask to resume it with the scalar backend: though backends are
    // bit-identical, a campaign must stay reproducible by its recorded
    // configuration alone, so the mix is refused as a usage error.
    let mut second = base.to_vec();
    second.extend(["--kernel", "scalar", "--checkpoint", &path, "--resume"]);
    let out = hbmctl(&second);
    let _ = std::fs::remove_file(&path);
    assert_eq!(exit_code(&out), 2, "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("kernel"), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn bitsliced_kernel_sweep_matches_scalar_from_the_cli() {
    let base = [
        "sweep", "--from", "870", "--to", "840", "--step", "10", "--words", "64", "--format", "csv",
    ];
    let run = |kernel: &str| {
        let mut args = base.to_vec();
        args.extend(["--kernel", kernel]);
        let out = hbmctl(&args);
        assert_eq!(exit_code(&out), 0, "--kernel {kernel}: {out:?}");
        String::from_utf8(out.stdout).unwrap()
    };
    assert_eq!(run("scalar"), run("bitsliced"), "CSV reports diverged");
}

#[test]
fn coupled_sweep_succeeds_from_the_cli() {
    let out = hbmctl(&[
        "sweep",
        "--fault-field",
        "coupled",
        "--from",
        "900",
        "--to",
        "890",
        "--step",
        "10",
        "--words",
        "8",
    ]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("0.90"), "report printed: {stdout}");
}

#[test]
fn fleet_usage_mistakes_exit_two_with_usage() {
    let dir = std::env::temp_dir();
    let dir = dir.to_str().unwrap();
    for args in [
        vec!["fleet"],
        vec!["fleet", "frobnicate"],
        vec!["fleet", "sweep", "--devices", "0"],
        vec!["fleet", "sweep", "--devices", "abc"],
        // 256 words per PC would overflow the artifact's u16 count column.
        vec!["fleet", "sweep", "--devices", "2", "--words", "256"],
        vec!["fleet", "sweep", "--devices", "2", "--out", ""],
        vec!["fleet", "sweep", "--devices", "2", "--out", dir],
        vec!["fleet", "query", "--device", "0"],
        vec!["fleet", "query", "--artifact", "", "--device", "0"],
        vec!["fleet", "query", "--artifact", dir, "--device", "0"],
        vec!["fleet", "summary"],
        vec!["fleet", "export", "--artifact", dir],
    ] {
        let out = hbmctl(&args);
        assert_eq!(exit_code(&out), 2, "args {args:?}: {out:?}");
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(stderr.contains("usage:"), "args {args:?}: {stderr}");
    }
}

#[test]
fn fleet_artifact_read_failures_exit_one_without_usage() {
    let missing = temp_path("fleet-missing");
    let _ = std::fs::remove_file(&missing);
    let garbage = temp_path("fleet-garbage");
    std::fs::write(&garbage, b"not an HBFA artifact").unwrap();

    for args in [
        vec!["fleet", "summary", "--artifact", missing.as_str()],
        vec!["fleet", "summary", "--artifact", garbage.as_str()],
        vec!["fleet", "export", "--artifact", garbage.as_str()],
        vec![
            "fleet",
            "query",
            "--artifact",
            garbage.as_str(),
            "--device",
            "0",
        ],
    ] {
        let out = hbmctl(&args);
        assert_eq!(exit_code(&out), 1, "args {args:?}: {out:?}");
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(!stderr.contains("usage:"), "args {args:?}: {stderr}");
    }
    let _ = std::fs::remove_file(&garbage);
}

#[test]
fn fleet_sweep_query_export_round_trip() {
    let artifact = temp_path("fleet-artifact");
    let _ = std::fs::remove_file(&artifact);

    let out = hbmctl(&[
        "fleet",
        "sweep",
        "--devices",
        "4",
        "--words",
        "8",
        "--out",
        &artifact,
    ]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("fleet swept 4 devices"), "{stderr}");

    // Query against the persisted artifact: a known device resolves …
    let out = hbmctl(&["fleet", "query", "--artifact", &artifact, "--device", "2"]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("voltage"), "{stdout}");

    // … an unknown device and a nonsense target rate are refused.
    let out = hbmctl(&["fleet", "query", "--artifact", &artifact, "--device", "9"]);
    assert_eq!(exit_code(&out), 1, "{out:?}");
    let out = hbmctl(&[
        "fleet",
        "query",
        "--artifact",
        &artifact,
        "--device",
        "2",
        "--target-rate",
        "1.5",
    ]);
    assert_eq!(exit_code(&out), 2, "{out:?}");

    // The JSON export of the artifact is byte-identical to the direct
    // export of the same sweep.
    let out = hbmctl(&["fleet", "export", "--artifact", &artifact]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let from_store = String::from_utf8(out.stdout).unwrap();
    let direct = temp_path("fleet-direct");
    let out = hbmctl(&[
        "fleet",
        "sweep",
        "--devices",
        "4",
        "--words",
        "8",
        "--export",
        &direct,
    ]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let from_sweep = std::fs::read_to_string(&direct).unwrap();
    assert_eq!(
        from_store, from_sweep,
        "store export diverged from sweep export"
    );

    // Summary renders the population roll-up.
    let out = hbmctl(&["fleet", "summary", "--artifact", &artifact]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("fleet devices        4"), "{stdout}");
    assert!(stdout.contains("fleet power"), "{stdout}");

    let _ = std::fs::remove_file(&artifact);
    let _ = std::fs::remove_file(&direct);
}

/// Runs `hbmctl` with `input` piped to stdin, returning the completed
/// output.
fn hbmctl_with_stdin(args: &[&str], input: &str) -> Output {
    use std::io::Write;
    use std::process::Stdio;
    let mut child = Command::new(env!("CARGO_BIN_EXE_hbmctl"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn hbmctl");
    child
        .stdin
        .as_mut()
        .expect("piped stdin")
        .write_all(input.as_bytes())
        .expect("write requests");
    child.wait_with_output().expect("hbmctl exit")
}

/// Degenerate target rates (exactly 0.0 or 1.0, or out of range) and an
/// impossible PC floor are usage mistakes: exit 2 with the usage block,
/// through the same typed validation the serve loop applies.
#[test]
fn fleet_query_boundary_parameters_exit_two_with_usage() {
    let artifact = temp_path("fleet-boundary");
    let _ = std::fs::remove_file(&artifact);
    let out = hbmctl(&[
        "fleet",
        "sweep",
        "--devices",
        "2",
        "--words",
        "8",
        "--out",
        &artifact,
    ]);
    assert_eq!(exit_code(&out), 0, "{out:?}");

    for (flag, value) in [
        ("--target-rate", "0.0"),
        ("--target-rate", "1.0"),
        ("--target-rate", "-0.5"),
        ("--target-rate", "1.5"),
        ("--min-pcs", "33"),
    ] {
        let out = hbmctl(&[
            "fleet",
            "query",
            "--artifact",
            &artifact,
            "--device",
            "0",
            flag,
            value,
        ]);
        assert_eq!(exit_code(&out), 2, "{flag} {value}: {out:?}");
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(stderr.contains("usage:"), "{flag} {value}: {stderr}");
    }
    let _ = std::fs::remove_file(&artifact);
}

/// Every one-shot fleet question and its `serve` equivalent produce the
/// same bytes: both transports route through `hbm_fleet::api`, and this
/// replay pins that they cannot drift.
#[test]
fn serve_replays_one_shot_fleet_answers_identically() {
    let artifact = temp_path("fleet-serve-replay");
    let _ = std::fs::remove_file(&artifact);
    let out = hbmctl(&[
        "fleet",
        "sweep",
        "--devices",
        "3",
        "--words",
        "8",
        "--out",
        &artifact,
    ]);
    assert_eq!(exit_code(&out), 0, "{out:?}");

    let one_shot = |args: &[&str]| -> String {
        let out = hbmctl(args);
        assert_eq!(exit_code(&out), 0, "{args:?}: {out:?}");
        String::from_utf8(out.stdout).unwrap()
    };
    let query = one_shot(&[
        "fleet",
        "query",
        "--artifact",
        &artifact,
        "--device",
        "1",
        "--target-rate",
        "1e-3",
        "--min-pcs",
        "16",
        "--format",
        "json",
    ]);
    let summary = one_shot(&[
        "fleet",
        "summary",
        "--artifact",
        &artifact,
        "--format",
        "json",
    ]);
    let fidelity = one_shot(&[
        "fleet",
        "fidelity",
        "--artifact",
        &artifact,
        "--format",
        "json",
    ]);
    let export = one_shot(&["fleet", "export", "--artifact", &artifact]);

    let requests = concat!(
        "{\"Recommend\":{\"device_id\":1,\"target_rate\":0.001,\"min_pcs\":16}}\n",
        "\"Summary\"\n",
        "\"Fidelity\"\n",
        "\"Export\"\n",
    );
    let out = hbmctl_with_stdin(&["serve", "--artifact", &artifact], requests);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 4, "{stdout}");
    assert_eq!(lines[0], query.trim_end(), "query diverged from serve");
    assert_eq!(lines[1], summary.trim_end(), "summary diverged from serve");
    assert_eq!(
        lines[2],
        fidelity.trim_end(),
        "fidelity diverged from serve"
    );
    // The one-shot export prints the bare document; serve wraps it in the
    // response envelope around the same serialization.
    assert_eq!(
        lines[3],
        format!("{{\"Export\":{}}}", export.trim_end()),
        "export diverged from serve"
    );
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("served 4 queries"), "{stderr}");
    let _ = std::fs::remove_file(&artifact);
}

/// A compress -> serve pipeline answers recommendations from the model
/// alone: the counters prove zero exact-column reads on the happy path.
#[test]
fn compressed_serving_reports_zero_exact_reads() {
    let artifact = temp_path("fleet-compress-src");
    let compressed = temp_path("fleet-compress-dst");
    let _ = std::fs::remove_file(&artifact);
    let _ = std::fs::remove_file(&compressed);
    // An all-clean grid far above the crash band: every cell is certainly
    // fault-free, so the envelope decides every query.
    let out = hbmctl(&[
        "fleet",
        "sweep",
        "--devices",
        "2",
        "--words",
        "8",
        "--from",
        "1000",
        "--to",
        "960",
        "--weak-reference",
        "980",
        "--out",
        &artifact,
    ]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let out = hbmctl(&[
        "fleet",
        "compress",
        "--artifact",
        &artifact,
        "--out",
        &compressed,
        "--keep-exact",
    ]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("exact kept"), "{stdout}");

    let requests = concat!(
        "{\"Recommend\":{\"device_id\":0,\"target_rate\":0.01,\"min_pcs\":16}}\n",
        "{\"Recommend\":{\"device_id\":1,\"target_rate\":0.001,\"min_pcs\":32}}\n",
        "\"Summary\"\n",
    );
    let out = hbmctl_with_stdin(&["serve", "--artifact", &compressed], requests);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("2 compressed hits, 0 exact rescans, 0 exact column reads"),
        "counters must prove the model served alone: {stderr}"
    );
    let _ = std::fs::remove_file(&artifact);
    let _ = std::fs::remove_file(&compressed);
}

#[test]
fn resume_reuses_checkpointed_points() {
    let path = temp_path("resume");
    let _ = std::fs::remove_file(&path);
    let args = [
        "sweep",
        "--from",
        "900",
        "--to",
        "880",
        "--step",
        "10",
        "--words",
        "8",
        "--checkpoint",
        &path,
        "--resume",
    ];
    assert_eq!(exit_code(&hbmctl(&args)), 0);
    let out = hbmctl(&args);
    let _ = std::fs::remove_file(&path);
    assert_eq!(exit_code(&out), 0);
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("3 resumed from checkpoint"),
        "second run must resume all points: {stderr}"
    );
}

/// Regression for the per-line flush fix: a request/reply client over a
/// pipe must receive each response before it sends the next request. If
/// serve buffered output until EOF, the first `read_line` here would
/// block forever (bounded by the watchdog timeout) with the session open.
#[test]
fn serve_flushes_each_response_before_the_next_request() {
    use std::io::{BufRead, BufReader, Write};
    use std::process::Stdio;
    use std::sync::mpsc;
    use std::time::Duration;

    let artifact = temp_path("fleet-serve-flush");
    let _ = std::fs::remove_file(&artifact);
    let out = hbmctl(&[
        "fleet",
        "sweep",
        "--devices",
        "2",
        "--words",
        "8",
        "--out",
        &artifact,
    ]);
    assert_eq!(exit_code(&out), 0, "{out:?}");

    let mut child = Command::new(env!("CARGO_BIN_EXE_hbmctl"))
        .args(["serve", "--artifact", &artifact])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn hbmctl serve");
    let mut stdin = child.stdin.take().expect("piped stdin");
    let stdout = child.stdout.take().expect("piped stdout");

    // A reader thread feeding a channel lets each read carry a deadline:
    // a deadlocked serve fails the test instead of hanging it.
    let (tx, rx) = mpsc::channel::<String>();
    let reader = std::thread::spawn(move || {
        let mut lines = BufReader::new(stdout).lines();
        while let Some(Ok(line)) = lines.next() {
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    let deadline = Duration::from_secs(30);

    stdin
        .write_all(b"{\"Recommend\":{\"device_id\":0,\"target_rate\":0.01,\"min_pcs\":16}}\n")
        .expect("send first request");
    let first = rx
        .recv_timeout(deadline)
        .expect("first response must arrive before the second request is sent");
    assert!(first.contains("Recommendation"), "{first}");

    stdin
        .write_all(b"\"Summary\"\n")
        .expect("send second request");
    let second = rx
        .recv_timeout(deadline)
        .expect("second response must arrive while the session stays open");
    assert!(second.contains("Summary"), "{second}");

    drop(stdin);
    reader.join().expect("reader thread");
    let status = child.wait().expect("hbmctl exit");
    assert_eq!(status.code(), Some(0));
    let _ = std::fs::remove_file(&artifact);
}

/// The pipeline's in-order emitter makes `--serve-workers` throughput-only:
/// the response bytes are identical at every worker count.
#[test]
fn serve_worker_counts_produce_identical_output() {
    let artifact = temp_path("fleet-serve-workers");
    let _ = std::fs::remove_file(&artifact);
    let out = hbmctl(&[
        "fleet",
        "sweep",
        "--devices",
        "3",
        "--words",
        "8",
        "--out",
        &artifact,
    ]);
    assert_eq!(exit_code(&out), 0, "{out:?}");

    let requests = concat!(
        "{\"Recommend\":{\"device_id\":0,\"target_rate\":0.01,\"min_pcs\":16}}\n",
        "{\"Recommend\":{\"device_id\":1,\"target_rate\":0.001,\"min_pcs\":16}}\n",
        "\"Summary\"\n",
        "{\"Recommend\":{\"device_id\":9,\"target_rate\":0.01,\"min_pcs\":16}}\n",
        "not json\n",
        "{\"Recommend\":{\"device_id\":2,\"target_rate\":0.0001,\"min_pcs\":16}}\n",
    );
    let baseline = hbmctl_with_stdin(
        &["serve", "--artifact", &artifact, "--serve-workers", "1"],
        requests,
    );
    assert_eq!(exit_code(&baseline), 0, "{baseline:?}");
    let concurrent = hbmctl_with_stdin(
        &["serve", "--artifact", &artifact, "--serve-workers", "4"],
        requests,
    );
    assert_eq!(exit_code(&concurrent), 0, "{concurrent:?}");
    assert_eq!(
        String::from_utf8(baseline.stdout).unwrap(),
        String::from_utf8(concurrent.stdout).unwrap(),
        "serve output must be byte-identical across worker counts"
    );
    let stderr = String::from_utf8(concurrent.stderr).unwrap();
    assert!(
        stderr.contains("serve runtime: 4 worker(s)"),
        "runtime counters line must report the pool size: {stderr}"
    );
    let _ = std::fs::remove_file(&artifact);
}

/// `--serve-workers 0` is a usage mistake, caught before the artifact is
/// even opened: exit 2 with the usage block.
#[test]
fn serve_zero_workers_exits_two_with_usage() {
    let out = hbmctl(&["serve", "--serve-workers", "0"]);
    assert_eq!(exit_code(&out), 2, "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("usage:"), "{stderr}");
    assert!(stderr.contains("--serve-workers"), "{stderr}");
}

/// `fleet summary --format csv` renders one header and one data row with
/// matching column counts, including the delivered-bandwidth roll-up.
#[test]
fn fleet_summary_csv_round_trips_columns() {
    let artifact = temp_path("fleet-summary-csv");
    let _ = std::fs::remove_file(&artifact);
    let out = hbmctl(&[
        "fleet",
        "sweep",
        "--devices",
        "3",
        "--words",
        "8",
        "--out",
        &artifact,
    ]);
    assert_eq!(exit_code(&out), 0, "{out:?}");

    let out = hbmctl(&[
        "fleet",
        "summary",
        "--artifact",
        &artifact,
        "--format",
        "csv",
    ]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2, "{stdout}");
    assert!(lines[0].starts_with("devices,"), "{stdout}");
    assert!(
        lines[0].contains("energy_per_delivered_bit_undervolted_pj"),
        "{stdout}"
    );
    assert_eq!(
        lines[0].split(',').count(),
        lines[1].split(',').count(),
        "{stdout}"
    );
    let _ = std::fs::remove_file(&artifact);
}
