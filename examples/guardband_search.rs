//! Guardband search: locates V_min and V_critical on a device specimen the
//! way the study does (linear 10 mV scan) and with the binary-refinement
//! extension, then prints the guardband summary.
//!
//! Run with: `cargo run --release --example guardband_search [seed]`

use hbm_undervolt_suite::undervolt::{Experiment, GuardbandFinder, Platform};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let mut platform = Platform::builder().seed(seed).build();
    let finder = GuardbandFinder::new();

    // The paper's methodology: expected-fault scan at full-scale counts.
    let report = Experiment::run(&finder, &mut platform)?;
    println!("specimen seed {seed}:");
    println!("  V_min      = {}   (paper: 0.980 V)", report.v_min);
    println!("  V_critical = {}   (paper: 0.810 V)", report.v_critical);
    println!(
        "  guardband  = {} = {:.1}% of nominal (paper: 19%)",
        report.guardband(),
        report.guardband_fraction().as_percent()
    );

    // Extension: binary refinement to 1 mV.
    let refined = finder.binary_search_vmin(&platform);
    println!("  V_min (binary refined to 1 mV): {refined}");

    // Measured onset on this (reduced-capacity) platform: with 1024x fewer
    // bits the first observable flip sits lower, exactly as a smaller
    // device would behave.
    let measured = finder.find_vmin_measured(&mut platform)?;
    println!("  measured fault-free floor at reduced capacity: {measured}");
    Ok(())
}
