//! The `VCC_HBM` power rail: regulator + shunt + monitor + external load.

use hbm_units::{Amperes, Celsius, Millivolts, Volts, Watts};
use serde::{Deserialize, Serialize};

use crate::error::PmbusError;
use crate::ina226::{Ina226, Ina226Register};
use crate::isl68301::Isl68301;
use crate::pmbus::{HostInterface, PmbusCommand, PmbusDevice};

/// One telemetry sample of the rail, as the host sees it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RailSample {
    /// The voltage the host has commanded (regulator set-point).
    pub requested: Millivolts,
    /// Bus voltage measured by the INA226 (quantized to its 1.25 mV LSB).
    pub bus_voltage: Volts,
    /// Current measured by the INA226.
    pub current: Amperes,
    /// Power measured by the INA226.
    pub power: Watts,
}

/// The `VCC_HBM` rail of the VCU128 board: an [`Isl68301`] regulator feeding
/// the HBM stacks through a shunt monitored by an [`Ina226`].
///
/// The rail does not know how the HBM load behaves electrically — the
/// platform layer computes the load power from the `hbm-power` model at the
/// rail's present voltage and feeds it in through [`PowerRail::apply_load`].
///
/// # Examples
///
/// ```
/// use hbm_units::{Millivolts, Watts};
/// use hbm_vreg::{HostInterface, PowerRail};
///
/// # fn main() -> Result<(), hbm_vreg::PmbusError> {
/// let mut rail = PowerRail::vcc_hbm(0);
/// HostInterface::new(rail.regulator_mut()).set_vout(Millivolts(980))?;
/// rail.apply_load(Watts(4.0));
/// let sample = rail.sample()?;
/// assert_eq!(sample.requested, Millivolts(980));
/// assert!((sample.power.0 - 4.0).abs() < 0.05);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PowerRail {
    regulator: Isl68301,
    monitor: Ina226,
    ambient: Celsius,
    power_cycles: u32,
}

impl PowerRail {
    /// Builds the study's `VCC_HBM` rail with a deterministic measurement
    /// noise seed.
    #[must_use]
    pub fn vcc_hbm(seed: u64) -> Self {
        PowerRail {
            regulator: Isl68301::vcc_hbm(),
            monitor: Ina226::vcc_hbm(seed),
            ambient: Celsius::STUDY_AMBIENT,
            power_cycles: 0,
        }
    }

    /// Power-cycles the rail the way the study's host scripts do: commands
    /// the regulator output off via the PMBus `OPERATION` register, back on,
    /// re-programs the set-point to `restart` and clears latched faults.
    /// The caller (platform layer) is responsible for restarting whatever
    /// load the rail feeds.
    ///
    /// # Errors
    ///
    /// Propagates PMBus transaction errors (e.g. `restart` above
    /// `VOUT_MAX`).
    pub fn power_cycle(&mut self, restart: Millivolts) -> Result<(), PmbusError> {
        self.regulator.write_byte(PmbusCommand::Operation, 0x00)?;
        self.regulator.write_byte(PmbusCommand::Operation, 0x80)?;
        let mut host = HostInterface::new(&mut self.regulator);
        host.set_vout(restart)?;
        host.clear_faults()?;
        self.power_cycles += 1;
        Ok(())
    }

    /// Number of power cycles the rail has performed.
    #[must_use]
    pub fn power_cycle_count(&self) -> u32 {
        self.power_cycles
    }

    /// The present output voltage of the rail (zero when the regulator is
    /// off).
    #[must_use]
    pub fn voltage(&self) -> Millivolts {
        self.regulator.output()
    }

    /// Borrows the regulator (e.g. to wrap in a
    /// [`HostInterface`](crate::HostInterface)).
    pub fn regulator_mut(&mut self) -> &mut Isl68301 {
        &mut self.regulator
    }

    /// Borrows the regulator immutably.
    #[must_use]
    pub fn regulator(&self) -> &Isl68301 {
        &self.regulator
    }

    /// Borrows the power monitor.
    #[must_use]
    pub fn monitor(&self) -> &Ina226 {
        &self.monitor
    }

    /// Sets the rail's ambient temperature (reported via regulator
    /// telemetry).
    pub fn set_ambient(&mut self, ambient: Celsius) {
        self.ambient = ambient;
    }

    /// Applies an electrical load to the rail: the platform computes the
    /// load power at the present voltage, the rail derives the implied
    /// current, updates regulator telemetry and runs one INA226 conversion.
    pub fn apply_load(&mut self, power: Watts) {
        let volts = self.voltage().to_volts();
        let current = if volts.as_f64() > 0.0 {
            power / volts
        } else {
            Amperes::ZERO
        };
        self.regulator
            .update_telemetry(current, power, self.ambient);
        self.monitor.set_input(volts, current);
        self.monitor.convert();
    }

    /// Reads one telemetry sample through the monitor's register file, the
    /// way the study's host collects power numbers.
    ///
    /// # Errors
    ///
    /// Propagates PMBus/I²C transaction errors.
    pub fn sample(&mut self) -> Result<RailSample, PmbusError> {
        // Touch the registers as a real host driver would.
        let _ = self.monitor.read_register(Ina226Register::BusVoltage);
        let _ = self.monitor.read_register(Ina226Register::Power);
        Ok(RailSample {
            requested: self.regulator.output(),
            bus_voltage: self.monitor.bus_voltage(),
            current: self.monitor.current(),
            power: self.monitor.power(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pmbus::HostInterface;

    #[test]
    fn rail_tracks_commanded_voltage() {
        let mut rail = PowerRail::vcc_hbm(0);
        assert_eq!(rail.voltage(), Millivolts(1200));
        HostInterface::new(rail.regulator_mut())
            .set_vout(Millivolts(850))
            .unwrap();
        assert_eq!(rail.voltage(), Millivolts(850));
    }

    #[test]
    fn load_round_trips_through_monitor() {
        let mut rail = PowerRail::vcc_hbm(1);
        rail.apply_load(Watts(6.0));
        let sample = rail.sample().unwrap();
        assert!((sample.power.as_f64() - 6.0).abs() < 0.05, "{:?}", sample);
        assert!((sample.current.as_f64() - 5.0).abs() < 0.05);
        assert!((sample.bus_voltage.as_f64() - 1.2).abs() < 2e-3);
    }

    #[test]
    fn regulator_telemetry_sees_the_load() {
        let mut rail = PowerRail::vcc_hbm(2);
        rail.apply_load(Watts(2.4));
        let mut host = HostInterface::new(rail.regulator_mut());
        assert!((host.read_pout().unwrap().as_f64() - 2.4).abs() < 0.01);
        assert!((host.read_iout().unwrap().as_f64() - 2.0).abs() < 0.01);
        assert_eq!(host.read_temperature().unwrap(), Celsius::STUDY_AMBIENT);
    }

    #[test]
    fn off_rail_measures_nothing() {
        use crate::pmbus::{PmbusCommand, PmbusDevice};
        let mut rail = PowerRail::vcc_hbm(3);
        rail.regulator_mut()
            .write_byte(PmbusCommand::Operation, 0x00)
            .unwrap();
        rail.apply_load(Watts(6.0));
        let sample = rail.sample().unwrap();
        assert_eq!(sample.requested, Millivolts::ZERO);
        assert_eq!(sample.bus_voltage, Volts::ZERO);
    }

    #[test]
    fn power_cycle_restores_output_and_counts() {
        use crate::pmbus::{PmbusCommand, PmbusDevice};
        let mut rail = PowerRail::vcc_hbm(5);
        HostInterface::new(rail.regulator_mut())
            .set_vout(Millivolts(850))
            .unwrap();
        assert_eq!(rail.power_cycle_count(), 0);
        rail.power_cycle(Millivolts(1200)).unwrap();
        assert_eq!(rail.voltage(), Millivolts(1200));
        assert_eq!(rail.power_cycle_count(), 1);
        // The regulator is back on (operation = 0x80 → output tracks the
        // set-point rather than reading zero).
        rail.regulator_mut()
            .write_byte(PmbusCommand::Operation, 0x00)
            .unwrap();
        assert_eq!(rail.voltage(), Millivolts::ZERO);
        rail.power_cycle(Millivolts(980)).unwrap();
        assert_eq!(rail.voltage(), Millivolts(980));
        assert_eq!(rail.power_cycle_count(), 2);
    }

    #[test]
    fn ambient_override() {
        let mut rail = PowerRail::vcc_hbm(4);
        rail.set_ambient(Celsius(36.0));
        rail.apply_load(Watts(1.0));
        let mut host = HostInterface::new(rail.regulator_mut());
        assert_eq!(host.read_temperature().unwrap(), Celsius(36.0));
    }
}
