//! The PMBus data formats and command layer.
//!
//! PMBus devices exchange most real-valued quantities in one of two wire
//! formats:
//!
//! - **LINEAR11** (`Y × 2^N`, 11-bit mantissa and 5-bit exponent packed in
//!   one word) for telemetry like currents, powers and temperatures;
//! - **LINEAR16** (16-bit mantissa with the exponent published separately in
//!   `VOUT_MODE`) for output-voltage registers.
//!
//! This module implements both formats with round-trip accuracy tests, the
//! command codes the study's host tool needs, a [`PmbusDevice`] transaction
//! trait the modelled devices implement, and a [`HostInterface`] mirroring
//! the "customized interface on the host to control this regulator and
//! measure power, voltage and current" described in §II-B of the paper.

use hbm_units::{Amperes, Celsius, Millivolts, Volts, Watts};
use serde::{Deserialize, Serialize};

use crate::error::PmbusError;

/// Encodes a value into the LINEAR11 format, choosing the smallest exponent
/// (highest resolution) that fits the mantissa.
///
/// # Errors
///
/// Returns [`PmbusError::Linear11Range`] if the value is not finite or its
/// magnitude exceeds `1023 × 2^15`.
///
/// # Examples
///
/// ```
/// use hbm_vreg::pmbus::{encode_linear11, decode_linear11};
///
/// # fn main() -> Result<(), hbm_vreg::PmbusError> {
/// let word = encode_linear11(4.5)?;
/// assert_eq!(decode_linear11(word), 4.5);
/// # Ok(())
/// # }
/// ```
pub fn encode_linear11(value: f64) -> Result<u16, PmbusError> {
    if !value.is_finite() {
        return Err(PmbusError::Linear11Range { value });
    }
    for n in -16i32..=15 {
        let mantissa = (value / 2f64.powi(n)).round();
        if (-1024.0..=1023.0).contains(&mantissa) {
            let y = (mantissa as i16) & 0x07FF;
            let exp = ((n as i16) & 0x1F) << 11;
            return Ok((exp | y) as u16);
        }
    }
    Err(PmbusError::Linear11Range { value })
}

/// Decodes a LINEAR11 word into its real value.
///
/// # Examples
///
/// ```
/// use hbm_vreg::pmbus::decode_linear11;
///
/// // Y = 1, N = 0 → 1.0
/// assert_eq!(decode_linear11(0x0001), 1.0);
/// ```
#[must_use]
pub fn decode_linear11(word: u16) -> f64 {
    // Sign-extend the 5-bit exponent and the 11-bit mantissa (shift left in
    // the unsigned domain, then arithmetic-shift right as signed).
    let exp = (((word >> 11) << 3) as u8 as i8) >> 3;
    let mantissa = (((word & 0x07FF) << 5) as i16) >> 5;
    f64::from(mantissa) * 2f64.powi(i32::from(exp))
}

/// The VOUT_MODE exponent used by the modelled regulator: `2^-12` volts per
/// count (≈0.244 mV), fine enough that millivolt-exact voltages survive the
/// encode/decode round trip.
pub const VOUT_MODE_EXPONENT: i8 = -12;

/// Encodes a voltage into the VOUT-mode LINEAR16 format under an exponent.
///
/// # Errors
///
/// Returns [`PmbusError::Linear16Range`] if the value is negative, not
/// finite, or overflows the 16-bit mantissa.
pub fn encode_linear16(volts: Volts, exponent: i8) -> Result<u16, PmbusError> {
    let value = volts.as_f64();
    if !value.is_finite() || value < 0.0 {
        return Err(PmbusError::Linear16Range { value });
    }
    let counts = (value / 2f64.powi(i32::from(exponent))).round();
    if counts > f64::from(u16::MAX) {
        return Err(PmbusError::Linear16Range { value });
    }
    Ok(counts as u16)
}

/// Decodes a VOUT-mode LINEAR16 word under an exponent.
#[must_use]
pub fn decode_linear16(word: u16, exponent: i8) -> Volts {
    Volts(f64::from(word) * 2f64.powi(i32::from(exponent)))
}

/// Transaction width of a PMBus command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransactionWidth {
    /// Send-byte command with no payload (e.g. `CLEAR_FAULTS`).
    None,
    /// One-byte payload.
    Byte,
    /// Two-byte payload.
    Word,
}

/// The subset of the PMBus command set the study's host tooling uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
#[allow(clippy::upper_case_acronyms)]
pub enum PmbusCommand {
    /// 0x01 — output on/off control.
    Operation,
    /// 0x03 — clear latched faults.
    ClearFaults,
    /// 0x20 — exponent for LINEAR16 voltage registers.
    VoutMode,
    /// 0x21 — commanded output voltage.
    VoutCommand,
    /// 0x24 — maximum commandable output voltage.
    VoutMax,
    /// 0x40 — output over-voltage fault limit.
    VoutOvFaultLimit,
    /// 0x44 — output under-voltage fault limit.
    VoutUvFaultLimit,
    /// 0x79 — composite status word.
    StatusWord,
    /// 0x8B — measured output voltage.
    ReadVout,
    /// 0x8C — measured output current.
    ReadIout,
    /// 0x8D — device temperature.
    ReadTemperature1,
    /// 0x96 — measured output power.
    ReadPout,
}

impl PmbusCommand {
    /// The raw PMBus command code.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            PmbusCommand::Operation => 0x01,
            PmbusCommand::ClearFaults => 0x03,
            PmbusCommand::VoutMode => 0x20,
            PmbusCommand::VoutCommand => 0x21,
            PmbusCommand::VoutMax => 0x24,
            PmbusCommand::VoutOvFaultLimit => 0x40,
            PmbusCommand::VoutUvFaultLimit => 0x44,
            PmbusCommand::StatusWord => 0x79,
            PmbusCommand::ReadVout => 0x8B,
            PmbusCommand::ReadIout => 0x8C,
            PmbusCommand::ReadTemperature1 => 0x8D,
            PmbusCommand::ReadPout => 0x96,
        }
    }

    /// The transaction width mandated by the PMBus specification.
    #[must_use]
    pub fn width(self) -> TransactionWidth {
        match self {
            PmbusCommand::ClearFaults => TransactionWidth::None,
            PmbusCommand::Operation | PmbusCommand::VoutMode => TransactionWidth::Byte,
            _ => TransactionWidth::Word,
        }
    }
}

/// A PMBus-capable device (regulator, sequencer, hot-swap controller, …).
///
/// Implementations reject commands they do not support and enforce the
/// specification's transaction widths, so host-side driver bugs surface as
/// errors exactly as they would on real hardware (as a NACK).
pub trait PmbusDevice {
    /// Reads a one-byte register.
    ///
    /// # Errors
    ///
    /// [`PmbusError::UnsupportedCommand`] or
    /// [`PmbusError::WrongTransactionWidth`].
    fn read_byte(&mut self, cmd: PmbusCommand) -> Result<u8, PmbusError>;

    /// Writes a one-byte register.
    ///
    /// # Errors
    ///
    /// As [`PmbusDevice::read_byte`], plus [`PmbusError::InvalidData`] for
    /// out-of-range values.
    fn write_byte(&mut self, cmd: PmbusCommand, value: u8) -> Result<(), PmbusError>;

    /// Reads a two-byte register.
    ///
    /// # Errors
    ///
    /// As [`PmbusDevice::read_byte`].
    fn read_word(&mut self, cmd: PmbusCommand) -> Result<u16, PmbusError>;

    /// Writes a two-byte register.
    ///
    /// # Errors
    ///
    /// As [`PmbusDevice::write_byte`].
    fn write_word(&mut self, cmd: PmbusCommand, value: u16) -> Result<(), PmbusError>;

    /// Issues a payload-less command (e.g. `CLEAR_FAULTS`).
    ///
    /// # Errors
    ///
    /// As [`PmbusDevice::read_byte`].
    fn send_command(&mut self, cmd: PmbusCommand) -> Result<(), PmbusError>;
}

/// Host-side convenience driver over any [`PmbusDevice`].
///
/// This mirrors the custom host interface the study implements to "control
/// this regulator and measure power, voltage and current during our
/// experiments" (§II-B): voltage set-points go down encoded in LINEAR16,
/// telemetry comes back in LINEAR11/LINEAR16 and is decoded to typed units.
///
/// # Examples
///
/// ```
/// use hbm_units::Millivolts;
/// use hbm_vreg::{HostInterface, Isl68301};
///
/// # fn main() -> Result<(), hbm_vreg::PmbusError> {
/// let mut regulator = Isl68301::vcc_hbm();
/// let mut host = HostInterface::new(&mut regulator);
/// host.set_vout(Millivolts(1100))?;
/// assert_eq!(host.read_vout()?, Millivolts(1100));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct HostInterface<'a, D: PmbusDevice + ?Sized> {
    device: &'a mut D,
}

impl<'a, D: PmbusDevice + ?Sized> HostInterface<'a, D> {
    /// Wraps a device for host-side control.
    pub fn new(device: &'a mut D) -> Self {
        HostInterface { device }
    }

    fn vout_exponent(&mut self) -> Result<i8, PmbusError> {
        let mode = self.device.read_byte(PmbusCommand::VoutMode)?;
        // Sign-extend the low five bits (linear mode: upper bits zero).
        Ok((((mode & 0x1F) << 3) as i8) >> 3)
    }

    /// Commands a new output voltage.
    ///
    /// # Errors
    ///
    /// Propagates transaction errors; the device clamps or rejects values
    /// beyond `VOUT_MAX` with [`PmbusError::InvalidData`].
    pub fn set_vout(&mut self, target: Millivolts) -> Result<(), PmbusError> {
        let exponent = self.vout_exponent()?;
        let word = encode_linear16(target.to_volts(), exponent)?;
        self.device.write_word(PmbusCommand::VoutCommand, word)
    }

    /// Reads back the measured output voltage, rounded to millivolts.
    ///
    /// # Errors
    ///
    /// Propagates transaction errors.
    pub fn read_vout(&mut self) -> Result<Millivolts, PmbusError> {
        let exponent = self.vout_exponent()?;
        let word = self.device.read_word(PmbusCommand::ReadVout)?;
        Ok(decode_linear16(word, exponent).to_millivolts())
    }

    /// Reads the measured output current.
    ///
    /// # Errors
    ///
    /// Propagates transaction errors.
    pub fn read_iout(&mut self) -> Result<Amperes, PmbusError> {
        Ok(Amperes(decode_linear11(
            self.device.read_word(PmbusCommand::ReadIout)?,
        )))
    }

    /// Reads the measured output power.
    ///
    /// # Errors
    ///
    /// Propagates transaction errors.
    pub fn read_pout(&mut self) -> Result<Watts, PmbusError> {
        Ok(Watts(decode_linear11(
            self.device.read_word(PmbusCommand::ReadPout)?,
        )))
    }

    /// Reads the device temperature.
    ///
    /// # Errors
    ///
    /// Propagates transaction errors.
    pub fn read_temperature(&mut self) -> Result<Celsius, PmbusError> {
        Ok(Celsius(decode_linear11(
            self.device.read_word(PmbusCommand::ReadTemperature1)?,
        )))
    }

    /// Reads the composite status word.
    ///
    /// # Errors
    ///
    /// Propagates transaction errors.
    pub fn status_word(&mut self) -> Result<u16, PmbusError> {
        self.device.read_word(PmbusCommand::StatusWord)
    }

    /// Clears latched faults.
    ///
    /// # Errors
    ///
    /// Propagates transaction errors.
    pub fn clear_faults(&mut self) -> Result<(), PmbusError> {
        self.device.send_command(PmbusCommand::ClearFaults)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear11_known_values() {
        // Y=1, N=0.
        assert_eq!(decode_linear11(0x0001), 1.0);
        // Y=-1 (0x7FF), N=0.
        assert_eq!(decode_linear11(0x07FF), -1.0);
        // Y=2, N=-1 (exp bits 11111) → 1.0.
        assert_eq!(decode_linear11(0xF802), 1.0);
    }

    #[test]
    fn linear11_round_trip_exact_for_powers() {
        for value in [0.0, 0.5, 1.0, 2.0, 4.5, -3.25, 100.0, 1023.0] {
            let word = encode_linear11(value).unwrap();
            assert_eq!(decode_linear11(word), value, "value {value}");
        }
    }

    #[test]
    fn linear11_round_trip_error_bounded() {
        // Relative error is bounded by the 11-bit mantissa resolution.
        for i in 1..1000 {
            let value = f64::from(i) * 0.037;
            let decoded = decode_linear11(encode_linear11(value).unwrap());
            let rel = ((decoded - value) / value).abs();
            assert!(rel <= 1.0 / 1024.0, "value {value} decoded {decoded}");
        }
    }

    #[test]
    fn linear11_range_rejected() {
        assert!(encode_linear11(f64::NAN).is_err());
        assert!(encode_linear11(1e12).is_err());
        // Max encodable: 1023 × 2^15.
        assert!(encode_linear11(1023.0 * 32768.0).is_ok());
        assert!(encode_linear11(1024.0 * 32768.0).is_err());
    }

    #[test]
    fn linear16_millivolt_exact() {
        for mv in (0..=2000).step_by(10) {
            let v = Millivolts(mv);
            let word = encode_linear16(v.to_volts(), VOUT_MODE_EXPONENT).unwrap();
            let back = decode_linear16(word, VOUT_MODE_EXPONENT).to_millivolts();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn linear16_rejects_bad_values() {
        assert!(encode_linear16(Volts(-0.1), VOUT_MODE_EXPONENT).is_err());
        assert!(encode_linear16(Volts(f64::NAN), VOUT_MODE_EXPONENT).is_err());
        // 2^-12 exponent: overflow above 16 V.
        assert!(encode_linear16(Volts(17.0), VOUT_MODE_EXPONENT).is_err());
    }

    #[test]
    fn command_codes_match_spec() {
        assert_eq!(PmbusCommand::Operation.code(), 0x01);
        assert_eq!(PmbusCommand::ClearFaults.code(), 0x03);
        assert_eq!(PmbusCommand::VoutMode.code(), 0x20);
        assert_eq!(PmbusCommand::VoutCommand.code(), 0x21);
        assert_eq!(PmbusCommand::ReadVout.code(), 0x8B);
        assert_eq!(PmbusCommand::ReadPout.code(), 0x96);
    }

    #[test]
    fn command_widths() {
        assert_eq!(PmbusCommand::ClearFaults.width(), TransactionWidth::None);
        assert_eq!(PmbusCommand::Operation.width(), TransactionWidth::Byte);
        assert_eq!(PmbusCommand::VoutMode.width(), TransactionWidth::Byte);
        assert_eq!(PmbusCommand::VoutCommand.width(), TransactionWidth::Word);
        assert_eq!(PmbusCommand::StatusWord.width(), TransactionWidth::Word);
    }
}
