//! The unified experiment abstraction.
//!
//! Every measurement campaign in this crate — the reliability sweep, the
//! power sweep, the guardband search, the trade-off analysis — is "run
//! against a [`Platform`], produce a typed report". The [`Experiment`]
//! trait names that shape so drivers (the `hbmctl` binary, the figure
//! reproductions, property tests) can be written once, generically.
//!
//! [`DynExperiment`] is the object-safe companion: it erases the report
//! type down to [`Render`], so heterogeneous campaigns can run from one
//! `Vec<Box<dyn DynExperiment>>` loop.

use crate::error::ExperimentError;
use crate::governor::{GovernorScenario, GovernorScenarioReport};
use crate::guardband::{GuardbandFinder, GuardbandReport};
use crate::platform::Platform;
use crate::power_test::{PowerSweep, PowerSweepReport};
use crate::reliability::{ReliabilityReport, ReliabilityTester};
use crate::report::Render;
use crate::supervisor::{SupervisedReport, SweepSupervisor};
use crate::trade_off::{TradeOffAnalysis, TradeOffReport};

/// A named experiment that runs against a [`Platform`] and produces a
/// typed report.
///
/// Implementations must be deterministic: the report may depend only on
/// the experiment's configuration and the platform's construction
/// parameters (seed, geometry, fault/power models) — never on the
/// engine's worker count, thread scheduling, or host state.
///
/// # Examples
///
/// ```
/// use hbm_undervolt::{Experiment, GuardbandFinder, Platform};
///
/// fn run_named<E: Experiment>(e: &E, platform: &mut Platform)
///     -> Result<E::Report, hbm_undervolt::ExperimentError>
/// {
///     println!("running {}", e.name());
///     e.run(platform)
/// }
///
/// # fn main() -> Result<(), hbm_undervolt::ExperimentError> {
/// let mut platform = Platform::builder().seed(7).build();
/// let report = run_named(&GuardbandFinder::new(), &mut platform)?;
/// assert_eq!(report.v_min, hbm_units::Millivolts(980));
/// # Ok(())
/// # }
/// ```
pub trait Experiment {
    /// The report the experiment produces.
    type Report;

    /// A short stable name for logs and file stems ("reliability",
    /// "power-sweep", …).
    fn name(&self) -> &str;

    /// Runs the experiment on a platform.
    ///
    /// # Errors
    ///
    /// Configuration, PMBus and device errors; expected device *crashes*
    /// inside a sweep are recorded in the report where the experiment
    /// defines that (see the individual experiments).
    fn run(&self, platform: &mut Platform) -> Result<Self::Report, ExperimentError>;
}

/// Object-safe view of an [`Experiment`] whose report can render itself.
///
/// Blanket-implemented for every `Experiment` with a `Report: Render`,
/// so `Box<dyn DynExperiment>` collections come for free.
pub trait DynExperiment {
    /// See [`Experiment::name`].
    fn name(&self) -> &str;

    /// Runs the experiment and returns the report as a renderable
    /// trait object.
    ///
    /// # Errors
    ///
    /// See [`Experiment::run`].
    fn run_boxed(&self, platform: &mut Platform) -> Result<Box<dyn Render>, ExperimentError>;
}

impl<E> DynExperiment for E
where
    E: Experiment,
    E::Report: Render + 'static,
{
    fn name(&self) -> &str {
        Experiment::name(self)
    }

    fn run_boxed(&self, platform: &mut Platform) -> Result<Box<dyn Render>, ExperimentError> {
        Ok(Box::new(Experiment::run(self, platform)?))
    }
}

impl Experiment for ReliabilityTester {
    type Report = ReliabilityReport;

    fn name(&self) -> &str {
        "reliability"
    }

    fn run(&self, platform: &mut Platform) -> Result<ReliabilityReport, ExperimentError> {
        ReliabilityTester::run(self, platform)
    }
}

impl Experiment for SweepSupervisor {
    type Report = SupervisedReport;

    fn name(&self) -> &str {
        "supervised-sweep"
    }

    fn run(&self, platform: &mut Platform) -> Result<SupervisedReport, ExperimentError> {
        SweepSupervisor::run(self, platform)
    }
}

impl Experiment for PowerSweep {
    type Report = PowerSweepReport;

    fn name(&self) -> &str {
        "power-sweep"
    }

    fn run(&self, platform: &mut Platform) -> Result<PowerSweepReport, ExperimentError> {
        PowerSweep::run(self, platform)
    }
}

impl Experiment for GuardbandFinder {
    type Report = GuardbandReport;

    fn name(&self) -> &str {
        "guardband"
    }

    fn run(&self, platform: &mut Platform) -> Result<GuardbandReport, ExperimentError> {
        GuardbandFinder::run(self, platform)
    }
}

impl Experiment for GovernorScenario {
    type Report = GovernorScenarioReport;

    fn name(&self) -> &str {
        "governor"
    }

    fn run(&self, platform: &mut Platform) -> Result<GovernorScenarioReport, ExperimentError> {
        GovernorScenario::run(self, platform)
    }
}

impl Experiment for TradeOffAnalysis {
    type Report = TradeOffReport;

    fn name(&self) -> &str {
        "trade-off"
    }

    /// The analysis is a pure computation over its fault map; the
    /// platform only cross-checks that the map was built for the same
    /// device scale.
    fn run(&self, platform: &mut Platform) -> Result<TradeOffReport, ExperimentError> {
        let map_geometry = self.fault_map().geometry;
        if map_geometry != platform.full_scale_predictor().geometry() {
            return Err(ExperimentError::config(
                "trade-off fault map was built for a different geometry",
            ));
        }
        self.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbm_faults::FaultMap;
    use hbm_power::HbmPowerModel;
    use hbm_units::Millivolts;

    fn platform() -> Platform {
        Platform::builder().seed(7).build()
    }

    #[test]
    fn names_are_stable() {
        let mut p = platform();
        let map = FaultMap::from_predictor(
            p.full_scale_predictor(),
            Millivolts(980),
            Millivolts(850),
            Millivolts(10),
        );
        let experiments: Vec<Box<dyn DynExperiment>> = vec![
            Box::new(GuardbandFinder::new()),
            Box::new(TradeOffAnalysis::new(map, HbmPowerModel::date21())),
        ];
        let names: Vec<&str> = experiments.iter().map(|e| e.name()).collect();
        assert_eq!(names, ["guardband", "trade-off"]);
        for e in &experiments {
            let rendered = e.run_boxed(&mut p).unwrap();
            assert!(!rendered.to_text().is_empty());
            assert!(rendered.to_csv().contains(','));
        }
    }

    #[test]
    fn trait_run_matches_inherent_run() {
        let finder = GuardbandFinder::new();
        let via_trait = Experiment::run(&finder, &mut platform()).unwrap();
        let direct = finder.run(&mut platform()).unwrap();
        assert_eq!(via_trait, direct);
    }

    #[test]
    fn wrong_geometry_map_is_rejected() {
        let mut p = platform();
        // A map built at the platform's *reduced* geometry must not pass
        // for the full-scale trade-off.
        let map = FaultMap::from_predictor(
            p.predictor(),
            Millivolts(980),
            Millivolts(850),
            Millivolts(10),
        );
        let analysis = TradeOffAnalysis::new(map, HbmPowerModel::date21());
        assert!(Experiment::run(&analysis, &mut p).is_err());
    }
}
