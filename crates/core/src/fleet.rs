//! Bridge between the fleet layer and the supervised platform stack.
//!
//! The fleet crate's built-in runner ([`hbm_fleet::characterize_device`])
//! descends each device with the coupled-carry mask kernel directly — no
//! DRAM arrays, no AXI traffic — which is what makes thousand-device
//! sweeps tractable. This module provides the *supervised* alternative:
//! the same per-device campaign assembled through [`SweepConfig`] and run
//! under the sweep supervisor, with the platform's crash latch standing in
//! for the kernel runner's crash-floor cutoff.
//!
//! The two paths are bit-identical: in cached-mask mode the engine's
//! per-port flip counts *are* popcounts of the injector's stuck-at masks
//! over the same word range, and both paths hand their count matrix to
//! the same [`DeviceRecord::assemble`]. The `supervised_matches_kernel`
//! test pins that equivalence, which is what entitles `hbmctl fleet` to
//! use the fast kernel runner while reporting supervisor-grade results.

use hbm_fleet::{DeviceRecord, DeviceSpec, FleetConfig, CRASHED_KNOT};
use hbm_traffic::DataPattern;

use crate::error::ExperimentError;
use crate::reliability::{ExecutionMode, TestScope, VoltagePoint};
use crate::sweep::VoltageSweep;
use crate::sweep_config::SweepConfig;
use hbm_faults::FaultFieldMode;

/// Assembles the per-device supervised campaign for `spec` under `cfg`.
///
/// # Errors
///
/// Propagates configuration errors from the sweep builder (for example a
/// knot grid whose span is not a step multiple).
pub fn supervised_sweep_config(
    cfg: &FleetConfig,
    spec: DeviceSpec,
) -> Result<SweepConfig, ExperimentError> {
    let knots = cfg.knots();
    let last = *knots.last().expect("validated knot grid is non-empty");
    let sweep = VoltageSweep::new(cfg.from, last, cfg.step)?;
    Ok(SweepConfig::quick()
        .seed(spec.seed)
        .workers(1)
        .v_crash(spec.crash_floor)
        .sweep(sweep)
        .batch_size(1)
        .patterns(vec![DataPattern::AllOnes, DataPattern::AllZeros])
        .scope(TestScope::EntireHbm)
        .words_per_pc(Some(cfg.words_per_pc))
        .sample_words(None)
        .mode(ExecutionMode::CachedMasks)
        .fault_field(FaultFieldMode::MonotoneCoupled)
        .carry_forward(true)
        .kernel(cfg.backend)
        .retries(0))
}

/// Characterizes one fleet device through the supervised platform stack.
///
/// # Errors
///
/// Propagates experiment errors from the supervised run.
///
/// # Panics
///
/// Panics when `cfg` uses a geometry other than the platform's (the
/// supervised stack builds the study's reduced VCU128 footprint).
pub fn supervised_device_record(
    cfg: &FleetConfig,
    spec: DeviceSpec,
) -> Result<DeviceRecord, ExperimentError> {
    assert_eq!(
        cfg.geometry,
        hbm_device::HbmGeometry::vcu128_reduced(),
        "the supervised fleet path runs on the platform's reduced geometry"
    );
    let report = supervised_sweep_config(cfg, spec)?.run()?;
    let knots = cfg.knots();
    let pcs = usize::from(cfg.geometry.total_pcs());
    let mut faults = vec![CRASHED_KNOT; pcs * knots.len()];

    for point in &report.points {
        let Some(k) = knots.iter().position(|&v| v == point.voltage) else {
            continue;
        };
        let Some(measured) = point.completed() else {
            continue;
        };
        if measured.crashed {
            continue;
        }
        for pc in 0..pcs {
            let count = union_flips(measured, pc as u8);
            faults[pc * knots.len() + k] =
                u16::try_from(count).expect("counts bounded by words*256 <= 65280");
        }
    }
    Ok(DeviceRecord::assemble(cfg, spec, faults))
}

/// Union fault-bit count of one pseudo channel at one completed point:
/// 1→0 flips under all-ones plus 0→1 flips under all-zeros — exactly the
/// popcounts of the two stuck-at mask polarities.
fn union_flips(point: &VoltagePoint, pc: u8) -> u64 {
    point
        .outcomes
        .iter()
        .map(|outcome| {
            let flips =
                outcome.per_port.iter().find(|(port, _)| *port == pc).map(
                    |(_, stats)| match outcome.pattern {
                        DataPattern::AllOnes => stats.flips_1to0,
                        DataPattern::AllZeros => stats.flips_0to1,
                        _ => 0,
                    },
                );
            flips.unwrap_or(0)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbm_units::Millivolts;

    fn bridge_cfg() -> FleetConfig {
        FleetConfig {
            devices: 3,
            workers: 1,
            words_per_pc: 16,
            from: Millivolts(1000),
            down_to: Millivolts(800),
            step: Millivolts(20),
            weak_reference: Millivolts(900),
            ..FleetConfig::default()
        }
    }

    #[test]
    fn supervised_matches_kernel() {
        let cfg = bridge_cfg();
        for id in 0..cfg.devices {
            let spec = cfg.device_spec(id);
            let supervised = supervised_device_record(&cfg, spec).unwrap();
            let kernel = hbm_fleet::characterize_device(&cfg, spec);
            assert_eq!(supervised, kernel, "device {id} diverged across paths");
        }
    }

    #[test]
    fn supervised_fleet_runs_through_the_work_stealer() {
        let cfg = bridge_cfg();
        let supervised = hbm_fleet::sweep::run_with(&cfg, |cfg, spec| {
            supervised_device_record(cfg, spec).expect("supervised characterization")
        })
        .unwrap();
        let kernel = hbm_fleet::sweep::run(&cfg).unwrap();
        assert_eq!(supervised.records, kernel.records);
    }
}
