//! Incremental-sweep bench for the coupled fault field: one full
//! descending sweep measured three ways — the legacy per-voltage field,
//! a coupled-field rescan (carry disabled), and the coupled-field
//! incremental kernel (carry enabled) — verifying that both coupled paths
//! produce identical per-point reports and recording wall-clock timings
//! to `BENCH_incremental_sweep.json`.
//!
//! This is a plain `harness = false` binary (not Criterion) because the
//! deliverable is a machine-readable speedup record, not a statistical
//! distribution. Run with: `cargo bench -p hbm-bench --bench incremental_sweep`.

use std::time::Instant;

use hbm_traffic::DataPattern;
use hbm_undervolt::{
    ExecutionMode, Experiment, FaultFieldMode, KernelBackend, Platform, ReliabilityConfig,
    ReliabilityReport, ReliabilityTester, TestScope, VoltageSweep,
};
use hbm_units::Millivolts;
use serde::Serialize;

const SEED: u64 = 7;
const ITERATIONS: u32 = 3;

#[derive(Serialize)]
struct Entry {
    path: &'static str,
    seconds: f64,
    speedup_vs_rescan: f64,
    mean_faults: f64,
    mean_mask_reuse: f64,
}

#[derive(Serialize)]
struct Record {
    bench: &'static str,
    seed: u64,
    iterations: u32,
    points: usize,
    words_per_pc: u64,
    note: &'static str,
    results: Vec<Entry>,
}

fn workload(fault_field: FaultFieldMode, carry_forward: bool) -> ReliabilityTester {
    let config = ReliabilityConfig {
        sweep: VoltageSweep::new(Millivolts(1200), Millivolts(810), Millivolts(5))
            .expect("static sweep"),
        batch_size: 1,
        patterns: vec![DataPattern::AllOnes, DataPattern::AllZeros],
        scope: TestScope::Ports(vec![0, 1, 2, 3]),
        words_per_pc: Some(4096),
        sample_words: None,
        mode: ExecutionMode::CachedMasks,
        fault_field,
        kernel: KernelBackend::Auto,
        carry_forward,
    };
    ReliabilityTester::new(config).expect("config valid")
}

/// Best-of-N wall clock for the sweep under one fault-field/carry setting,
/// plus the report of the final run (all runs are bit-identical).
fn time_sweep(fault_field: FaultFieldMode, carry_forward: bool) -> (f64, ReliabilityReport) {
    let tester = workload(fault_field, carry_forward);
    let mut best = f64::INFINITY;
    let mut report = None;
    for _ in 0..ITERATIONS {
        let mut platform = Platform::builder().seed(SEED).workers(1).build();
        let start = Instant::now();
        let r = Experiment::run(&tester, &mut platform).expect("sweep");
        best = best.min(start.elapsed().as_secs_f64());
        report = Some(r);
    }
    (best, report.expect("at least one iteration"))
}

fn total_faults(report: &ReliabilityReport) -> f64 {
    report.points.iter().map(|p| p.total_mean_faults()).sum()
}

fn mean_reuse(report: &ReliabilityReport) -> f64 {
    let ratios: Vec<f64> = report.points.iter().filter_map(|p| p.mask_reuse).collect();
    if ratios.is_empty() {
        0.0
    } else {
        ratios.iter().sum::<f64>() / ratios.len() as f64
    }
}

fn main() {
    println!("incremental_sweep: seed {SEED}, best of {ITERATIONS} runs");

    let (legacy_secs, legacy) = time_sweep(FaultFieldMode::PerVoltage, true);
    println!("  legacy per-voltage : {legacy_secs:.3}s");

    let (rescan_secs, rescan) = time_sweep(FaultFieldMode::MonotoneCoupled, false);
    println!("  coupled rescan     : {rescan_secs:.3}s");

    let (inc_secs, incremental) = time_sweep(FaultFieldMode::MonotoneCoupled, true);
    let speedup = rescan_secs / inc_secs;
    println!("  coupled incremental: {inc_secs:.3}s  ({speedup:.2}x vs rescan)");

    // The incremental kernel is a pure performance path: every per-point
    // statistic — fault counts, polarities, per-port splits — must equal
    // the from-scratch coupled rescan exactly.
    assert_eq!(
        incremental.points, rescan.points,
        "incremental coupled sweep diverged from the from-scratch rescan"
    );
    assert!(
        speedup > 1.0,
        "carrying the working set must beat rescanning ({speedup:.2}x)"
    );

    let results = vec![
        Entry {
            path: "legacy-per-voltage",
            seconds: legacy_secs,
            speedup_vs_rescan: rescan_secs / legacy_secs,
            mean_faults: total_faults(&legacy),
            mean_mask_reuse: 0.0,
        },
        Entry {
            path: "coupled-rescan",
            seconds: rescan_secs,
            speedup_vs_rescan: 1.0,
            mean_faults: total_faults(&rescan),
            mean_mask_reuse: 0.0,
        },
        Entry {
            path: "coupled-incremental",
            seconds: inc_secs,
            speedup_vs_rescan: speedup,
            mean_faults: total_faults(&incremental),
            mean_mask_reuse: mean_reuse(&incremental),
        },
    ];

    let record = Record {
        bench: "incremental_sweep",
        seed: SEED,
        iterations: ITERATIONS,
        points: incremental.points.len(),
        words_per_pc: 4096,
        note: "speedup_vs_rescan = coupled-rescan wall clock / this path's wall \
               clock, best of N; the two coupled paths are asserted per-point \
               identical, so the speedup is free of accuracy cost",
        results,
    };

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_incremental_sweep.json"
    );
    let body = serde_json::to_string_pretty(&record).expect("serialize record");
    std::fs::write(path, body + "\n").expect("write BENCH_incremental_sweep.json");
    println!("wrote {path}");
}
