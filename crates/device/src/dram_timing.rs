//! DRAM core timing, voltage-dependent timing stretch, and an
//! access-pattern efficiency estimator.
//!
//! The organizational model treats memory accesses as instantaneous; this
//! module adds the DRAM core timing parameters (row activate/precharge,
//! CAS latency, refresh) and estimates what fraction of the pin bandwidth
//! different access patterns can sustain. It explains the two derates the
//! study's bandwidth numbers embody:
//!
//! - refresh and protocol overhead take the 460.8 GB/s raw pin rate to the
//!   ≈429 GB/s datasheet figure;
//! - controller/arbitration overhead of the traffic-generator design takes
//!   it further to the ≈310 GB/s the authors report reaching.
//!
//! # Voltage dependence
//!
//! Below-nominal supply does not only flip bits: the Voltron line of work
//! shows that reduced voltage first *stretches* the tRCD/tRAS-class core
//! timings, trading access latency before any fault appears.
//! [`TimingStretchModel`] captures that third axis deterministically: each
//! row-timing parameter grows linearly per volt below a knee voltage, with
//! a counter-hashed per-device slope variation seeded the same way the
//! fault field's process variation is — so one device seed fixes both its
//! fault map *and* its timing walls.

use hbm_units::{Megahertz, Millivolts};
use serde::{Deserialize, Serialize};

use crate::geometry::HbmGeometry;
use crate::timing::ClockConfig;

/// SplitMix64 finalizer, duplicated from the device's crash/power-up mixer
/// so the timing model stays usable without the fault crate (the device is
/// a leaf crate) while producing the same style of counter-hashed,
/// seed-reproducible variation.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Domain tag for the per-device timing-slope draw, so the timing
/// variation is independent of every other seeded quantity.
const TIMING_VARIATION_TAG: u64 = 0x7452_4344; // "tRCD"

/// Deterministic voltage→timing-stretch model (the Voltron third axis).
///
/// At or above [`knee`](TimingStretchModel::knee) the core timings are
/// nominal. Below it, each parameter family stretches linearly:
///
/// ```text
/// stretch(v) = 1 + slope · (knee − v) · device_factor(seed)
/// ```
///
/// where `slope` is a fractional stretch per volt below the knee
/// ([`row_slope_per_volt`](TimingStretchModel::row_slope_per_volt) for the
/// tRCD/tRP/tRAS/tCL family,
/// [`refresh_slope_per_volt`](TimingStretchModel::refresh_slope_per_volt)
/// for tRFC) and `device_factor` is a counter-hashed per-device multiplier
/// in `[1 − variation, 1 + variation]` — the same SplitMix64 seeding
/// discipline as the fault field's process variation, so a device seed
/// pins its timing behaviour exactly like its fault map. tREFI is a
/// controller constant and never stretches.
///
/// Stretch factors are non-decreasing as the supply descends (the slopes
/// and the device factor are non-negative by construction), which gives
/// the monotone latency guarantee the trade-off planner and the governor
/// rely on.
///
/// # Examples
///
/// ```
/// use hbm_device::{DramTimings, TimingStretchModel};
/// use hbm_units::Millivolts;
///
/// let stretch = TimingStretchModel::date21();
/// let nominal = DramTimings::hbm2();
/// let deep = nominal.at_voltage(&stretch, 7, Millivolts(900));
/// assert!(deep.t_rcd_ns > nominal.t_rcd_ns);
/// // Above the knee nothing changes.
/// assert_eq!(nominal.at_voltage(&stretch, 7, Millivolts(1200)), nominal);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingStretchModel {
    /// Knee voltage: timings are nominal at or above it.
    pub knee: Millivolts,
    /// Fractional stretch of the row-timing family (tRCD, tRP, tRAS, tCL)
    /// per volt of supply below the knee.
    pub row_slope_per_volt: f64,
    /// Fractional stretch of the refresh cycle time (tRFC) per volt of
    /// supply below the knee.
    pub refresh_slope_per_volt: f64,
    /// Half-width of the per-device slope variation, as a fraction
    /// (`0.1` = slopes vary ±10 % across devices).
    pub variation: f64,
}

impl TimingStretchModel {
    /// The calibration used by this reproduction: stretch begins at
    /// 1.10 V (inside the fault-free guardband, as Voltron observes),
    /// row timings grow 200 % per volt below the knee (≈ +2 % per 10 mV)
    /// and tRFC half as fast, with ±10 % per-device slope variation.
    #[must_use]
    pub fn date21() -> Self {
        TimingStretchModel {
            knee: Millivolts(1100),
            row_slope_per_volt: 2.0,
            refresh_slope_per_volt: 1.0,
            variation: 0.10,
        }
    }

    /// A stretch-free model: timings stay nominal at every voltage
    /// (the pre-Voltron assumption, for ablations).
    #[must_use]
    pub fn none() -> Self {
        TimingStretchModel {
            knee: Millivolts(0),
            row_slope_per_volt: 0.0,
            refresh_slope_per_volt: 0.0,
            variation: 0.0,
        }
    }

    /// The per-device slope multiplier in `[1 − variation, 1 + variation]`,
    /// counter-hashed from the device seed (clamped to stay non-negative so
    /// stretch remains monotone even for adversarial `variation`).
    #[must_use]
    pub fn device_factor(&self, seed: u64) -> f64 {
        if self.variation == 0.0 {
            return 1.0;
        }
        let hash = mix64(seed.wrapping_add(mix64(TIMING_VARIATION_TAG)));
        let unit = (hash >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        (1.0 + (2.0 * unit - 1.0) * self.variation).max(0.0)
    }

    /// Volts of supply below the knee (zero at or above it).
    fn undershoot_volts(&self, voltage: Millivolts) -> f64 {
        f64::from(self.knee.saturating_sub(voltage).as_u32()) / 1000.0
    }

    /// The row-family stretch factor (≥ 1) for a device at a voltage.
    #[must_use]
    pub fn row_stretch(&self, seed: u64, voltage: Millivolts) -> f64 {
        1.0 + self.row_slope_per_volt.max(0.0)
            * self.undershoot_volts(voltage)
            * self.device_factor(seed)
    }

    /// The tRFC stretch factor (≥ 1) for a device at a voltage.
    #[must_use]
    pub fn refresh_stretch(&self, seed: u64, voltage: Millivolts) -> f64 {
        1.0 + self.refresh_slope_per_volt.max(0.0)
            * self.undershoot_volts(voltage)
            * self.device_factor(seed)
    }
}

impl Default for TimingStretchModel {
    fn default() -> Self {
        TimingStretchModel::date21()
    }
}

/// DRAM core timing parameters, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramTimings {
    /// Row-to-column delay (activate → first read), ns.
    pub t_rcd_ns: f64,
    /// Row precharge time, ns.
    pub t_rp_ns: f64,
    /// CAS latency, ns.
    pub t_cl_ns: f64,
    /// Minimum row-active time, ns.
    pub t_ras_ns: f64,
    /// Refresh cycle time, ns (one all-bank refresh).
    pub t_rfc_ns: f64,
    /// Average refresh interval, ns (tREFI).
    pub t_refi_ns: f64,
}

impl DramTimings {
    /// Representative HBM2 timings at the study's 900 MHz clock.
    #[must_use]
    pub fn hbm2() -> Self {
        DramTimings {
            t_rcd_ns: 14.0,
            t_rp_ns: 14.0,
            t_cl_ns: 14.0,
            t_ras_ns: 33.0,
            t_rfc_ns: 260.0,
            t_refi_ns: 3_900.0,
        }
    }

    /// Row cycle time tRC = tRAS + tRP.
    #[must_use]
    pub fn t_rc_ns(&self) -> f64 {
        self.t_ras_ns + self.t_rp_ns
    }

    /// Fraction of time lost to refresh: tRFC / tREFI.
    #[must_use]
    pub fn refresh_overhead(&self) -> f64 {
        self.t_rfc_ns / self.t_refi_ns
    }

    /// The effective timings of a device at a supply voltage: the row
    /// family (tRCD, tRP, tRAS, tCL) and tRFC stretched per the model,
    /// tREFI unchanged. Deterministic in `(seed, voltage)`, with every
    /// parameter non-decreasing as the voltage descends.
    #[must_use]
    pub fn at_voltage(
        &self,
        stretch: &TimingStretchModel,
        seed: u64,
        voltage: Millivolts,
    ) -> DramTimings {
        let row = stretch.row_stretch(seed, voltage);
        let refresh = stretch.refresh_stretch(seed, voltage);
        DramTimings {
            t_rcd_ns: self.t_rcd_ns * row,
            t_rp_ns: self.t_rp_ns * row,
            t_cl_ns: self.t_cl_ns * row,
            t_ras_ns: self.t_ras_ns * row,
            t_rfc_ns: self.t_rfc_ns * refresh,
            t_refi_ns: self.t_refi_ns,
        }
    }
}

impl Default for DramTimings {
    fn default() -> Self {
        DramTimings::hbm2()
    }
}

/// Memory access patterns whose sustainable bandwidth the model estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Long sequential streams: every row fully consumed, row switches
    /// overlapped across banks.
    SequentialStream,
    /// One AXI word per row before moving on (worst-case row locality) but
    /// still interleaving across all banks.
    StridedSingleWord,
    /// Uniformly random words: row misses with limited overlap.
    RandomWord,
}

/// The efficiency estimator.
///
/// # Examples
///
/// ```
/// use hbm_device::{AccessPattern, AccessTimingModel};
///
/// let model = AccessTimingModel::vcu128();
/// let seq = model.efficiency(AccessPattern::SequentialStream);
/// let rnd = model.efficiency(AccessPattern::RandomWord);
/// assert!(seq > 0.85, "sequential streams sustain most of the pin rate");
/// assert!(rnd < seq / 2.0, "random access pays the row-miss penalty");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessTimingModel {
    geometry: HbmGeometry,
    clock: ClockConfig,
    timings: DramTimings,
}

impl AccessTimingModel {
    /// The study platform's model.
    #[must_use]
    pub fn vcu128() -> Self {
        AccessTimingModel::new(
            HbmGeometry::vcu128(),
            ClockConfig::vcu128(),
            DramTimings::hbm2(),
        )
    }

    /// Creates a model from explicit parameters.
    #[must_use]
    pub fn new(geometry: HbmGeometry, clock: ClockConfig, timings: DramTimings) -> Self {
        AccessTimingModel {
            geometry,
            clock,
            timings,
        }
    }

    /// The timing parameters.
    #[must_use]
    pub fn timings(&self) -> DramTimings {
        self.timings
    }

    /// The same model with its core timings stretched for a device at a
    /// supply voltage (see [`DramTimings::at_voltage`]).
    #[must_use]
    pub fn at_voltage(
        &self,
        stretch: &TimingStretchModel,
        seed: u64,
        voltage: Millivolts,
    ) -> AccessTimingModel {
        AccessTimingModel {
            geometry: self.geometry,
            clock: self.clock,
            timings: self.timings.at_voltage(stretch, seed, voltage),
        }
    }

    /// Raw pin bandwidth in GB/s: every pseudo channel moving 8 bytes per
    /// transfer (460.8 GB/s on the study platform).
    #[must_use]
    pub fn raw_peak_gbps(&self) -> f64 {
        f64::from(self.geometry.total_pcs()) * 8.0 * self.clock.data_rate_mts() * 1e6 / 1e9
    }

    /// Delivered bandwidth in GB/s a pattern sustains at this model's
    /// timings: the raw pin rate times [`efficiency`](Self::efficiency).
    #[must_use]
    pub fn delivered_gbps(&self, pattern: AccessPattern) -> f64 {
        self.raw_peak_gbps() * self.efficiency(pattern)
    }

    /// Latency of one access under a pattern, in nanoseconds: row-missing
    /// patterns pay the activate (tRCD) plus CAS latency before the word
    /// transfers; sequential streams hit the open row and pay only CAS.
    #[must_use]
    pub fn access_latency_ns(&self, pattern: AccessPattern) -> f64 {
        let row_miss = match pattern {
            AccessPattern::SequentialStream => 0.0,
            AccessPattern::StridedSingleWord | AccessPattern::RandomWord => self.timings.t_rcd_ns,
        };
        row_miss + self.timings.t_cl_ns + self.word_transfer_ns()
    }

    /// Transfer time of one 256-bit AXI word on a 64-bit pseudo channel:
    /// four beats at the data rate.
    #[must_use]
    pub fn word_transfer_ns(&self) -> f64 {
        4.0 / (self.clock.data_rate_mts() * 1e-3)
    }

    /// Service time of one full row (all its words back to back).
    #[must_use]
    pub fn row_service_ns(&self) -> f64 {
        f64::from(self.geometry.words_per_row()) * self.word_transfer_ns()
    }

    /// Estimated fraction of the pin bandwidth a pattern sustains,
    /// including refresh overhead.
    #[must_use]
    pub fn efficiency(&self, pattern: AccessPattern) -> f64 {
        let banks = f64::from(self.geometry.banks_per_pc());
        let data_ns = match pattern {
            AccessPattern::SequentialStream => self.row_service_ns(),
            AccessPattern::StridedSingleWord | AccessPattern::RandomWord => self.word_transfer_ns(),
        };
        // Row-cycle cost per visited row; overlapped across the other banks
        // for patterns that interleave (sequential and strided do; random
        // achieves only partial overlap).
        let overlap_banks = match pattern {
            AccessPattern::SequentialStream | AccessPattern::StridedSingleWord => banks - 1.0,
            AccessPattern::RandomWord => (banks - 1.0) / 4.0,
        };
        let row_overhead = self.timings.t_rcd_ns + self.timings.t_rp_ns;
        let visible_stall = (row_overhead - overlap_banks * data_ns).max(0.0);
        let busy = data_ns / (data_ns + visible_stall);
        busy * (1.0 - self.timings.refresh_overhead())
    }

    /// The datasheet-level derate (sequential streams): matches the
    /// 429/460.8 ≈ 0.93 figure of the study platform.
    #[must_use]
    pub fn datasheet_derate(&self) -> f64 {
        self.efficiency(AccessPattern::SequentialStream)
    }

    /// The memory clock the model assumes.
    #[must_use]
    pub fn memory_clock(&self) -> Megahertz {
        self.clock.memory_clock()
    }
}

impl Default for AccessTimingModel {
    fn default() -> Self {
        AccessTimingModel::vcu128()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hbm2_timings_plausible() {
        let t = DramTimings::hbm2();
        assert_eq!(t.t_rc_ns(), 47.0);
        assert!((t.refresh_overhead() - 0.0667).abs() < 1e-3);
    }

    #[test]
    fn word_and_row_times() {
        let m = AccessTimingModel::vcu128();
        // 4 beats at 1800 MT/s ≈ 2.22 ns.
        assert!((m.word_transfer_ns() - 2.222).abs() < 0.01);
        // 32 words per row ≈ 71.1 ns.
        assert!((m.row_service_ns() - 71.1).abs() < 0.2);
    }

    #[test]
    fn sequential_matches_datasheet_derate() {
        let m = AccessTimingModel::vcu128();
        let derate = m.datasheet_derate();
        // The study's datasheet figure: 429/460.8 ≈ 0.931. With full bank
        // overlap the only sequential loss is refresh (≈6.7 %).
        assert!((derate - 0.9309).abs() < 0.01, "derate {derate}");
    }

    #[test]
    fn pattern_ordering() {
        let m = AccessTimingModel::vcu128();
        let seq = m.efficiency(AccessPattern::SequentialStream);
        let strided = m.efficiency(AccessPattern::StridedSingleWord);
        let random = m.efficiency(AccessPattern::RandomWord);
        // With 16 banks the strided pattern fully hides the row cost, so it
        // matches sequential; random cannot.
        assert!(seq >= strided, "{seq} vs {strided}");
        assert!(strided > random, "{strided} vs {random}");
        assert!(random > 0.0);
    }

    #[test]
    fn strided_interleaving_hides_most_of_the_row_cost() {
        // 16 banks × 2.22 ns words cover 33 ns of the 28 ns row overhead.
        let m = AccessTimingModel::vcu128();
        let strided = m.efficiency(AccessPattern::StridedSingleWord);
        assert!(strided > 0.9, "strided efficiency {strided}");
    }

    #[test]
    fn random_access_is_row_bound() {
        let m = AccessTimingModel::vcu128();
        let random = m.efficiency(AccessPattern::RandomWord);
        // data 2.22 ns vs visible stall ≈ 28 − 3.75×2.22 ≈ 19.7 ns.
        assert!((0.05..0.2).contains(&random), "random efficiency {random}");
    }

    #[test]
    fn stretch_is_identity_at_and_above_the_knee() {
        let stretch = TimingStretchModel::date21();
        let nominal = DramTimings::hbm2();
        for mv in [1100, 1150, 1200] {
            assert_eq!(
                nominal.at_voltage(&stretch, 7, Millivolts(mv)),
                nominal,
                "no stretch at {mv} mV"
            );
        }
    }

    #[test]
    fn stretch_grows_monotonically_below_the_knee() {
        let stretch = TimingStretchModel::date21();
        let nominal = DramTimings::hbm2();
        let mut last = nominal;
        for mv in (810..=1090).rev().step_by(10) {
            let t = nominal.at_voltage(&stretch, 7, Millivolts(mv));
            assert!(t.t_rcd_ns >= last.t_rcd_ns, "tRCD monotone at {mv} mV");
            assert!(t.t_ras_ns >= last.t_ras_ns, "tRAS monotone at {mv} mV");
            assert!(t.t_rfc_ns >= last.t_rfc_ns, "tRFC monotone at {mv} mV");
            assert_eq!(t.t_refi_ns, nominal.t_refi_ns, "tREFI never stretches");
            last = t;
        }
        // The full descent is a substantial stretch, not a rounding blip.
        assert!(last.t_rcd_ns > nominal.t_rcd_ns * 1.3);
    }

    #[test]
    fn device_factor_is_seeded_and_bounded() {
        let stretch = TimingStretchModel::date21();
        let a = stretch.device_factor(1);
        let b = stretch.device_factor(2);
        assert_eq!(a, stretch.device_factor(1), "deterministic per seed");
        assert_ne!(a, b, "different devices draw different slopes");
        for seed in 0..64 {
            let f = stretch.device_factor(seed);
            assert!((0.9..=1.1).contains(&f), "seed {seed}: factor {f}");
        }
        assert_eq!(TimingStretchModel::none().device_factor(7), 1.0);
    }

    #[test]
    fn latency_and_bandwidth_track_voltage() {
        let stretch = TimingStretchModel::date21();
        let nominal = AccessTimingModel::vcu128();
        let deep = nominal.at_voltage(&stretch, 7, Millivolts(900));
        // Random access pays the stretched activate directly.
        assert!(
            deep.access_latency_ns(AccessPattern::RandomWord)
                > nominal.access_latency_ns(AccessPattern::RandomWord)
        );
        assert!(
            deep.delivered_gbps(AccessPattern::RandomWord)
                < nominal.delivered_gbps(AccessPattern::RandomWord)
        );
        // Sequential streams hide the row cost behind bank overlap; only
        // the tRFC stretch shows, so the derate is small but real.
        let seq_drop = nominal.delivered_gbps(AccessPattern::SequentialStream)
            - deep.delivered_gbps(AccessPattern::SequentialStream);
        assert!(seq_drop > 0.0);
        assert!(seq_drop < 20.0, "sequential loses only refresh: {seq_drop}");
        // The raw pin rate itself is voltage-independent.
        assert_eq!(deep.raw_peak_gbps(), nominal.raw_peak_gbps());
        assert!((nominal.raw_peak_gbps() - 460.8).abs() < 1e-9);
    }

    #[test]
    fn stretch_free_model_is_voltage_blind() {
        let nominal = AccessTimingModel::vcu128();
        let at_floor = nominal.at_voltage(&TimingStretchModel::none(), 7, Millivolts(810));
        assert_eq!(at_floor.timings(), nominal.timings());
    }

    #[test]
    fn fewer_banks_hurt() {
        let small = AccessTimingModel::new(
            HbmGeometry::custom(1, 1, 2, 2, 64, 32),
            ClockConfig::vcu128(),
            DramTimings::hbm2(),
        );
        let large = AccessTimingModel::vcu128();
        assert!(
            small.efficiency(AccessPattern::StridedSingleWord)
                < large.efficiency(AccessPattern::StridedSingleWord)
        );
    }
}
