//! End-to-end integration: the full experimental pipeline of the paper run
//! against the simulated platform, asserting the calibration targets of
//! DESIGN.md §3 across crate boundaries.

use hbm_undervolt_suite::faults::FaultMap;
use hbm_undervolt_suite::power::HbmPowerModel;
use hbm_undervolt_suite::traffic::DataPattern;
use hbm_undervolt_suite::undervolt::characterization::{stack_fraction_series, variation_summary};
use hbm_undervolt_suite::undervolt::report::{compute_headlines, headline_metrics};
use hbm_undervolt_suite::undervolt::{
    GuardbandFinder, Platform, PowerSweep, ReliabilityConfig, ReliabilityTester, TradeOffAnalysis,
    VoltageSweep,
};
use hbm_units::{Millivolts, Ratio};

fn platform() -> Platform {
    Platform::builder().seed(7).build()
}

#[test]
fn headline_numbers_reproduce_the_paper() {
    let metrics = compute_headlines(&mut platform()).expect("pipeline");
    // Paper: 19 % guardband (218/1200 = 18.3 % before rounding).
    assert!((18.0..19.5).contains(&metrics.guardband_percent));
    // Paper: 1.5× at the guardband edge.
    assert!((1.45..1.55).contains(&metrics.saving_at_guardband));
    // Paper: 2.3× total at 0.85 V.
    assert!((2.2..2.45).contains(&metrics.saving_at_850mv));
    // Paper: idle is nearly one third of full load.
    assert!((0.30..0.37).contains(&metrics.idle_fraction));
    // Paper: α·C_L·f 14 % below nominal at 0.85 V.
    assert!((0.10..0.18).contains(&metrics.acf_drop_at_850mv));
}

#[test]
fn guardband_landmarks_reproduce_the_paper() {
    let report = GuardbandFinder::new().run(&mut platform()).expect("search");
    assert_eq!(report.v_min, Millivolts(980));
    assert_eq!(report.v_critical, Millivolts(810));
    assert_eq!(report.guardband(), Millivolts(220));
}

#[test]
fn power_saving_is_bandwidth_independent() {
    // §III-A: "the amount of power savings is independent of the bandwidth
    // utilization".
    let mut p = platform();
    let report = PowerSweep::date21().run(&mut p).expect("sweep");
    let savings: Vec<f64> = [0usize, 8, 16, 24, 32]
        .iter()
        .map(|&ports| report.saving(Millivolts(980), ports).expect("swept"))
        .collect();
    let (min, max) = savings
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &s| (lo.min(s), hi.max(s)));
    assert!(max - min < 0.06, "savings spread too wide: {savings:?}");
}

#[test]
fn undervolting_preserves_bandwidth() {
    // The entire point of undervolting vs frequency scaling: bandwidth is
    // untouched by the supply voltage.
    let mut p = platform();
    let full = p.achieved_bandwidth();
    p.set_voltage(Millivolts(850)).expect("set voltage");
    assert_eq!(p.achieved_bandwidth(), full);
    assert!((full.as_f64() - 310.0).abs() < 1e-9);
}

#[test]
fn reliability_sweep_matches_fault_model_envelope() {
    // Run Algorithm 1 (measured, reduced geometry) and cross-validate the
    // measured rates against the analytic predictor at the same geometry.
    let mut p = platform();
    let mut config = ReliabilityConfig::quick();
    config.batch_size = 1;
    config.words_per_pc = Some(2048);
    let report = ReliabilityTester::new(config)
        .expect("config")
        .run(&mut p)
        .expect("sweep");

    for point in report.points.iter().filter(|pt| !pt.crashed) {
        let measured: f64 = point.total_mean_faults() / report.checked_bits_per_run as f64;
        let predicted = p.predictor().device_rate(point.voltage).as_f64()
            // Both patterns probe complementary polarities: the union is
            // what the two-pattern total approximates.
            ;
        if predicted > 1e-4 {
            let ratio = measured / predicted;
            assert!(
                (0.5..2.0).contains(&ratio),
                "at {}: measured {measured:.3e} vs predicted {predicted:.3e}",
                point.voltage
            );
        }
    }
}

#[test]
fn fig4_fig5_fig6_shapes_hold_together() {
    let p = platform();
    let predictor = p.full_scale_predictor();

    // Fig. 4: zero in guardband, exponential growth, saturation by 0.83 V,
    // HBM1 above HBM0 in the exponential region.
    let sweep = VoltageSweep::new(Millivolts(980), Millivolts(810), Millivolts(10)).unwrap();
    let fig4 = stack_fraction_series(predictor, sweep);
    assert_eq!(fig4[0].hbm0, Ratio::ZERO);
    let at_830 = fig4
        .iter()
        .find(|pt| pt.voltage == Millivolts(830))
        .unwrap();
    assert!(at_830.hbm0.as_f64() > 0.999 && at_830.hbm1.as_f64() > 0.999);
    let at_880 = fig4
        .iter()
        .find(|pt| pt.voltage == Millivolts(880))
        .unwrap();
    assert!(at_880.hbm1 > at_880.hbm0);

    // §III-B: onsets and ratios.
    let summary = variation_summary(predictor);
    assert_eq!(summary.onset_1to0, Some(Millivolts(970)));
    assert_eq!(summary.onset_0to1, Some(Millivolts(960)));
    assert!((1.05..1.45).contains(&summary.polarity_ratio));
    assert!((1.05..1.30).contains(&summary.stack_ratio));

    // Fig. 6: the paper's worked example — a handful of fault-free PCs at
    // 0.95 V offering ≈1.6× savings at reduced capacity.
    let map = FaultMap::from_predictor(predictor, Millivolts(980), Millivolts(810), Millivolts(10));
    let analysis = TradeOffAnalysis::new(map, HbmPowerModel::date21());
    let n_950 = analysis
        .usable_pc_curve(Ratio::ZERO)
        .at(Millivolts(950))
        .unwrap();
    assert!(
        (3..=12).contains(&n_950),
        "fault-free PCs at 0.95 V: {n_950}"
    );
    let point = analysis
        .plan((n_950 as u64) * (256 << 20), Ratio::ZERO)
        .expect("plan");
    assert!(point.voltage <= Millivolts(950));
    assert!(
        (1.5..1.8).contains(&point.saving_factor),
        "{}",
        point.saving_factor
    );
}

#[test]
fn polarity_split_shows_in_measured_data() {
    // Measured (bit-level) check of the §III-B polarity observations on the
    // reduced platform: all-ones exposes only 1→0, all-zeros only 0→1, and
    // at saturation the 0→1 share exceeds the 1→0 share (53 % vs 47 %).
    let mut p = platform();
    let mut config = ReliabilityConfig::quick();
    config.sweep = VoltageSweep::new(Millivolts(830), Millivolts(830), Millivolts(10)).unwrap();
    config.batch_size = 1;
    config.words_per_pc = Some(1024);
    let report = ReliabilityTester::new(config)
        .expect("config")
        .run(&mut p)
        .expect("run");
    let point = report.at(Millivolts(830)).unwrap();
    let ones = point.outcome(DataPattern::AllOnes).unwrap();
    let zeros = point.outcome(DataPattern::AllZeros).unwrap();
    assert_eq!(ones.flips_0to1, 0);
    assert_eq!(zeros.flips_1to0, 0);
    assert!(
        zeros.flips_0to1 > ones.flips_1to0,
        "stuck-at-1 share must dominate at saturation: {} vs {}",
        zeros.flips_0to1,
        ones.flips_1to0
    );
}

#[test]
fn headline_metrics_requires_complete_sweep() {
    // The metrics helper fails loudly on an incomplete sweep instead of
    // fabricating numbers.
    let mut p = platform();
    let narrow = PowerSweep::new(
        VoltageSweep::new(Millivolts(1200), Millivolts(1000), Millivolts(100)).unwrap(),
        vec![32],
        0,
    )
    .unwrap()
    .run(&mut p)
    .unwrap();
    let guardband = GuardbandFinder::new().run(&mut p).unwrap();
    assert!(headline_metrics(&narrow, &guardband).is_err());
}
