//! Physical-quantity newtypes shared across the HBM undervolting workspace.
//!
//! All experiments in the reproduced study ("Understanding Power Consumption
//! and Reliability of High-Bandwidth Memory with Voltage Underscaling",
//! DATE 2021) manipulate voltages, currents, powers, bandwidths and
//! temperatures. Mixing those up as bare `f64`s is a classic source of
//! silent unit bugs, so this crate provides zero-cost newtypes with the
//! arithmetic that is physically meaningful and nothing else
//! (see C-NEWTYPE in the Rust API guidelines).
//!
//! Voltage is special: the study sweeps the HBM supply in exact 10 mV steps
//! and compares against exact landmarks (1.20 V, 0.98 V, 0.81 V). To keep
//! those comparisons exact, [`Millivolts`] is integer-backed and is the
//! canonical voltage type throughout the workspace; floating-point volts are
//! only derived views.
//!
//! # Examples
//!
//! ```
//! use hbm_units::{Millivolts, Watts, Amperes};
//!
//! let nominal = Millivolts::from_volts(1.2);
//! assert_eq!(nominal, Millivolts(1200));
//!
//! let power = nominal.to_volts() * Amperes(2.5); // Volts × Amperes = Watts
//! assert_eq!(power, Watts(3.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bandwidth;
mod electrical;
mod ratio;
mod thermal;

pub use bandwidth::{BytesPerSecond, GigabytesPerSecond};
pub use electrical::{
    Amperes, FaradsPerSecond, Megahertz, Millivolts, Ohms, ParseMillivoltsError, Volts, Watts,
};
pub use ratio::Ratio;
pub use thermal::Celsius;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn units_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Millivolts>();
        assert_send_sync::<Volts>();
        assert_send_sync::<Watts>();
        assert_send_sync::<Amperes>();
        assert_send_sync::<Ohms>();
        assert_send_sync::<Megahertz>();
        assert_send_sync::<FaradsPerSecond>();
        assert_send_sync::<GigabytesPerSecond>();
        assert_send_sync::<Ratio>();
        assert_send_sync::<Celsius>();
    }
}
