//! Analytical HBM power model, calibrated to the DATE 2021 undervolting
//! measurements.
//!
//! The study's power analysis rests on the CMOS dynamic-power relation
//! (its Equation (1)):
//!
//! ```text
//! P = α · C_L · f · V_dd²
//! ```
//!
//! The model in this crate captures the three behaviours the paper
//! characterizes:
//!
//! - **quadratic voltage scaling**: at a fixed bandwidth, power scales with
//!   `V²` — undervolting from 1.20 V to 0.98 V saves the famous 1.5×
//!   regardless of utilization;
//! - **idle floor**: an idle HBM still consumes about one third of its
//!   full-load power (clocking and refresh keep switching capacitance);
//! - **stuck-bit capacitance loss**: below the guardband, bits that are
//!   stuck at 0 or 1 no longer charge/discharge, so the effective
//!   `α·C_L·f` drops — 14 % below its nominal value at 0.85 V — which
//!   pushes the total savings at 0.85 V to ≈2.3×.
//!
//! [`PowerAnalysis`] implements the paper's Fig. 3 methodology: dividing
//! measured powers by `V²` to expose the effective switched capacitance.
//!
//! # Examples
//!
//! ```
//! use hbm_power::HbmPowerModel;
//! use hbm_units::{Millivolts, Ratio};
//!
//! let model = HbmPowerModel::date21();
//! let nominal = model.power(Millivolts(1200), Ratio::ONE, Ratio::ZERO);
//! let guardband = model.power(Millivolts(980), Ratio::ONE, Ratio::ZERO);
//! let saving = nominal / guardband;
//! assert!((saving - 1.5).abs() < 0.01, "guardband saving {saving}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod model;

pub use analysis::{AcfSample, PowerAnalysis};
pub use model::{HbmPowerModel, PowerModelParams};
