//! Device geometry: how stacks, channels, pseudo channels, banks and rows
//! compose, and how big everything is.

use serde::{Deserialize, Serialize};

/// Geometry of an HBM-enabled device.
///
/// The default construction, [`HbmGeometry::vcu128`], mirrors the platform of
/// the study: 2 stacks × 8 channels × 2 pseudo channels, 256 MB per pseudo
/// channel, addressed in 256-bit (32-byte) AXI words — `8M` words per pseudo
/// channel and `256M` words across the whole device, exactly the `memSize`
/// values used by the paper's Algorithm 1.
///
/// All counts are powers of two so address encode/decode are exact bit-field
/// operations.
///
/// # Examples
///
/// ```
/// use hbm_device::HbmGeometry;
///
/// let g = HbmGeometry::vcu128();
/// assert_eq!(g.total_pcs(), 32);
/// assert_eq!(g.words_per_pc(), 8 << 20);          // 8M AXI words
/// assert_eq!(g.total_words(), 256 << 20);         // 256M AXI words
/// assert_eq!(g.total_bytes(), 8 << 30);           // 8 GB
///
/// // Scaled-down geometry for fast exhaustive tests: same organization,
/// // 1024× fewer rows per bank.
/// let small = HbmGeometry::vcu128().scaled(1024);
/// assert_eq!(small.total_pcs(), 32);
/// assert_eq!(small.words_per_pc(), 8 << 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HbmGeometry {
    stacks: u8,
    channels_per_stack: u8,
    pcs_per_channel: u8,
    banks_per_pc: u16,
    rows_per_bank: u32,
    words_per_row: u16,
}

/// Width of one AXI word in bits (the user-side access granularity).
pub const AXI_WORD_BITS: u32 = 256;
/// Width of one AXI word in bytes.
pub const AXI_WORD_BYTES: u32 = AXI_WORD_BITS / 8;

impl HbmGeometry {
    /// Full-scale geometry of the VCU128 platform used in the study:
    /// 2 stacks, 8 channels/stack, 2 PCs/channel, 16 banks/PC,
    /// 16384 rows/bank, 32 words/row (1 KB rows) — 256 MB per PC, 8 GB total.
    #[must_use]
    pub fn vcu128() -> Self {
        HbmGeometry {
            stacks: 2,
            channels_per_stack: 8,
            pcs_per_channel: 2,
            banks_per_pc: 16,
            rows_per_bank: 16_384,
            words_per_row: 32,
        }
    }

    /// A reduced geometry for fast exhaustive tests: identical organization
    /// with 1024× fewer rows per bank (256 KB per PC, 8 MB total).
    #[must_use]
    pub fn vcu128_reduced() -> Self {
        HbmGeometry::vcu128().scaled(1024)
    }

    /// Creates a custom geometry.
    ///
    /// # Panics
    ///
    /// Panics unless every count is a non-zero power of two and
    /// `stacks × channels_per_stack × pcs_per_channel ≤ 32` (the global
    /// pseudo-channel index space of the modelled platform).
    #[must_use]
    pub fn custom(
        stacks: u8,
        channels_per_stack: u8,
        pcs_per_channel: u8,
        banks_per_pc: u16,
        rows_per_bank: u32,
        words_per_row: u16,
    ) -> Self {
        let g = HbmGeometry {
            stacks,
            channels_per_stack,
            pcs_per_channel,
            banks_per_pc,
            rows_per_bank,
            words_per_row,
        };
        g.validate();
        g
    }

    fn validate(self) {
        fn pow2(name: &str, v: u64) {
            assert!(
                v != 0 && v.is_power_of_two(),
                "{name} must be a non-zero power of two, got {v}"
            );
        }
        pow2("stacks", u64::from(self.stacks));
        pow2("channels_per_stack", u64::from(self.channels_per_stack));
        pow2("pcs_per_channel", u64::from(self.pcs_per_channel));
        pow2("banks_per_pc", u64::from(self.banks_per_pc));
        pow2("rows_per_bank", u64::from(self.rows_per_bank));
        pow2("words_per_row", u64::from(self.words_per_row));
        assert!(
            self.total_pcs() <= 32,
            "at most 32 pseudo channels supported, got {}",
            self.total_pcs()
        );
    }

    /// Returns a geometry with `factor`× fewer rows per bank (the smallest
    /// bank still has one row). Organization (stack/channel/PC/bank counts)
    /// is unchanged, so per-PC fault *rates* remain comparable with the
    /// full-scale device while exhaustive walks become cheap.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not a power of two.
    #[must_use]
    pub fn scaled(self, factor: u32) -> Self {
        assert!(
            factor.is_power_of_two(),
            "scale factor must be a power of two, got {factor}"
        );
        HbmGeometry {
            rows_per_bank: (self.rows_per_bank / factor).max(1),
            ..self
        }
    }

    /// Number of HBM stacks.
    #[must_use]
    pub fn stacks(self) -> u8 {
        self.stacks
    }

    /// Memory channels per stack (8 on the VCU128).
    #[must_use]
    pub fn channels_per_stack(self) -> u8 {
        self.channels_per_stack
    }

    /// Pseudo channels per memory channel (2 on the VCU128).
    #[must_use]
    pub fn pcs_per_channel(self) -> u8 {
        self.pcs_per_channel
    }

    /// Banks per pseudo channel.
    #[must_use]
    pub fn banks_per_pc(self) -> u16 {
        self.banks_per_pc
    }

    /// Rows per bank.
    #[must_use]
    pub fn rows_per_bank(self) -> u32 {
        self.rows_per_bank
    }

    /// AXI words per row.
    #[must_use]
    pub fn words_per_row(self) -> u16 {
        self.words_per_row
    }

    /// Pseudo channels per stack.
    #[must_use]
    pub fn pcs_per_stack(self) -> u8 {
        self.channels_per_stack * self.pcs_per_channel
    }

    /// Total pseudo channels in the device (32 on the VCU128).
    #[must_use]
    pub fn total_pcs(self) -> u8 {
        self.stacks * self.pcs_per_stack()
    }

    /// Addressable AXI words per pseudo channel.
    #[must_use]
    pub fn words_per_pc(self) -> u64 {
        u64::from(self.banks_per_pc) * u64::from(self.rows_per_bank) * u64::from(self.words_per_row)
    }

    /// Addressable AXI words per stack.
    #[must_use]
    pub fn words_per_stack(self) -> u64 {
        self.words_per_pc() * u64::from(self.pcs_per_stack())
    }

    /// Total addressable AXI words in the device.
    #[must_use]
    pub fn total_words(self) -> u64 {
        self.words_per_pc() * u64::from(self.total_pcs())
    }

    /// Capacity of one pseudo channel in bytes.
    #[must_use]
    pub fn bytes_per_pc(self) -> u64 {
        self.words_per_pc() * u64::from(AXI_WORD_BYTES)
    }

    /// Total device capacity in bytes.
    #[must_use]
    pub fn total_bytes(self) -> u64 {
        self.total_words() * u64::from(AXI_WORD_BYTES)
    }

    /// Total device capacity in bits (the denominator of fault fractions).
    #[must_use]
    pub fn total_bits(self) -> u64 {
        self.total_bytes() * 8
    }

    /// Bits per pseudo channel.
    #[must_use]
    pub fn bits_per_pc(self) -> u64 {
        self.bytes_per_pc() * 8
    }

    /// Number of low bits holding the column (word-in-row) field.
    #[must_use]
    pub fn col_bits(self) -> u32 {
        u32::from(self.words_per_row).trailing_zeros()
    }

    /// Number of bits holding the bank field.
    #[must_use]
    pub fn bank_bits(self) -> u32 {
        u32::from(self.banks_per_pc).trailing_zeros()
    }

    /// Number of bits holding the row field.
    #[must_use]
    pub fn row_bits(self) -> u32 {
        self.rows_per_bank.trailing_zeros()
    }
}

impl Default for HbmGeometry {
    /// The full-scale VCU128 geometry.
    fn default() -> Self {
        HbmGeometry::vcu128()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vcu128_matches_paper_sizes() {
        let g = HbmGeometry::vcu128();
        assert_eq!(g.stacks(), 2);
        assert_eq!(g.channels_per_stack(), 8);
        assert_eq!(g.pcs_per_channel(), 2);
        assert_eq!(g.pcs_per_stack(), 16);
        assert_eq!(g.total_pcs(), 32);
        // Algorithm 1: memSize = 8M words per PC, 256M words for the whole HBM.
        assert_eq!(g.words_per_pc(), 8 * 1024 * 1024);
        assert_eq!(g.total_words(), 256 * 1024 * 1024);
        // 256 MB per PC, 4 GB per stack, 8 GB total.
        assert_eq!(g.bytes_per_pc(), 256 << 20);
        assert_eq!(g.words_per_stack() * u64::from(AXI_WORD_BYTES), 4 << 30);
        assert_eq!(g.total_bytes(), 8 << 30);
    }

    #[test]
    fn scaling_preserves_organization() {
        let g = HbmGeometry::vcu128().scaled(1024);
        assert_eq!(g.total_pcs(), 32);
        assert_eq!(g.banks_per_pc(), 16);
        assert_eq!(g.rows_per_bank(), 16);
        assert_eq!(g.words_per_pc(), 8 * 1024);
    }

    #[test]
    fn scaling_saturates_at_one_row() {
        let g = HbmGeometry::vcu128().scaled(1 << 20);
        assert_eq!(g.rows_per_bank(), 1);
    }

    #[test]
    fn bit_field_widths() {
        let g = HbmGeometry::vcu128();
        assert_eq!(g.col_bits(), 5);
        assert_eq!(g.bank_bits(), 4);
        assert_eq!(g.row_bits(), 14);
        assert_eq!(
            g.col_bits() + g.bank_bits() + g.row_bits(),
            g.words_per_pc().trailing_zeros()
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_rejected() {
        let _ = HbmGeometry::custom(2, 8, 2, 12, 100, 32);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_scale_rejected() {
        let _ = HbmGeometry::vcu128().scaled(1000);
    }

    #[test]
    fn default_is_vcu128() {
        assert_eq!(HbmGeometry::default(), HbmGeometry::vcu128());
    }

    #[test]
    fn total_bits() {
        assert_eq!(HbmGeometry::vcu128().total_bits(), (8u64 << 30) * 8);
        assert_eq!(HbmGeometry::vcu128().bits_per_pc(), (256u64 << 20) * 8);
    }
}
