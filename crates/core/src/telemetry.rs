//! Structured telemetry for sweep campaigns: typed events, counters and
//! histograms, and pluggable sinks.
//!
//! Long undervolting campaigns used to be a black box while they ran —
//! retries, power cycles and checkpoint writes happened silently, and the
//! kernel's cache behaviour was invisible. This module gives every runtime
//! layer one structured outlet:
//!
//! - [`TelemetryEvent`]: the typed event vocabulary (sweep/point lifecycle,
//!   retries, crashes, power cycles, checkpoints, quarantines, worker
//!   shards, power measurements);
//! - [`Observer`]: the sink trait — receives every [`TraceRecord`] plus a
//!   final [`MetricsSnapshot`];
//! - [`Telemetry`]: the hub the runtimes emit into — fan-out to observers
//!   plus a [`Metrics`] counter registry;
//! - [`JsonlSink`]: a machine-readable JSON-lines trace writer;
//! - [`ProgressSink`]: a human-readable progress log.
//!
//! # Determinism
//!
//! The event *stream* is deterministic: emission happens in the supervisor
//! and engine control flow, which is invariant under the worker count, and
//! timestamps come from the run's [`Clock`](crate::Clock) — so a fixed
//! seed produces a byte-identical JSONL trace at 1, 2 or 4 workers
//! (enforced by `tests/telemetry_determinism.rs`). Scheduling-dependent
//! measurements (tile-cache hit/miss counts, wall-time histograms) live
//! only in the [`Metrics`] registry, never in the trace.
//!
//! # Examples
//!
//! ```
//! use hbm_undervolt::telemetry::{JsonlSink, SharedBuffer, Telemetry};
//! use hbm_undervolt::SweepConfig;
//!
//! # fn main() -> Result<(), hbm_undervolt::ExperimentError> {
//! let buffer = SharedBuffer::new();
//! let telemetry = Telemetry::new().with_observer(Box::new(JsonlSink::new(buffer.clone())));
//! SweepConfig::quick().run_observed(&telemetry)?;
//! telemetry.finish();
//! assert!(buffer.contents().contains("SweepCompleted"));
//! # Ok(())
//! # }
//! ```

use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use hbm_units::Millivolts;
use serde::{Deserialize, Serialize};

/// Number of log₂ buckets in the wall-time histogram: bucket `i > 0` counts
/// durations whose bit length is `i` (i.e. in `[2^(i−1), 2^i)` ms), bucket
/// 0 counts zero-length durations, and the last bucket absorbs everything
/// longer.
pub const WALL_HISTOGRAM_BUCKETS: usize = 16;

/// One line of a telemetry trace: a monotonically increasing sequence
/// number, a clock stamp, and the typed event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Emission order within the run (0-based, gap-free).
    pub seq: u64,
    /// The run clock's `now_ms` reading when the event was emitted
    /// (zeroed by [`JsonlSink::diffable`] so traces stay comparable
    /// across runs on the real wall clock).
    pub t_ms: u64,
    /// What happened.
    pub event: TelemetryEvent,
}

/// The typed event vocabulary of the sweep runtimes.
///
/// Every variant is scheduling-invariant: for a fixed seed and
/// configuration the same events are emitted in the same order at every
/// engine worker count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TelemetryEvent {
    /// A sweep campaign began.
    SweepStarted {
        /// The experiment kind (`"supervised-sweep"`, `"reliability"`,
        /// `"power-sweep"`).
        experiment: String,
        /// The platform seed.
        seed: u64,
        /// Points the sweep will measure (voltages, or voltage × port
        /// steps for a power sweep).
        points: u64,
        /// The sweep's first (highest) voltage, in millivolts.
        from_mv: u32,
        /// The sweep's last (lowest) voltage, in millivolts.
        to_mv: u32,
        /// The mask-kernel backend token (`"scalar"` / `"bitsliced"` /
        /// `"auto"`) the sweep generates faults with. Recorded because
        /// resumed sweeps must keep the backend fixed, like the fault
        /// field; all backends produce bit-identical results.
        kernel: String,
    },
    /// An attempt at one voltage point began.
    PointStarted {
        /// The swept voltage, in millivolts.
        voltage_mv: u32,
        /// 1-based attempt number at this voltage.
        attempt: u32,
    },
    /// A voltage point completed (possibly as a genuine cliff crash).
    PointCompleted {
        /// The swept voltage, in millivolts.
        voltage_mv: u32,
        /// The attempt that completed it (1 = first try).
        attempt: u32,
        /// Whether the device crashed at this voltage (no data collected).
        crashed: bool,
        /// Total mean fault count across patterns (0 for crashed points).
        mean_faults: f64,
    },
    /// A voltage point was abandoned after exhausting its retry budget (or
    /// because every port in scope is quarantined).
    PointSkipped {
        /// The swept voltage, in millivolts.
        voltage_mv: u32,
        /// Attempts spent before giving up.
        attempts: u32,
        /// The last failure before giving up.
        reason: String,
    },
    /// A transient failure scheduled a backoff wait and re-attempt.
    RetryScheduled {
        /// The swept voltage, in millivolts.
        voltage_mv: u32,
        /// The attempt that failed (1-based).
        attempt: u32,
        /// The backoff wait before the next attempt, in milliseconds.
        delay_ms: u64,
        /// Why the attempt failed.
        reason: String,
    },
    /// The device crashed.
    DeviceCrashed {
        /// The swept voltage, in millivolts.
        voltage_mv: u32,
        /// The attempt during which the crash happened (1-based).
        attempt: u32,
        /// `true` for a transient crash at or above the crash floor (the
        /// supervisor retries it), `false` for the physical cliff below
        /// the floor (an expected measurement).
        transient: bool,
    },
    /// The platform was power-cycled to recover from a crash.
    PowerCycled {
        /// The supply the device restarted at, in millivolts.
        restart_mv: u32,
        /// The platform's cumulative power-cycle count after this cycle.
        cycle: u32,
    },
    /// A checkpoint file was durably replaced.
    CheckpointWritten {
        /// The checkpoint path.
        path: String,
        /// Bytes written.
        bytes: u64,
        /// Completed points recorded in the file.
        points: u64,
    },
    /// A port was removed from the active sweep set.
    PortQuarantined {
        /// The quarantined AXI port (= pseudo-channel index).
        port: u8,
        /// The sweep voltage at which the failure surfaced, in millivolts.
        voltage_mv: u32,
        /// The device error that triggered the quarantine.
        reason: String,
    },
    /// One port's shard of an engine batch finished. Emitted per logical
    /// pseudo-channel shard in port order after the batch joins, so the
    /// stream is identical at every worker count.
    WorkerShardDone {
        /// The AXI port the shard covered.
        port: u8,
        /// Logical words the shard processed (writes plus read-checks for
        /// traffic batches, words checked for mask builds).
        words: u64,
    },
    /// One point of a power sweep was measured.
    PowerMeasured {
        /// The supply voltage, in millivolts.
        voltage_mv: u32,
        /// Enabled AXI ports during the measurement.
        ports: u64,
        /// The measured power, in watts.
        watts: f64,
    },
    /// A sweep campaign finished.
    SweepCompleted {
        /// Points that completed with data.
        completed: u64,
        /// Points recorded as skipped.
        skipped: u64,
        /// Ports quarantined over the campaign.
        quarantined: u64,
    },
}

/// A telemetry sink: receives every emitted [`TraceRecord`] and, once per
/// run via [`Telemetry::finish`], the final [`MetricsSnapshot`].
pub trait Observer: Send {
    /// Called for every emitted event, in emission order.
    fn on_event(&mut self, record: &TraceRecord);

    /// Called with the counter registry's final snapshot.
    fn on_metrics(&mut self, _snapshot: &MetricsSnapshot) {}
}

/// The telemetry hub: fans emitted events out to its observers and owns
/// the [`Metrics`] counter registry.
///
/// A `Telemetry` with no observers is free to thread everywhere: events
/// are dropped without being constructed into records, and
/// [`Telemetry::disabled`] provides a shared inert instance for the
/// unobserved entry points.
pub struct Telemetry {
    observers: Mutex<Vec<Box<dyn Observer>>>,
    metrics: Metrics,
    seq: AtomicU64,
}

impl Telemetry {
    /// A hub with no observers and zeroed counters.
    #[must_use]
    pub const fn new() -> Self {
        Telemetry {
            observers: Mutex::new(Vec::new()),
            metrics: Metrics::new(),
            seq: AtomicU64::new(0),
        }
    }

    /// A shared inert hub for the unobserved code paths: no observers can
    /// ever be attached, so every emit is a cheap no-op.
    #[must_use]
    pub fn disabled() -> &'static Telemetry {
        static DISABLED: Telemetry = Telemetry::new();
        &DISABLED
    }

    /// Builder-style observer attachment.
    #[must_use]
    pub fn with_observer(mut self, observer: Box<dyn Observer>) -> Self {
        self.add_observer(observer);
        self
    }

    /// Attaches an observer.
    pub fn add_observer(&mut self, observer: Box<dyn Observer>) {
        self.observers
            .get_mut()
            .expect("observer list poisoned")
            .push(observer);
    }

    /// `true` if at least one observer is attached.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        !self
            .observers
            .lock()
            .expect("observer list poisoned")
            .is_empty()
    }

    /// The counter registry.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Emits an event with a zero clock stamp (for contexts without a
    /// [`Clock`](crate::Clock)).
    pub fn emit(&self, event: TelemetryEvent) {
        self.emit_at(0, event);
    }

    /// Emits an event stamped with a clock reading. The sequence number is
    /// assigned under the observer lock, so concurrent emitters still
    /// produce a gap-free, order-consistent stream.
    pub fn emit_at(&self, t_ms: u64, event: TelemetryEvent) {
        let mut observers = self.observers.lock().expect("observer list poisoned");
        if observers.is_empty() {
            return;
        }
        let record = TraceRecord {
            seq: self.seq.fetch_add(1, Ordering::SeqCst),
            t_ms,
            event,
        };
        for observer in observers.iter_mut() {
            observer.on_event(&record);
        }
    }

    /// Delivers the final [`MetricsSnapshot`] to every observer (and lets
    /// buffered sinks flush). Call once, after the observed run finishes.
    pub fn finish(&self) {
        let snapshot = self.metrics.snapshot();
        for observer in self
            .observers
            .lock()
            .expect("observer list poisoned")
            .iter_mut()
        {
            observer.on_metrics(&snapshot);
        }
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Telemetry")
            .field(
                "observers",
                &self.observers.lock().map(|o| o.len()).unwrap_or(0),
            )
            .field("metrics", &self.metrics)
            .field("seq", &self.seq.load(Ordering::SeqCst))
            .finish()
    }
}

/// The counter/histogram registry: cheap atomic counters the runtimes
/// update in place, snapshotted once at the end of a run.
///
/// Unlike the event stream, these aggregates may be scheduling-dependent
/// (the tile-cache hit ratio depends on which worker reached a pseudo
/// channel first), which is exactly why they live here and not in the
/// trace.
#[derive(Debug)]
pub struct Metrics {
    tile_cache_hits: AtomicU64,
    tile_cache_misses: AtomicU64,
    dense_tiles_bitsliced: AtomicU64,
    sparse_tiles_scalar: AtomicU64,
    words_scanned: AtomicU64,
    masks_scanned: AtomicU64,
    delta_words_scanned: AtomicU64,
    masks_carried: AtomicU64,
    checkpoints_written: AtomicU64,
    checkpoint_bytes: AtomicU64,
    retries: AtomicU64,
    retry_backoff_ms: AtomicU64,
    power_cycles: AtomicU64,
    devices_swept: AtomicU64,
    devices_stolen: AtomicU64,
    canary_passes: AtomicU64,
    governor_flip_trips: AtomicU64,
    governor_timing_trips: AtomicU64,
    artifact_bytes_written: AtomicU64,
    queries_served: AtomicU64,
    compressed_hits: AtomicU64,
    exact_rescans: AtomicU64,
    model_bytes: AtomicU64,
    serve_workers: AtomicU64,
    serve_queue_depth_max: AtomicU64,
    rescan_cache_hits: AtomicU64,
    kernel_rescans: AtomicU64,
    rescan_cache_evictions: AtomicU64,
    singleflight_waits: AtomicU64,
    point_wall_ms: Mutex<Histogram>,
    request_wall_us: Mutex<Histogram>,
}

impl Metrics {
    /// A zeroed registry.
    #[must_use]
    pub const fn new() -> Self {
        Metrics {
            tile_cache_hits: AtomicU64::new(0),
            tile_cache_misses: AtomicU64::new(0),
            dense_tiles_bitsliced: AtomicU64::new(0),
            sparse_tiles_scalar: AtomicU64::new(0),
            words_scanned: AtomicU64::new(0),
            masks_scanned: AtomicU64::new(0),
            delta_words_scanned: AtomicU64::new(0),
            masks_carried: AtomicU64::new(0),
            checkpoints_written: AtomicU64::new(0),
            checkpoint_bytes: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            retry_backoff_ms: AtomicU64::new(0),
            power_cycles: AtomicU64::new(0),
            devices_swept: AtomicU64::new(0),
            devices_stolen: AtomicU64::new(0),
            canary_passes: AtomicU64::new(0),
            governor_flip_trips: AtomicU64::new(0),
            governor_timing_trips: AtomicU64::new(0),
            artifact_bytes_written: AtomicU64::new(0),
            queries_served: AtomicU64::new(0),
            compressed_hits: AtomicU64::new(0),
            exact_rescans: AtomicU64::new(0),
            model_bytes: AtomicU64::new(0),
            serve_workers: AtomicU64::new(0),
            serve_queue_depth_max: AtomicU64::new(0),
            rescan_cache_hits: AtomicU64::new(0),
            kernel_rescans: AtomicU64::new(0),
            rescan_cache_evictions: AtomicU64::new(0),
            singleflight_waits: AtomicU64::new(0),
            point_wall_ms: Mutex::new(Histogram::new()),
            request_wall_us: Mutex::new(Histogram::new()),
        }
    }

    /// Records `n` word transactions (writes plus read-checks) scanned.
    pub fn add_words_scanned(&self, n: u64) {
        self.words_scanned.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` stuck-at mask evaluations performed.
    pub fn add_masks_scanned(&self, n: u64) {
        self.masks_scanned.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` words actually re-enumerated by an incremental
    /// carry-forward point (its mask delta against the previous point).
    pub fn add_delta_words_scanned(&self, n: u64) {
        self.delta_words_scanned.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` faulty-word masks served unchanged from a sweep carry
    /// instead of being recomputed.
    pub fn add_masks_carried(&self, n: u64) {
        self.masks_carried.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one durably written checkpoint of `bytes` bytes.
    pub fn add_checkpoint(&self, bytes: u64) {
        self.checkpoints_written.fetch_add(1, Ordering::Relaxed);
        self.checkpoint_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one scheduled retry and its backoff wait.
    pub fn add_retry(&self, backoff_ms: u64) {
        self.retries.fetch_add(1, Ordering::Relaxed);
        self.retry_backoff_ms
            .fetch_add(backoff_ms, Ordering::Relaxed);
    }

    /// Records `n` power cycles.
    pub fn add_power_cycles(&self, n: u64) {
        self.power_cycles.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` fleet devices characterized.
    pub fn add_devices_swept(&self, n: u64) {
        self.devices_swept.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` fleet devices that migrated to another worker through
    /// a work steal. Scheduling-dependent by nature, hence a metric and
    /// never a trace event.
    pub fn add_devices_stolen(&self, n: u64) {
        self.devices_stolen.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` governor canary passes (one write/read-back sweep of
    /// every enabled port's canary region).
    pub fn add_canary_passes(&self, n: u64) {
        self.canary_passes.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` governor descents stopped by canary bit flips.
    pub fn add_governor_flip_trips(&self, n: u64) {
        self.governor_flip_trips.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` governor descents stopped by a timing constraint (a
    /// latency budget or a delivered-bandwidth target).
    pub fn add_governor_timing_trips(&self, n: u64) {
        self.governor_timing_trips.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` fleet-artifact bytes durably written.
    pub fn add_artifact_bytes_written(&self, n: u64) {
        self.artifact_bytes_written.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` fleet requests answered through the typed API.
    pub fn add_queries_served(&self, n: u64) {
        self.queries_served.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` recommendations answered purely from the compressed
    /// parametric models, with zero exact-column reads.
    pub fn add_compressed_hits(&self, n: u64) {
        self.compressed_hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` recommendations that needed exact evidence — a stored
    /// FAULTS column read or an on-demand kernel rescan.
    pub fn add_exact_rescans(&self, n: u64) {
        self.exact_rescans.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the loaded-MODEL-column size gauge: bytes of compressed
    /// model resident in the serving store.
    pub fn set_model_bytes(&self, n: u64) {
        self.model_bytes.store(n, Ordering::Relaxed);
    }

    /// Overwrites the serve-worker-count gauge: pipeline workers the
    /// serving session ran with.
    pub fn set_serve_workers(&self, n: u64) {
        self.serve_workers.store(n, Ordering::Relaxed);
    }

    /// Raises the serve queue-depth high-water mark (monotonic max).
    pub fn set_serve_queue_depth_max(&self, n: u64) {
        self.serve_queue_depth_max.fetch_max(n, Ordering::Relaxed);
    }

    /// Records `n` rescan-cache hits: recommend misses answered from a
    /// previously cached whole-row kernel rescan.
    pub fn add_rescan_cache_hits(&self, n: u64) {
        self.rescan_cache_hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` on-demand kernel rescans actually executed by the
    /// serving runtime (cache misses that led the single-flight group).
    pub fn add_kernel_rescans(&self, n: u64) {
        self.kernel_rescans.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` rescan-cache entries evicted to stay within the byte
    /// budget.
    pub fn add_rescan_cache_evictions(&self, n: u64) {
        self.rescan_cache_evictions.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` single-flight waits: requests that blocked on another
    /// worker's in-flight rescan instead of duplicating it.
    pub fn add_singleflight_waits(&self, n: u64) {
        self.singleflight_waits.fetch_add(n, Ordering::Relaxed);
    }

    /// Folds an externally accumulated per-request latency histogram
    /// (microsecond log₂ buckets, same shape as [`WallTimeStats`]) into
    /// the registry — the serving pipeline measures latencies itself and
    /// merges its totals here once per session.
    pub fn merge_request_wall_us(&self, count: u64, sum: u64, min: u64, max: u64, buckets: &[u64]) {
        self.request_wall_us
            .lock()
            .expect("histogram poisoned")
            .merge(count, sum, min, max, buckets);
    }

    /// Overwrites the injector tile-cache counters with the injector's
    /// lifetime totals (folded in once at the end of an observed run).
    pub fn set_tile_cache(&self, hits: u64, misses: u64) {
        self.tile_cache_hits.store(hits, Ordering::Relaxed);
        self.tile_cache_misses.store(misses, Ordering::Relaxed);
    }

    /// Overwrites the kernel-dispatch counters with the injector's lifetime
    /// totals: tiles whose range scans took the bit-sliced dense path vs
    /// the scalar sparse walk. Like the tile-cache ratio, the split can be
    /// scheduling-dependent (tile probabilities are cached per worker
    /// arrival order), so it belongs here and never in the trace.
    pub fn set_kernel_dispatch(&self, dense_bitsliced: u64, sparse_scalar: u64) {
        self.dense_tiles_bitsliced
            .store(dense_bitsliced, Ordering::Relaxed);
        self.sparse_tiles_scalar
            .store(sparse_scalar, Ordering::Relaxed);
    }

    /// Records one completed point attempt's wall time.
    pub fn record_point_wall_ms(&self, ms: u64) {
        self.point_wall_ms
            .lock()
            .expect("histogram poisoned")
            .record(ms);
    }

    /// A consistent copy of every counter and the wall-time histogram.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let wall = self.point_wall_ms.lock().expect("histogram poisoned");
        let request = self.request_wall_us.lock().expect("histogram poisoned");
        MetricsSnapshot {
            tile_cache_hits: self.tile_cache_hits.load(Ordering::Relaxed),
            tile_cache_misses: self.tile_cache_misses.load(Ordering::Relaxed),
            dense_tiles_bitsliced: self.dense_tiles_bitsliced.load(Ordering::Relaxed),
            sparse_tiles_scalar: self.sparse_tiles_scalar.load(Ordering::Relaxed),
            words_scanned: self.words_scanned.load(Ordering::Relaxed),
            masks_scanned: self.masks_scanned.load(Ordering::Relaxed),
            delta_words_scanned: self.delta_words_scanned.load(Ordering::Relaxed),
            masks_carried: self.masks_carried.load(Ordering::Relaxed),
            checkpoints_written: self.checkpoints_written.load(Ordering::Relaxed),
            checkpoint_bytes: self.checkpoint_bytes.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            retry_backoff_ms: self.retry_backoff_ms.load(Ordering::Relaxed),
            power_cycles: self.power_cycles.load(Ordering::Relaxed),
            devices_swept: self.devices_swept.load(Ordering::Relaxed),
            devices_stolen: self.devices_stolen.load(Ordering::Relaxed),
            canary_passes: self.canary_passes.load(Ordering::Relaxed),
            governor_flip_trips: self.governor_flip_trips.load(Ordering::Relaxed),
            governor_timing_trips: self.governor_timing_trips.load(Ordering::Relaxed),
            artifact_bytes_written: self.artifact_bytes_written.load(Ordering::Relaxed),
            queries_served: self.queries_served.load(Ordering::Relaxed),
            compressed_hits: self.compressed_hits.load(Ordering::Relaxed),
            exact_rescans: self.exact_rescans.load(Ordering::Relaxed),
            model_bytes: self.model_bytes.load(Ordering::Relaxed),
            serve_workers: self.serve_workers.load(Ordering::Relaxed),
            serve_queue_depth_max: self.serve_queue_depth_max.load(Ordering::Relaxed),
            rescan_cache_hits: self.rescan_cache_hits.load(Ordering::Relaxed),
            kernel_rescans: self.kernel_rescans.load(Ordering::Relaxed),
            rescan_cache_evictions: self.rescan_cache_evictions.load(Ordering::Relaxed),
            singleflight_waits: self.singleflight_waits.load(Ordering::Relaxed),
            point_wall_ms: wall.stats(),
            request_wall_us: request.stats(),
        }
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

/// A point-in-time copy of the [`Metrics`] registry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Injector tile-table lookups served from the cache.
    pub tile_cache_hits: u64,
    /// Injector tile-table lookups that rebuilt the table.
    pub tile_cache_misses: u64,
    /// Tiles whose range scans ran the bit-sliced dense kernel.
    pub dense_tiles_bitsliced: u64,
    /// Tiles whose range scans ran the scalar sparse walk.
    pub sparse_tiles_scalar: u64,
    /// Word transactions (writes plus read-checks) scanned.
    pub words_scanned: u64,
    /// Stuck-at mask evaluations performed by the fault kernel.
    pub masks_scanned: u64,
    /// Words re-enumerated by incremental carry-forward points (the mask
    /// deltas between successive sweep points).
    pub delta_words_scanned: u64,
    /// Faulty-word masks served unchanged from a sweep carry.
    pub masks_carried: u64,
    /// Checkpoints durably written.
    pub checkpoints_written: u64,
    /// Total checkpoint bytes written.
    pub checkpoint_bytes: u64,
    /// Retries scheduled after transient failures.
    pub retries: u64,
    /// Total backoff wait scheduled, in milliseconds.
    pub retry_backoff_ms: u64,
    /// Power cycles spent recovering the platform.
    pub power_cycles: u64,
    /// Fleet devices characterized.
    pub devices_swept: u64,
    /// Fleet devices that migrated to another worker through a work steal.
    pub devices_stolen: u64,
    /// Governor canary passes executed (all ports, both patterns).
    pub canary_passes: u64,
    /// Governor descents stopped by canary bit flips.
    pub governor_flip_trips: u64,
    /// Governor descents stopped by a latency budget or bandwidth target.
    pub governor_timing_trips: u64,
    /// Fleet-artifact bytes durably written.
    pub artifact_bytes_written: u64,
    /// Fleet requests answered through the typed API.
    pub queries_served: u64,
    /// Recommendations answered purely from compressed models.
    pub compressed_hits: u64,
    /// Recommendations that needed exact evidence (stored column or
    /// kernel rescan).
    pub exact_rescans: u64,
    /// Bytes of compressed MODEL column resident in the serving store.
    pub model_bytes: u64,
    /// Pipeline workers the serving session ran with (0 when no serve ran).
    pub serve_workers: u64,
    /// Highest number of requests simultaneously queued for the worker
    /// pool (serve pipeline back-pressure high-water mark).
    pub serve_queue_depth_max: u64,
    /// Recommend misses answered from a cached whole-row kernel rescan.
    pub rescan_cache_hits: u64,
    /// On-demand kernel rescans actually executed while serving.
    pub kernel_rescans: u64,
    /// Rescan-cache entries evicted to stay within the byte budget.
    pub rescan_cache_evictions: u64,
    /// Requests that blocked on another worker's in-flight rescan instead
    /// of duplicating it.
    pub singleflight_waits: u64,
    /// Per-point wall-time distribution.
    pub point_wall_ms: WallTimeStats,
    /// Per-request serve latency distribution. Unlike the other
    /// `WallTimeStats`, the unit is **microseconds** (sum/min/max and
    /// bucket boundaries alike) — serve requests are far shorter than
    /// sweep points.
    pub request_wall_us: WallTimeStats,
}

/// Summary statistics plus a log₂ histogram of per-point wall times.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WallTimeStats {
    /// Recorded attempts.
    pub count: u64,
    /// Sum of all recorded durations, in milliseconds.
    pub sum_ms: u64,
    /// Shortest recorded duration (0 when nothing was recorded).
    pub min_ms: u64,
    /// Longest recorded duration.
    pub max_ms: u64,
    /// [`WALL_HISTOGRAM_BUCKETS`] log₂ buckets: bucket `i > 0` counts
    /// durations in `[2^(i−1), 2^i)` ms, bucket 0 counts 0 ms attempts,
    /// the last bucket absorbs longer durations.
    pub log2_buckets: Vec<u64>,
}

/// The internal, lock-guarded histogram behind [`WallTimeStats`].
#[derive(Debug)]
struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; WALL_HISTOGRAM_BUCKETS],
}

impl Histogram {
    const fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; WALL_HISTOGRAM_BUCKETS],
        }
    }

    fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let bucket = (u64::BITS - value.leading_zeros()) as usize;
        self.buckets[bucket.min(WALL_HISTOGRAM_BUCKETS - 1)] += 1;
    }

    fn merge(&mut self, count: u64, sum: u64, min: u64, max: u64, buckets: &[u64]) {
        if count == 0 {
            return;
        }
        self.count += count;
        self.sum = self.sum.saturating_add(sum);
        self.min = self.min.min(min);
        self.max = self.max.max(max);
        for (slot, n) in self.buckets.iter_mut().zip(buckets) {
            *slot += n;
        }
    }

    fn stats(&self) -> WallTimeStats {
        WallTimeStats {
            count: self.count,
            sum_ms: self.sum,
            min_ms: if self.count == 0 { 0 } else { self.min },
            max_ms: self.max,
            log2_buckets: self.buckets.to_vec(),
        }
    }
}

/// A machine-readable trace sink: one compact JSON object per line, in
/// emission order.
///
/// Write failures are reported once to stderr and the sink goes inert —
/// telemetry must never abort a campaign that is otherwise healthy.
#[derive(Debug)]
pub struct JsonlSink<W> {
    writer: W,
    zero_timestamps: bool,
    failed: bool,
}

impl<W: Write + Send> JsonlSink<W> {
    /// A sink that writes records verbatim, clock stamps included.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer,
            zero_timestamps: false,
            failed: false,
        }
    }

    /// A sink that zeroes the `t_ms` stamp of every record, so two runs of
    /// the same campaign on the real wall clock produce byte-identical
    /// traces (`hbmctl sweep --trace-file` uses this mode).
    pub fn diffable(writer: W) -> Self {
        JsonlSink {
            writer,
            zero_timestamps: true,
            failed: false,
        }
    }

    fn fail(&mut self, what: &str) {
        if !self.failed {
            eprintln!("telemetry: trace sink disabled: {what}");
        }
        self.failed = true;
    }
}

impl<W: Write + Send> Observer for JsonlSink<W> {
    fn on_event(&mut self, record: &TraceRecord) {
        if self.failed {
            return;
        }
        let record = if self.zero_timestamps {
            TraceRecord {
                t_ms: 0,
                ..record.clone()
            }
        } else {
            record.clone()
        };
        match serde_json::to_string(&record) {
            Ok(line) => {
                if let Err(e) = writeln!(self.writer, "{line}") {
                    self.fail(&e.to_string());
                }
            }
            Err(e) => self.fail(&e.to_string()),
        }
    }

    fn on_metrics(&mut self, _snapshot: &MetricsSnapshot) {
        // Counters are scheduling-dependent, so they stay out of the trace;
        // the snapshot is just the flush point for buffered writers.
        if self.writer.flush().is_err() && !self.failed {
            self.fail("flush failed");
        }
    }
}

/// A human-readable progress sink: one short line per lifecycle event,
/// plus a counter glossary from the final metrics snapshot.
#[derive(Debug)]
pub struct ProgressSink<W> {
    writer: W,
    points: u64,
    done: u64,
}

impl<W: Write + Send> ProgressSink<W> {
    /// A progress sink writing to `writer` (typically stderr).
    pub fn new(writer: W) -> Self {
        ProgressSink {
            writer,
            points: 0,
            done: 0,
        }
    }
}

impl<W: Write + Send> Observer for ProgressSink<W> {
    fn on_event(&mut self, record: &TraceRecord) {
        let out = &mut self.writer;
        let _ = match &record.event {
            TelemetryEvent::SweepStarted {
                experiment,
                seed,
                points,
                from_mv,
                to_mv,
                kernel,
            } => {
                self.points = *points;
                writeln!(
                    out,
                    "{experiment} (seed {seed}, {kernel} kernel): {points} point(s), {} -> {}",
                    Millivolts(*from_mv),
                    Millivolts(*to_mv)
                )
            }
            TelemetryEvent::PointCompleted {
                voltage_mv,
                attempt,
                crashed,
                mean_faults,
            } => {
                self.done += 1;
                if *crashed {
                    writeln!(
                        out,
                        "[{}/{}] {}: crashed",
                        self.done,
                        self.points,
                        Millivolts(*voltage_mv)
                    )
                } else {
                    writeln!(
                        out,
                        "[{}/{}] {}: {mean_faults:.1} mean fault(s){}",
                        self.done,
                        self.points,
                        Millivolts(*voltage_mv),
                        if *attempt > 1 {
                            format!(" after {attempt} attempts")
                        } else {
                            String::new()
                        }
                    )
                }
            }
            TelemetryEvent::PointSkipped {
                voltage_mv,
                attempts,
                reason,
            } => {
                self.done += 1;
                writeln!(
                    out,
                    "[{}/{}] {}: skipped after {attempts} attempt(s): {reason}",
                    self.done,
                    self.points,
                    Millivolts(*voltage_mv)
                )
            }
            TelemetryEvent::RetryScheduled {
                voltage_mv,
                attempt,
                delay_ms,
                reason,
            } => writeln!(
                out,
                "{}: attempt {attempt} failed ({reason}); retrying in {delay_ms} ms",
                Millivolts(*voltage_mv)
            ),
            TelemetryEvent::PortQuarantined {
                port,
                voltage_mv,
                reason,
            } => writeln!(
                out,
                "quarantined port {port} at {}: {reason}",
                Millivolts(*voltage_mv)
            ),
            TelemetryEvent::CheckpointWritten {
                path,
                bytes,
                points,
            } => {
                writeln!(out, "checkpoint {path}: {points} point(s), {bytes} B")
            }
            TelemetryEvent::SweepCompleted {
                completed,
                skipped,
                quarantined,
            } => writeln!(
                out,
                "done: {completed} completed, {skipped} skipped, {quarantined} port(s) quarantined"
            ),
            // Per-attempt, per-shard and per-measurement events are too
            // chatty for a progress log; the JSONL trace has them all.
            TelemetryEvent::PointStarted { .. }
            | TelemetryEvent::DeviceCrashed { .. }
            | TelemetryEvent::PowerCycled { .. }
            | TelemetryEvent::WorkerShardDone { .. }
            | TelemetryEvent::PowerMeasured { .. } => Ok(()),
        };
    }

    fn on_metrics(&mut self, snapshot: &MetricsSnapshot) {
        let out = &mut self.writer;
        let _ = writeln!(
            out,
            "counters: {} words scanned, {} masks scanned, {} carried/{} delta words, \
             tile cache {}/{} hit/miss, kernel dispatch {}/{} bitsliced/scalar tiles, \
             {} retry(s) ({} ms backoff), {} power cycle(s), {} checkpoint(s) ({} B)",
            snapshot.words_scanned,
            snapshot.masks_scanned,
            snapshot.masks_carried,
            snapshot.delta_words_scanned,
            snapshot.tile_cache_hits,
            snapshot.tile_cache_misses,
            snapshot.dense_tiles_bitsliced,
            snapshot.sparse_tiles_scalar,
            snapshot.retries,
            snapshot.retry_backoff_ms,
            snapshot.power_cycles,
            snapshot.checkpoints_written,
            snapshot.checkpoint_bytes,
        );
        if snapshot.canary_passes > 0 {
            let _ = writeln!(
                out,
                "governor: {} canary pass(es), {} flip trip(s), {} timing trip(s)",
                snapshot.canary_passes,
                snapshot.governor_flip_trips,
                snapshot.governor_timing_trips,
            );
        }
        if snapshot.point_wall_ms.count > 0 {
            let wall = &snapshot.point_wall_ms;
            let _ = writeln!(
                out,
                "point wall time: {} attempt(s), min {} ms, max {} ms, total {} ms",
                wall.count, wall.min_ms, wall.max_ms, wall.sum_ms
            );
        }
        if snapshot.queries_served > 0 {
            let _ = writeln!(
                out,
                "serving: {} query(s) at {} worker(s), queue depth max {}, \
                 rescan cache {}/{} hit/rescan, {} eviction(s), {} single-flight wait(s)",
                snapshot.queries_served,
                snapshot.serve_workers,
                snapshot.serve_queue_depth_max,
                snapshot.rescan_cache_hits,
                snapshot.kernel_rescans,
                snapshot.rescan_cache_evictions,
                snapshot.singleflight_waits,
            );
            if snapshot.request_wall_us.count > 0 {
                let wall = &snapshot.request_wall_us;
                let _ = writeln!(
                    out,
                    "request wall time: {} request(s), min {} us, max {} us, total {} us",
                    wall.count, wall.min_ms, wall.max_ms, wall.sum_ms
                );
            }
        }
        let _ = out.flush();
    }
}

/// A cloneable in-memory `Write` target for tests and examples: every
/// clone appends to the same shared buffer.
#[derive(Debug, Clone, Default)]
pub struct SharedBuffer(Arc<Mutex<Vec<u8>>>);

impl SharedBuffer {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        SharedBuffer::default()
    }

    /// Everything written so far, as UTF-8.
    ///
    /// # Panics
    ///
    /// Panics if non-UTF-8 bytes were written (the telemetry sinks only
    /// write UTF-8).
    #[must_use]
    pub fn contents(&self) -> String {
        String::from_utf8(self.0.lock().expect("buffer poisoned").clone())
            .expect("telemetry sinks write UTF-8")
    }
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .expect("buffer poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_through_json() {
        let record = TraceRecord {
            seq: 3,
            t_ms: 120,
            event: TelemetryEvent::RetryScheduled {
                voltage_mv: 840,
                attempt: 2,
                delay_ms: 100,
                reason: "device crashed".to_owned(),
            },
        };
        let json = serde_json::to_string(&record).unwrap();
        assert!(json.contains("RetryScheduled"), "{json}");
        let back: TraceRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, record);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event_in_seq_order() {
        let buffer = SharedBuffer::new();
        let telemetry = Telemetry::new().with_observer(Box::new(JsonlSink::new(buffer.clone())));
        telemetry.emit_at(
            5,
            TelemetryEvent::PowerCycled {
                restart_mv: 1200,
                cycle: 1,
            },
        );
        telemetry.emit(TelemetryEvent::SweepCompleted {
            completed: 2,
            skipped: 0,
            quarantined: 0,
        });
        telemetry.finish();
        let contents = buffer.contents();
        let lines: Vec<&str> = contents.lines().collect();
        assert_eq!(lines.len(), 2, "{contents}");
        assert!(lines[0].contains("\"seq\": 0") || lines[0].contains("\"seq\":0"));
        assert!(lines[0].contains("PowerCycled"));
        assert!(lines[1].contains("SweepCompleted"));
    }

    #[test]
    fn diffable_sink_zeroes_timestamps() {
        let buffer = SharedBuffer::new();
        let telemetry =
            Telemetry::new().with_observer(Box::new(JsonlSink::diffable(buffer.clone())));
        telemetry.emit_at(
            987,
            TelemetryEvent::PointStarted {
                voltage_mv: 900,
                attempt: 1,
            },
        );
        assert!(!buffer.contents().contains("987"), "{}", buffer.contents());
    }

    #[test]
    fn disabled_hub_drops_events_and_stays_shared() {
        let telemetry = Telemetry::disabled();
        assert!(!telemetry.is_enabled());
        telemetry.emit(TelemetryEvent::SweepCompleted {
            completed: 0,
            skipped: 0,
            quarantined: 0,
        });
        // Counters still work (they are just never read for disabled runs).
        telemetry.metrics().add_words_scanned(1);
    }

    #[test]
    fn metrics_snapshot_aggregates_counters_and_histogram() {
        let metrics = Metrics::new();
        metrics.add_words_scanned(100);
        metrics.add_masks_scanned(40);
        metrics.add_delta_words_scanned(12);
        metrics.add_masks_carried(28);
        metrics.add_checkpoint(512);
        metrics.add_checkpoint(256);
        metrics.add_retry(50);
        metrics.add_retry(100);
        metrics.add_power_cycles(3);
        metrics.set_tile_cache(7, 2);
        metrics.set_kernel_dispatch(9, 4);
        metrics.record_point_wall_ms(0);
        metrics.record_point_wall_ms(3);
        metrics.record_point_wall_ms(1_000_000);
        let snap = metrics.snapshot();
        assert_eq!(snap.words_scanned, 100);
        assert_eq!(snap.masks_scanned, 40);
        assert_eq!(snap.delta_words_scanned, 12);
        assert_eq!(snap.masks_carried, 28);
        assert_eq!(snap.checkpoints_written, 2);
        assert_eq!(snap.checkpoint_bytes, 768);
        assert_eq!(snap.retries, 2);
        assert_eq!(snap.retry_backoff_ms, 150);
        assert_eq!(snap.power_cycles, 3);
        assert_eq!((snap.tile_cache_hits, snap.tile_cache_misses), (7, 2));
        assert_eq!(
            (snap.dense_tiles_bitsliced, snap.sparse_tiles_scalar),
            (9, 4)
        );
        let wall = &snap.point_wall_ms;
        assert_eq!(wall.count, 3);
        assert_eq!(wall.min_ms, 0);
        assert_eq!(wall.max_ms, 1_000_000);
        assert_eq!(wall.log2_buckets.len(), WALL_HISTOGRAM_BUCKETS);
        assert_eq!(wall.log2_buckets[0], 1, "0 ms lands in bucket 0");
        assert_eq!(wall.log2_buckets[2], 1, "3 ms lands in bucket 2");
        assert_eq!(
            wall.log2_buckets[WALL_HISTOGRAM_BUCKETS - 1],
            1,
            "overlong durations land in the last bucket"
        );
        // An empty histogram normalizes min to 0.
        assert_eq!(Metrics::new().snapshot().point_wall_ms.min_ms, 0);
    }

    #[test]
    fn progress_sink_renders_lifecycle_lines() {
        let buffer = SharedBuffer::new();
        let telemetry = Telemetry::new().with_observer(Box::new(ProgressSink::new(buffer.clone())));
        telemetry.emit(TelemetryEvent::SweepStarted {
            experiment: "supervised-sweep".to_owned(),
            seed: 7,
            points: 2,
            from_mv: 900,
            to_mv: 890,
            kernel: "auto".to_owned(),
        });
        telemetry.emit(TelemetryEvent::PointCompleted {
            voltage_mv: 900,
            attempt: 1,
            crashed: false,
            mean_faults: 12.0,
        });
        telemetry.emit(TelemetryEvent::PointSkipped {
            voltage_mv: 890,
            attempts: 4,
            reason: "gave up".to_owned(),
        });
        telemetry.finish();
        let contents = buffer.contents();
        assert!(
            contents.contains("supervised-sweep (seed 7, auto kernel)"),
            "{contents}"
        );
        assert!(contents.contains("[1/2] 0.900 V: 12.0"), "{contents}");
        assert!(contents.contains("[2/2] 0.890 V: skipped"), "{contents}");
        assert!(contents.contains("counters:"), "{contents}");
    }
}
