//! Locating the voltage landmarks: V_min (guardband floor) and V_critical
//! (crash floor).

use hbm_traffic::{DataPattern, MacroProgram};
use hbm_units::{Millivolts, Ratio};
use serde::{Deserialize, Serialize};

use crate::engine;
use crate::error::ExperimentError;
use crate::platform::Platform;
use crate::sweep::VoltageSweep;
use crate::telemetry::Telemetry;

/// The measured landmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GuardbandReport {
    /// Nominal voltage the search started from.
    pub v_nom: Millivolts,
    /// Minimum safe voltage: lowest voltage with zero (expected) faults.
    pub v_min: Millivolts,
    /// Minimum working voltage: lowest voltage at which the device still
    /// responds.
    pub v_critical: Millivolts,
}

impl GuardbandReport {
    /// Guardband width.
    #[must_use]
    pub fn guardband(&self) -> Millivolts {
        self.v_nom.saturating_sub(self.v_min)
    }

    /// Guardband as a fraction of nominal (the paper's "19 %").
    #[must_use]
    pub fn guardband_fraction(&self) -> Ratio {
        Ratio(f64::from(self.guardband().as_u32()) / f64::from(self.v_nom.as_u32()))
    }
}

/// Finds V_min and V_critical on a platform.
///
/// Two V_min strategies are provided:
///
/// - **predicted** (default for reports): uses the full-scale analytic
///   predictor, whose absolute fault counts match the paper's 8 GB device —
///   this reproduces V_min = 0.98 V;
/// - **measured**: actually runs write/read-back probes on the platform's
///   (possibly reduced) geometry. With fewer bits the observable onset sits
///   lower, exactly as a smaller real device would behave.
///
/// # Examples
///
/// ```
/// use hbm_undervolt::{GuardbandFinder, Platform};
/// use hbm_units::Millivolts;
///
/// # fn main() -> Result<(), hbm_undervolt::ExperimentError> {
/// let mut platform = Platform::builder().seed(7).build();
/// let report = GuardbandFinder::new().run(&mut platform)?;
/// assert_eq!(report.v_min, Millivolts(980));
/// assert_eq!(report.v_critical, Millivolts(810));
/// // 220 mV ≈ 18.3 % of nominal, reported by the paper as "19 %".
/// assert!((report.guardband_fraction().as_f64() - 0.183).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GuardbandFinder {
    /// Voltage resolution of the searches.
    pub step: Millivolts,
    /// Expected-fault threshold below which a voltage counts as fault-free
    /// (in expected faulty bits on the full-scale device).
    pub fault_free_threshold: f64,
    /// Words probed per pseudo channel in measured mode.
    pub probe_words: u64,
}

impl GuardbandFinder {
    /// The study's setup: 10 mV resolution.
    #[must_use]
    pub fn new() -> Self {
        GuardbandFinder {
            step: Millivolts(10),
            fault_free_threshold: 0.5,
            probe_words: 1024,
        }
    }

    /// Runs both searches: predicted V_min plus crash-probing V_critical.
    /// Leaves the platform power-cycled back at nominal voltage.
    ///
    /// # Errors
    ///
    /// PMBus errors from voltage control.
    pub fn run(&self, platform: &mut Platform) -> Result<GuardbandReport, ExperimentError> {
        let v_min = self.find_vmin_predicted(platform);
        let v_critical = self.find_vcritical(platform)?;
        Ok(GuardbandReport {
            v_nom: Millivolts(1200),
            v_min,
            v_critical,
        })
    }

    /// V_min from the full-scale analytic predictor: the lowest voltage at
    /// which the expected device-wide fault count stays below the
    /// threshold, scanning down from nominal.
    #[must_use]
    pub fn find_vmin_predicted(&self, platform: &Platform) -> Millivolts {
        let predictor = platform.full_scale_predictor();
        let bits = predictor.geometry().total_bits() as f64;
        let mut v = Millivolts(1200);
        loop {
            let next = v.saturating_sub(self.step);
            let expected = predictor.device_rate(next).as_f64() * bits;
            if expected >= self.fault_free_threshold || next == Millivolts::ZERO {
                return v;
            }
            v = next;
        }
    }

    /// Binary-search refinement of the predicted V_min to 1 mV resolution
    /// (an extension beyond the paper's linear 10 mV scan).
    #[must_use]
    pub fn binary_search_vmin(&self, platform: &Platform) -> Millivolts {
        let predictor = platform.full_scale_predictor();
        let bits = predictor.geometry().total_bits() as f64;
        let faulty =
            |v: Millivolts| predictor.device_rate(v).as_f64() * bits >= self.fault_free_threshold;
        let (mut lo, mut hi) = (Millivolts(810), Millivolts(1200));
        // Invariant: faulty(lo), !faulty(hi).
        if !faulty(lo) {
            return lo;
        }
        while hi - lo > Millivolts(1) {
            let mid = Millivolts((lo.as_u32() + hi.as_u32()) / 2);
            if faulty(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        hi
    }

    /// Measured V_min: the highest probed voltage below which the platform
    /// shows actual bit flips. Scans down in `step`s running a write/read
    /// probe over `probe_words` per PC.
    ///
    /// # Errors
    ///
    /// PMBus/device errors from the probes.
    pub fn find_vmin_measured(
        &self,
        platform: &mut Platform,
    ) -> Result<Millivolts, ExperimentError> {
        let sweep = VoltageSweep::new(Millivolts(1200), Millivolts(810), self.step)
            .map_err(|_| ExperimentError::config("step must divide 390 mV"))?;
        let mut last_clean = Millivolts(1200);
        for voltage in sweep.iter() {
            platform.set_voltage(voltage)?;
            if self.probe_flips(platform)? > 0 {
                platform.set_voltage(Millivolts(1200))?;
                return Ok(last_clean);
            }
            last_clean = voltage;
        }
        platform.set_voltage(Millivolts(1200))?;
        Ok(last_clean)
    }

    fn probe_flips(&self, platform: &mut Platform) -> Result<u64, ExperimentError> {
        let mut total = 0;
        let ids: Vec<_> = platform.device().ports().enabled_ids().collect();
        for pattern in [DataPattern::AllOnes, DataPattern::AllZeros] {
            let program = MacroProgram::write_then_check(0..self.probe_words, pattern);
            let jobs: Vec<_> = ids.iter().map(|&port| (port, program.clone())).collect();
            total += engine::run_jobs(platform, &jobs, Telemetry::disabled())?
                .iter()
                .map(|(_, stats)| stats.total_flips())
                .sum::<u64>();
        }
        Ok(total)
    }

    /// V_critical: steps the voltage down from 0.85 V until the device
    /// stops responding; the last responding voltage is V_critical. The
    /// platform is power-cycled back to nominal afterwards (as the study
    /// had to do).
    ///
    /// # Errors
    ///
    /// PMBus errors from voltage control.
    pub fn find_vcritical(&self, platform: &mut Platform) -> Result<Millivolts, ExperimentError> {
        let mut v = Millivolts(850);
        let mut last_alive = v;
        loop {
            platform.set_voltage(v)?;
            if platform.is_crashed() {
                platform.power_cycle(Millivolts(1200))?;
                return Ok(last_alive);
            }
            last_alive = v;
            if v == Millivolts::ZERO {
                return Ok(last_alive);
            }
            v = v.saturating_sub(self.step);
        }
    }
}

impl Default for GuardbandFinder {
    fn default() -> Self {
        GuardbandFinder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platform() -> Platform {
        Platform::builder().seed(7).build()
    }

    #[test]
    fn predicted_vmin_matches_paper() {
        let p = platform();
        let finder = GuardbandFinder::new();
        assert_eq!(finder.find_vmin_predicted(&p), Millivolts(980));
    }

    #[test]
    fn binary_search_refines_vmin() {
        let p = platform();
        let finder = GuardbandFinder::new();
        let refined = finder.binary_search_vmin(&p);
        // The guardband gate sits exactly at 980 mV; at 979 mV faults are
        // already expected on 8 GB.
        assert_eq!(refined, Millivolts(980));
    }

    #[test]
    fn vcritical_found_and_platform_recovered() {
        let mut p = platform();
        let finder = GuardbandFinder::new();
        let vc = finder.find_vcritical(&mut p).unwrap();
        assert_eq!(vc, Millivolts(810));
        assert!(!p.is_crashed());
        assert_eq!(p.voltage(), Millivolts(1200));
    }

    #[test]
    fn full_report() {
        let mut p = platform();
        let report = GuardbandFinder::new().run(&mut p).unwrap();
        assert_eq!(report.v_min, Millivolts(980));
        assert_eq!(report.v_critical, Millivolts(810));
        assert_eq!(report.guardband(), Millivolts(220));
        let pct = report.guardband_fraction().as_percent();
        assert!((18.0..19.5).contains(&pct), "guardband {pct}%");
    }

    #[test]
    fn measured_vmin_is_at_or_below_predicted() {
        // The reduced-geometry platform has 1024× fewer bits, so its
        // observable onset voltage sits below the full-scale 0.98 V.
        let mut p = platform();
        let mut finder = GuardbandFinder::new();
        finder.probe_words = 512;
        let measured = finder.find_vmin_measured(&mut p).unwrap();
        assert!(measured <= Millivolts(980), "measured {measured}");
        assert!(measured >= Millivolts(880), "measured {measured}");
    }
}
