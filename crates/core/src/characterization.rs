//! Fault characterization: the per-PC fault table (Fig. 5), the per-stack
//! fault fractions (Fig. 4) and the variation statistics of §III-B.

use hbm_device::{PcIndex, PortId, StackId};
use hbm_faults::RatePredictor;
use hbm_traffic::{DataPattern, MacroProgram};
use hbm_units::{Millivolts, Ratio};
use serde::{Deserialize, Serialize};

use crate::engine;
use crate::error::ExperimentError;
use crate::platform::Platform;
use crate::sweep::VoltageSweep;
use crate::telemetry::Telemetry;

/// One cell of the per-PC fault table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CellValue {
    /// No fault expected (fewer than half an expected faulty bit) — the
    /// paper's "NF".
    NoFault,
    /// Faulty cells as a percentage of the pseudo channel.
    Percent(f64),
}

impl CellValue {
    /// Formats like the paper's Fig. 5: "NF", or the percentage with values
    /// below 1 % rounded to "0".
    #[must_use]
    pub fn display(&self) -> String {
        match *self {
            CellValue::NoFault => "NF".to_owned(),
            CellValue::Percent(p) if p < 1.0 => "0".to_owned(),
            CellValue::Percent(p) => format!("{}", p.round() as u64),
        }
    }

    /// The raw fraction (0 for NF).
    #[must_use]
    pub fn fraction(&self) -> f64 {
        match *self {
            CellValue::NoFault => 0.0,
            CellValue::Percent(p) => p / 100.0,
        }
    }
}

/// One row of the per-PC table: a port/PC across the swept voltages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PcRow {
    /// Port / pseudo-channel index.
    pub port: u8,
    /// One cell per swept voltage, in sweep order.
    pub cells: Vec<CellValue>,
}

/// The paper's Fig. 5: percentage of faulty cells per AXI port (PC) per
/// voltage, for one data pattern.
///
/// # Examples
///
/// ```
/// use hbm_undervolt::characterization::PcFaultTable;
/// use hbm_undervolt::{Platform, VoltageSweep};
/// use hbm_traffic::DataPattern;
/// use hbm_units::Millivolts;
///
/// # fn main() -> Result<(), hbm_undervolt::ExperimentError> {
/// let platform = Platform::builder().seed(7).build();
/// let sweep = VoltageSweep::new(Millivolts(970), Millivolts(840), Millivolts(10))?;
/// let table = PcFaultTable::from_predictor(
///     platform.full_scale_predictor(),
///     sweep,
///     DataPattern::AllOnes,
/// );
/// assert_eq!(table.rows.len(), 32);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PcFaultTable {
    /// The pattern the table was measured with.
    pub pattern: DataPattern,
    /// Swept voltages (columns), descending.
    pub voltages: Vec<Millivolts>,
    /// One row per port, index order (PC0–PC15 = HBM0, PC16–PC31 = HBM1).
    pub rows: Vec<PcRow>,
}

impl PcFaultTable {
    /// Builds the table analytically at the predictor's geometry (use the
    /// full-scale predictor for paper-comparable absolute counts).
    #[must_use]
    pub fn from_predictor(
        predictor: &RatePredictor,
        sweep: VoltageSweep,
        pattern: DataPattern,
    ) -> Self {
        let geometry = predictor.geometry();
        let bits = geometry.bits_per_pc() as f64;
        let voltages: Vec<Millivolts> = sweep.iter().collect();
        let rows = PcIndex::all(geometry)
            .map(|pc| PcRow {
                port: pc.as_u8(),
                cells: voltages
                    .iter()
                    .map(|&v| {
                        let rates = predictor.pc_rates(pc, v);
                        let rate = match pattern {
                            DataPattern::AllZeros => rates.rate_0to1,
                            _ => rates.rate_1to0,
                        };
                        if rate.as_f64() * bits < 0.5 {
                            CellValue::NoFault
                        } else {
                            CellValue::Percent(rate.as_percent())
                        }
                    })
                    .collect(),
            })
            .collect();
        PcFaultTable {
            pattern,
            voltages,
            rows,
        }
    }

    /// Measures the table by actually driving write/read-back traffic
    /// through every AXI port — the engine shards the work per pseudo
    /// channel at the platform's configured worker count, so the table is
    /// identical for any worker count. Cells hold the observed faulty-bit
    /// percentage of the `words_per_pc` words checked (capped at the
    /// platform geometry). The platform is left back at nominal voltage.
    ///
    /// # Errors
    ///
    /// PMBus/device errors; the sweep must stay at or above V_critical.
    pub fn measure(
        platform: &mut Platform,
        sweep: VoltageSweep,
        pattern: DataPattern,
        words_per_pc: u64,
    ) -> Result<Self, ExperimentError> {
        let geometry = platform.geometry();
        let words = words_per_pc.clamp(1, geometry.words_per_pc());
        let bits = words as f64 * 256.0;
        let voltages: Vec<Millivolts> = sweep.iter().collect();
        let program = MacroProgram::write_then_check(0..words, pattern);
        let jobs: Vec<_> = (0..geometry.total_pcs())
            .map(|i| (PortId::new(i).expect("within geometry"), program.clone()))
            .collect();

        let mut columns: Vec<Vec<CellValue>> = vec![Vec::with_capacity(voltages.len()); jobs.len()];
        for &voltage in &voltages {
            platform.set_voltage(voltage)?;
            if platform.is_crashed() {
                return Err(ExperimentError::from(hbm_device::DeviceError::Crashed));
            }
            for (port, stats) in engine::run_jobs(platform, &jobs, Telemetry::disabled())? {
                let flips = stats.total_flips();
                columns[usize::from(port.as_u8())].push(if flips == 0 {
                    CellValue::NoFault
                } else {
                    CellValue::Percent(100.0 * flips as f64 / bits)
                });
            }
        }
        platform.set_voltage(Millivolts(1200))?;

        let rows = columns
            .into_iter()
            .enumerate()
            .map(|(port, cells)| PcRow {
                port: port as u8,
                cells,
            })
            .collect();
        Ok(PcFaultTable {
            pattern,
            voltages,
            rows,
        })
    }

    /// The cell for `(port, voltage)`, if swept.
    #[must_use]
    pub fn cell(&self, port: u8, voltage: Millivolts) -> Option<CellValue> {
        let col = self.voltages.iter().position(|&v| v == voltage)?;
        self.rows
            .iter()
            .find(|r| r.port == port)
            .map(|r| r.cells[col])
    }

    /// Ports with no expected faults at a voltage.
    #[must_use]
    pub fn fault_free_ports(&self, voltage: Millivolts) -> Vec<u8> {
        let Some(col) = self.voltages.iter().position(|&v| v == voltage) else {
            return Vec::new();
        };
        self.rows
            .iter()
            .filter(|r| matches!(r.cells[col], CellValue::NoFault))
            .map(|r| r.port)
            .collect()
    }
}

/// One point of the per-stack faulty-fraction curves (Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StackFractionPoint {
    /// Supply voltage.
    pub voltage: Millivolts,
    /// Union faulty fraction of HBM0.
    pub hbm0: Ratio,
    /// Union faulty fraction of HBM1.
    pub hbm1: Ratio,
}

/// Builds the Fig. 4 series: fraction of faulty bits per stack across a
/// sweep.
#[must_use]
pub fn stack_fraction_series(
    predictor: &RatePredictor,
    sweep: VoltageSweep,
) -> Vec<StackFractionPoint> {
    sweep
        .iter()
        .map(|voltage| StackFractionPoint {
            voltage,
            hbm0: predictor.stack_rate(StackId(0), voltage),
            hbm1: predictor.stack_rate(StackId(1), voltage),
        })
        .collect()
}

/// The §III-B variation statistics, derived from the analytic model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariationSummary {
    /// Highest voltage with ≥1 expected 1→0 flip device-wide.
    pub onset_1to0: Option<Millivolts>,
    /// Highest voltage with ≥1 expected 0→1 flip device-wide.
    pub onset_0to1: Option<Millivolts>,
    /// Mean 0→1 / 1→0 rate ratio over the unsafe region (paper: ≈1.21).
    pub polarity_ratio: f64,
    /// Mean HBM1 / HBM0 fault-rate ratio over the unsafe region
    /// (paper: HBM0 ≈13 % lower → ratio ≈1.13).
    pub stack_ratio: f64,
}

/// Computes the variation summary over the unsafe region.
#[must_use]
pub fn variation_summary(predictor: &RatePredictor) -> VariationSummary {
    let geometry = predictor.geometry();
    let bits = geometry.total_bits() as f64;
    let sweep = VoltageSweep::unsafe_region();

    let mut onset_1to0 = None;
    let mut onset_0to1 = None;
    let mut sum10 = 0.0;
    let mut sum01 = 0.0;
    let mut stack_ratios = Vec::new();

    for v in sweep.iter() {
        let mut device10 = 0.0;
        let mut device01 = 0.0;
        for pc in PcIndex::all(geometry) {
            let rates = predictor.pc_rates(pc, v);
            device10 += rates.rate_1to0.as_f64();
            device01 += rates.rate_0to1.as_f64();
        }
        let n = f64::from(geometry.total_pcs());
        device10 /= n;
        device01 /= n;

        if onset_1to0.is_none() && device10 * bits >= 1.0 {
            onset_1to0 = Some(v);
        }
        if onset_0to1.is_none() && device01 * bits >= 1.0 {
            onset_0to1 = Some(v);
        }
        sum10 += device10;
        sum01 += device01;

        let r0 = predictor.stack_rate(StackId(0), v).as_f64();
        let r1 = predictor.stack_rate(StackId(1), v).as_f64();
        if r0 > 0.0 && r0 < 1.0 {
            stack_ratios.push(r1 / r0);
        }
    }

    VariationSummary {
        onset_1to0,
        onset_0to1,
        polarity_ratio: if sum10 > 0.0 { sum01 / sum10 } else { 0.0 },
        stack_ratio: if stack_ratios.is_empty() {
            1.0
        } else {
            stack_ratios.iter().sum::<f64>() / stack_ratios.len() as f64
        },
    }
}

/// One point of the temperature-sensitivity study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TemperaturePoint {
    /// Operating temperature.
    pub temperature: hbm_units::Celsius,
    /// Highest voltage with ≥1 expected device-wide fault.
    pub onset: Option<Millivolts>,
    /// Device union fault rate at 0.90 V.
    pub rate_at_900mv: Ratio,
}

/// Temperature sensitivity of the fault behaviour: the study pins the
/// stacks at 35 ± 1 °C; this extension sweeps the operating temperature
/// (the model's 1 mV/°C weak-bit sensitivity) and reports how the fault
/// onset and mid-region rates move.
#[must_use]
pub fn temperature_sweep(
    params: &hbm_faults::FaultModelParams,
    seed: u64,
    temperatures: &[hbm_units::Celsius],
) -> Vec<TemperaturePoint> {
    use hbm_device::HbmGeometry;

    temperatures
        .iter()
        .map(|&temperature| {
            let mut predictor = RatePredictor::new(params.clone(), HbmGeometry::vcu128(), seed);
            predictor.set_temperature(temperature);
            let bits = predictor.geometry().total_bits() as f64;
            let onset = VoltageSweep::unsafe_region()
                .iter()
                .find(|&v| predictor.device_rate(v).as_f64() * bits >= 1.0);
            TemperaturePoint {
                temperature,
                onset,
                rate_at_900mv: predictor.device_rate(Millivolts(900)),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;

    fn predictor() -> RatePredictor {
        let platform = Platform::builder().seed(7).build();
        platform.full_scale_predictor().clone()
    }

    fn fig5_sweep() -> VoltageSweep {
        VoltageSweep::new(Millivolts(970), Millivolts(840), Millivolts(10)).unwrap()
    }

    #[test]
    fn cell_display_rules() {
        assert_eq!(CellValue::NoFault.display(), "NF");
        assert_eq!(CellValue::Percent(0.4).display(), "0");
        assert_eq!(CellValue::Percent(3.6).display(), "4");
        assert_eq!(CellValue::Percent(100.0).display(), "100");
        assert_eq!(CellValue::NoFault.fraction(), 0.0);
        assert!((CellValue::Percent(50.0).fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn table_shape_and_orientation() {
        let table = PcFaultTable::from_predictor(&predictor(), fig5_sweep(), DataPattern::AllOnes);
        assert_eq!(table.rows.len(), 32);
        assert_eq!(table.voltages.len(), 14);
        for row in &table.rows {
            assert_eq!(row.cells.len(), 14);
        }
    }

    #[test]
    fn sensitive_pcs_fault_earlier_than_typical_pcs() {
        let table = PcFaultTable::from_predictor(&predictor(), fig5_sweep(), DataPattern::AllOnes);
        // At a mid voltage, the sensitive PCs must not be NF while many
        // normal PCs still are.
        let v = Millivolts(950);
        let free = table.fault_free_ports(v);
        for sensitive in [4u8, 5, 18, 19, 20] {
            assert!(
                !free.contains(&sensitive),
                "sensitive PC{sensitive} should show faults at {v}"
            );
        }
        assert!(
            !free.is_empty(),
            "some normal PCs should still be NF at {v}"
        );
    }

    #[test]
    fn everything_faulty_at_the_bottom() {
        let table = PcFaultTable::from_predictor(&predictor(), fig5_sweep(), DataPattern::AllOnes);
        // At 0.84 V every PC shows faults (no NF cells) and the device mean
        // is far into the collapse; by 0.83 V (one step below the table)
        // saturation is total — asserted by the stack-series test.
        let mut mean = 0.0;
        for row in &table.rows {
            let cell = table.cell(row.port, Millivolts(840)).unwrap();
            assert!(
                cell.fraction() > 0.0,
                "PC{} must be faulty at 0.84 V",
                row.port
            );
            mean += cell.fraction();
        }
        mean /= table.rows.len() as f64;
        // All-ones pattern sees the stuck-at-0 share (≈47 %) of a nearly
        // fully collapsed population.
        assert!(mean > 0.25, "mean 1→0 fraction at 0.84 V: {mean}");
    }

    #[test]
    fn measured_table_is_worker_count_invariant() {
        let table_at = |workers: usize| {
            let mut p = Platform::builder().seed(7).workers(workers).build();
            PcFaultTable::measure(&mut p, fig5_sweep(), DataPattern::AllOnes, 256).unwrap()
        };
        let sequential = table_at(1);
        assert_eq!(sequential.rows.len(), 32);
        // Deep cells must show measured faults on the reduced geometry.
        assert!(sequential
            .rows
            .iter()
            .any(|r| r.cells.last().unwrap().fraction() > 0.0));
        assert_eq!(sequential, table_at(4));
    }

    #[test]
    fn stack_series_shape() {
        let series = stack_fraction_series(&predictor(), VoltageSweep::unsafe_region());
        assert_eq!(series.len(), 17);
        // Monotone growth for both stacks.
        for w in series.windows(2) {
            assert!(w[1].hbm0 >= w[0].hbm0);
            assert!(w[1].hbm1 >= w[0].hbm1);
        }
        // Saturation at the bottom.
        let last = series.last().unwrap();
        assert!(last.hbm0.as_f64() > 0.99 && last.hbm1.as_f64() > 0.99);
        // HBM1 weaker through the exponential region.
        let mid = series
            .iter()
            .find(|p| p.voltage == Millivolts(900))
            .unwrap();
        assert!(mid.hbm1 > mid.hbm0);
    }

    #[test]
    fn hotter_devices_fault_earlier_and_harder() {
        use hbm_units::Celsius;
        let params = hbm_faults::FaultModelParams::date21();
        let points = temperature_sweep(
            &params,
            7,
            &[Celsius(25.0), Celsius(35.0), Celsius(55.0), Celsius(85.0)],
        );
        assert_eq!(points.len(), 4);
        // Rates grow monotonically with temperature.
        for w in points.windows(2) {
            assert!(
                w[1].rate_at_900mv >= w[0].rate_at_900mv,
                "rate must grow with temperature: {w:?}"
            );
        }
        // Onset voltages never decrease with temperature.
        for w in points.windows(2) {
            assert!(w[1].onset >= w[0].onset, "onset must not drop: {w:?}");
        }
        // At the study's 35 °C the onset stays the paper's 0.97 V.
        assert_eq!(points[1].onset, Some(Millivolts(970)));
        // A server-hot 85 °C device faults visibly earlier.
        assert!(points[3].rate_at_900mv.as_f64() > 5.0 * points[1].rate_at_900mv.as_f64());
    }

    #[test]
    fn variation_summary_matches_paper_shape() {
        let summary = variation_summary(&predictor());
        // Onsets: 1→0 first (0.97 V), 0→1 one step later (0.96 V).
        assert_eq!(summary.onset_1to0, Some(Millivolts(970)));
        let onset_01 = summary.onset_0to1.unwrap();
        assert!(onset_01 < Millivolts(970) && onset_01 >= Millivolts(950));
        // Polarity ratio near the paper's +21 %.
        assert!(
            (1.05..1.45).contains(&summary.polarity_ratio),
            "polarity ratio {}",
            summary.polarity_ratio
        );
        // Stack ratio near the paper's 13 %.
        assert!(
            (1.05..1.25).contains(&summary.stack_ratio),
            "stack ratio {}",
            summary.stack_ratio
        );
    }
}
