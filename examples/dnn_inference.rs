//! Approximate DNN inference on undervolted HBM — the application class
//! (EDEN, Koppula et al., MICRO'19) that motivates the paper's three-factor
//! trade-off: neural-network weights tolerate sparse bit flips gracefully,
//! so inference can run from memory that is undervolted well below the
//! guardband.
//!
//! The example builds a nearest-centroid classifier (a 1-layer network)
//! with int8 weights, stores the weights in undervolted HBM, reads them
//! back through the fault model at each voltage, and reports
//! classification accuracy next to the power saving.
//!
//! Run with: `cargo run --release --example dnn_inference`

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use hbm_undervolt_suite::device::{PortId, Word256, WordOffset};
use hbm_undervolt_suite::traffic::MemoryPort;
use hbm_undervolt_suite::undervolt::Platform;
use hbm_units::{Millivolts, Ratio};

const CLASSES: usize = 10;
const DIM: usize = 64;
const SAMPLES: usize = 2000;

/// Deterministic int8 class centroids.
fn make_centroids(rng: &mut ChaCha8Rng) -> Vec<[i8; DIM]> {
    (0..CLASSES)
        .map(|_| {
            let mut c = [0i8; DIM];
            for slot in &mut c {
                *slot = rng.gen_range(-100..=100);
            }
            c
        })
        .collect()
}

/// Labelled test samples: a centroid plus bounded noise.
fn make_samples(centroids: &[[i8; DIM]], rng: &mut ChaCha8Rng) -> Vec<(usize, [i8; DIM])> {
    (0..SAMPLES)
        .map(|_| {
            let label = rng.gen_range(0..CLASSES);
            let mut x = centroids[label];
            for slot in &mut x {
                *slot = slot.saturating_add(rng.gen_range(-25..=25));
            }
            (label, x)
        })
        .collect()
}

fn classify(weights: &[[i8; DIM]], x: &[i8; DIM]) -> usize {
    weights
        .iter()
        .enumerate()
        .min_by_key(|(_, c)| {
            c.iter()
                .zip(x)
                .map(|(&a, &b)| {
                    let d = i32::from(a) - i32::from(b);
                    d * d
                })
                .sum::<i32>()
        })
        .map(|(i, _)| i)
        .expect("at least one class")
}

/// Packs the weight matrix into 256-bit words (32 int8 per word).
fn pack(weights: &[[i8; DIM]]) -> Vec<Word256> {
    let bytes: Vec<u8> = weights
        .iter()
        .flat_map(|c| c.iter().map(|&v| v as u8))
        .collect();
    bytes
        .chunks(32)
        .map(|chunk| {
            let mut lanes = [0u64; 4];
            for (i, &b) in chunk.iter().enumerate() {
                lanes[i / 8] |= u64::from(b) << ((i % 8) * 8);
            }
            Word256(lanes)
        })
        .collect()
}

fn unpack(words: &[Word256]) -> Vec<[i8; DIM]> {
    let mut bytes = Vec::with_capacity(words.len() * 32);
    for w in words {
        for i in 0..32 {
            bytes.push((w.0[i / 8] >> ((i % 8) * 8)) as u8 as i8);
        }
    }
    bytes
        .chunks(DIM)
        .take(CLASSES)
        .map(|chunk| {
            let mut c = [0i8; DIM];
            c.copy_from_slice(chunk);
            c
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = ChaCha8Rng::seed_from_u64(2021);
    let centroids = make_centroids(&mut rng);
    let samples = make_samples(&centroids, &mut rng);
    let words = pack(&centroids);

    let mut platform = Platform::builder().seed(7).build();
    let port = PortId::new(4)?; // the weakest PC: worst case for the weights
    let nominal = platform.measure_power(Ratio::ONE)?.power;

    // Baseline accuracy with pristine weights.
    let baseline = samples
        .iter()
        .filter(|(label, x)| classify(&centroids, x) == *label)
        .count() as f64
        / SAMPLES as f64;
    println!("nearest-centroid classifier: {CLASSES} classes x {DIM} dims, {SAMPLES} samples");
    println!("pristine accuracy: {:.1}%\n", baseline * 100.0);
    println!(
        "{:>8} {:>9} {:>11} {:>11} {:>10}",
        "V", "saving", "bit flips", "accuracy", "vs base"
    );

    for mv in [1200u32, 980, 920, 900, 890, 880, 870, 860, 850] {
        platform.set_voltage(Millivolts(mv))?;
        let saving = nominal / platform.measure_power(Ratio::ONE)?.power;

        // Store the weights and read them back through the fault model.
        let mut flips = 0u64;
        let mut readback = Vec::with_capacity(words.len());
        {
            let mut access = platform.port(port);
            for (i, &w) in words.iter().enumerate() {
                access.write(WordOffset(i as u64), w)?;
            }
            for (i, &w) in words.iter().enumerate() {
                let observed = access.read(WordOffset(i as u64))?;
                flips += u64::from(observed.diff_bits(w));
                readback.push(observed);
            }
        }
        let degraded = unpack(&readback);
        let accuracy = samples
            .iter()
            .filter(|(label, x)| classify(&degraded, x) == *label)
            .count() as f64
            / SAMPLES as f64;

        println!(
            "{:>8} {:>8.2}x {:>11} {:>10.1}% {:>+9.1}%",
            format!("{:.2}", f64::from(mv) / 1000.0),
            saving,
            flips,
            accuracy * 100.0,
            (accuracy - baseline) * 100.0,
        );
    }

    println!("\ninference keeps its accuracy well below the guardband: the");
    println!("power/fault-rate/capacity trade-off has real headroom for DNNs.");
    Ok(())
}
