//! The trade-off surface among power, fault rate, memory capacity and
//! delivered bandwidth (§III-C and Fig. 6 of the paper, extended with the
//! voltage–latency axis Voltron observes).
//!
//! The paper's Fig. 6 stops at three factors: how many pseudo channels
//! stay usable (capacity) at which voltage (power) under which fault
//! budget (reliability). This module adds the fourth: below the timing
//! knee the stretched tRCD/tCL shave delivered bandwidth and inflate
//! access latency *before* the first bit flips, so an operating point is
//! only complete with its delivered GB/s and per-access latency attached.
//! [`TradeOffAnalysis::surface`] tabulates all four factors per swept
//! voltage, and [`PlanRequest`] lets the planner reject points that are
//! fault-clean but too slow.

use hbm_device::{
    AccessPattern, AccessTimingModel, ClockConfig, DramTimings, PcIndex, TimingStretchModel,
};
use hbm_faults::FaultMap;
use hbm_power::HbmPowerModel;
use hbm_units::{Millivolts, Ratio};
use serde::{Deserialize, Serialize};

use crate::error::ExperimentError;

/// One Fig. 6 series: usable pseudo channels per voltage at a tolerable
/// fault rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UsablePcCurve {
    /// The tolerable fault rate of this series (0 = must be fault-free).
    pub tolerable: Ratio,
    /// `(voltage, usable PC count)` pairs in descending voltage order.
    pub points: Vec<(Millivolts, usize)>,
}

impl UsablePcCurve {
    /// The count at the grid knot *nearest* to `voltage`.
    ///
    /// Off-grid queries (a planner probing 0.985 V against a 10 mV sweep)
    /// resolve to the closest swept voltage; exact hits resolve to
    /// themselves; queries beyond either end clamp to the boundary knot.
    /// When two knots are equidistant the higher voltage wins (the
    /// conservative read, since counts never increase as voltage drops).
    /// Returns `None` only for an empty curve.
    #[must_use]
    pub fn at(&self, voltage: Millivolts) -> Option<usize> {
        // Points are in descending voltage order, so on a distance tie
        // `min_by_key` keeps the first — the higher — knot.
        self.points
            .iter()
            .min_by_key(|(v, _)| v.as_u32().abs_diff(voltage.as_u32()))
            .map(|&(_, n)| n)
    }
}

/// An operating point the planner recommends: how low to go for a given
/// capacity, fault budget and timing constraints, and what it buys.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// The recommended supply voltage.
    pub voltage: Millivolts,
    /// The pseudo channels usable at that voltage within the budget.
    pub usable_pcs: Vec<u8>,
    /// Usable capacity in bytes.
    pub capacity_bytes: u64,
    /// Power-saving factor versus nominal 1.20 V (same utilization).
    pub saving_factor: f64,
    /// The worst per-PC fault rate among the selected PCs.
    pub worst_fault_rate: Ratio,
    /// Delivered bandwidth at this voltage under the planned access
    /// pattern, in GB/s (stretched timings included).
    pub delivered_gbps: f64,
    /// Latency of one access under the planned pattern, in nanoseconds.
    pub access_latency_ns: f64,
}

/// A full four-factor planner query: capacity and fault budget (the
/// paper's axes) plus the timing constraints of the workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlanRequest {
    /// Minimum usable capacity, in bytes.
    pub min_capacity_bytes: u64,
    /// Tolerable per-PC fault rate.
    pub tolerable: Ratio,
    /// The access pattern latency and bandwidth are evaluated under.
    pub pattern: AccessPattern,
    /// Reject voltages whose per-access latency exceeds this budget, in
    /// nanoseconds (`None` = latency-blind, the paper's 3-factor planner).
    pub latency_budget_ns: Option<f64>,
    /// Reject voltages delivering less than this bandwidth, in GB/s.
    pub min_delivered_gbps: Option<f64>,
}

impl PlanRequest {
    /// A 3-factor request (sequential pattern, no timing constraints) —
    /// exactly what [`TradeOffAnalysis::plan`] historically answered.
    #[must_use]
    pub fn new(min_capacity_bytes: u64, tolerable: Ratio) -> Self {
        PlanRequest {
            min_capacity_bytes,
            tolerable,
            pattern: AccessPattern::SequentialStream,
            latency_budget_ns: None,
            min_delivered_gbps: None,
        }
    }

    /// Builder-style access-pattern override.
    #[must_use]
    pub fn with_pattern(mut self, pattern: AccessPattern) -> Self {
        self.pattern = pattern;
        self
    }

    /// Builder-style latency budget.
    #[must_use]
    pub fn with_latency_budget_ns(mut self, budget: f64) -> Self {
        self.latency_budget_ns = Some(budget);
        self
    }

    /// Builder-style delivered-bandwidth floor.
    #[must_use]
    pub fn with_min_delivered_gbps(mut self, gbps: f64) -> Self {
        self.min_delivered_gbps = Some(gbps);
        self
    }
}

/// One planner example of a [`TradeOffReport`]: what the lowest safe
/// operating point looks like for a capacity fraction and fault budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlannedFraction {
    /// Required fraction of the device capacity, in `(0, 1]`.
    pub fraction: f64,
    /// Tolerable per-PC fault rate.
    pub tolerable: Ratio,
    /// The recommended point, or `None` if no swept voltage qualifies.
    pub point: Option<OperatingPoint>,
}

/// One voltage of the four-factor surface: power saving, fault-free
/// capacity, and the delivered bandwidth / latency of every access
/// pattern, all at the same rail.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurfacePoint {
    /// The swept supply voltage.
    pub voltage: Millivolts,
    /// Pseudo channels usable at zero fault tolerance.
    pub usable_pcs: usize,
    /// Fault-free capacity in bytes.
    pub capacity_bytes: u64,
    /// Power-saving factor versus nominal.
    pub saving_factor: f64,
    /// Delivered GB/s for long sequential streams.
    pub sequential_gbps: f64,
    /// Delivered GB/s for strided single-word access.
    pub strided_gbps: f64,
    /// Delivered GB/s for uniformly random words.
    pub random_gbps: f64,
    /// Latency of one random-word access, in nanoseconds.
    pub random_latency_ns: f64,
    /// Energy per *delivered* sequential bit, in picojoules: the power
    /// model evaluated against the stretched (not pin) bandwidth.
    pub sequential_pj_per_bit: f64,
}

/// The full §III-C artefact: the Fig. 6 curve family, the four-factor
/// surface, and planner examples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TradeOffReport {
    /// One usable-PC series per tolerance, loosest last.
    pub curves: Vec<UsablePcCurve>,
    /// The four-factor surface, one row per swept voltage.
    pub surface: Vec<SurfacePoint>,
    /// Example operating points across the capacity/fault-budget space.
    pub plans: Vec<PlannedFraction>,
}

/// The trade-off analysis: a [`FaultMap`] (per-PC rates across the sweep)
/// combined with the power model and the voltage-dependent timing model.
///
/// # Examples
///
/// ```
/// use hbm_faults::{FaultMap, FaultModelParams, RatePredictor};
/// use hbm_device::HbmGeometry;
/// use hbm_power::HbmPowerModel;
/// use hbm_undervolt::TradeOffAnalysis;
/// use hbm_units::{Millivolts, Ratio};
///
/// let predictor = RatePredictor::new(FaultModelParams::date21(), HbmGeometry::vcu128(), 7);
/// let map = FaultMap::from_predictor(&predictor, Millivolts(980), Millivolts(810), Millivolts(10));
/// let analysis = TradeOffAnalysis::new(map, HbmPowerModel::date21());
///
/// // A fault-intolerant application needing all 8 GB stays at the
/// // guardband edge: a fixed ≈1.5× saving.
/// let full = analysis.plan(8 << 30, Ratio::ZERO).unwrap();
/// assert!(full.voltage >= Millivolts(960));
/// assert!(full.saving_factor >= 1.49);
/// // The fourth axis rides along: the point knows what it delivers.
/// assert!(full.delivered_gbps > 300.0);
/// ```
#[derive(Debug, Clone)]
pub struct TradeOffAnalysis {
    map: FaultMap,
    power: HbmPowerModel,
    timing: AccessTimingModel,
    stretch: TimingStretchModel,
}

impl TradeOffAnalysis {
    /// Combines a fault map with a power model, using the study clock,
    /// HBM2 core timings and the date21 stretch calibration for the
    /// timing axis. The stretch seed is the map's own device seed, so
    /// timing variation and fault variation describe the same device.
    #[must_use]
    pub fn new(map: FaultMap, power: HbmPowerModel) -> Self {
        let timing =
            AccessTimingModel::new(map.geometry, ClockConfig::vcu128(), DramTimings::hbm2());
        TradeOffAnalysis {
            map,
            power,
            timing,
            stretch: TimingStretchModel::date21(),
        }
    }

    /// Overrides the timing model and stretch calibration (use
    /// [`TimingStretchModel::none`] to reproduce the pre-Voltron
    /// 3-factor analysis).
    #[must_use]
    pub fn with_timing(mut self, timing: AccessTimingModel, stretch: TimingStretchModel) -> Self {
        self.timing = timing;
        self.stretch = stretch;
        self
    }

    /// The underlying fault map.
    #[must_use]
    pub fn fault_map(&self) -> &FaultMap {
        &self.map
    }

    /// The timing model stretched to a swept voltage for this device.
    fn timing_at(&self, voltage: Millivolts) -> AccessTimingModel {
        self.timing
            .at_voltage(&self.stretch, self.map.seed, voltage)
    }

    /// Delivered bandwidth under a pattern at a swept voltage, in GB/s.
    #[must_use]
    pub fn delivered_gbps(&self, voltage: Millivolts, pattern: AccessPattern) -> f64 {
        self.timing_at(voltage).delivered_gbps(pattern)
    }

    /// Latency of one access under a pattern at a swept voltage, in ns.
    #[must_use]
    pub fn access_latency_ns(&self, voltage: Millivolts, pattern: AccessPattern) -> f64 {
        self.timing_at(voltage).access_latency_ns(pattern)
    }

    /// Builds one Fig. 6 series for a tolerable fault rate.
    #[must_use]
    pub fn usable_pc_curve(&self, tolerable: Ratio) -> UsablePcCurve {
        UsablePcCurve {
            tolerable,
            points: self
                .map
                .voltages
                .iter()
                .map(|&v| (v, self.map.usable_pc_count(v, tolerable)))
                .collect(),
        }
    }

    /// Builds the full Fig. 6 family for several tolerances.
    #[must_use]
    pub fn usable_pc_curves(&self, tolerances: &[Ratio]) -> Vec<UsablePcCurve> {
        tolerances
            .iter()
            .map(|&t| self.usable_pc_curve(t))
            .collect()
    }

    /// Tabulates the four-factor surface: one [`SurfacePoint`] per swept
    /// voltage, in the map's (descending) voltage order.
    #[must_use]
    pub fn surface(&self) -> Vec<SurfacePoint> {
        self.map
            .voltages
            .iter()
            .map(|&v| {
                let timing = self.timing_at(v);
                let usable = self.map.usable_pc_count(v, Ratio::ZERO);
                let fraction = self.device_fraction(v);
                let sequential_gbps = timing.delivered_gbps(AccessPattern::SequentialStream);
                SurfacePoint {
                    voltage: v,
                    usable_pcs: usable,
                    capacity_bytes: usable as u64 * self.map.geometry.bytes_per_pc(),
                    saving_factor: self.power.saving_factor(v, Ratio::ONE, fraction),
                    sequential_gbps,
                    strided_gbps: timing.delivered_gbps(AccessPattern::StridedSingleWord),
                    random_gbps: timing.delivered_gbps(AccessPattern::RandomWord),
                    random_latency_ns: timing.access_latency_ns(AccessPattern::RandomWord),
                    sequential_pj_per_bit: self.power.energy_per_bit_pj(
                        v,
                        Ratio::ONE,
                        fraction,
                        sequential_gbps,
                    ),
                }
            })
            .collect()
    }

    /// The device-mean union fault rate at a voltage (drives the
    /// capacitance-degradation term of the saving factor).
    fn device_fraction(&self, voltage: Millivolts) -> Ratio {
        let mut sum = 0.0;
        let mut n = 0usize;
        for profile in &self.map.profiles {
            if let Some(entry) = profile.at(voltage) {
                sum += entry.union().as_f64();
                n += 1;
            }
        }
        if n == 0 {
            Ratio::ZERO
        } else {
            Ratio(sum / n as f64)
        }
    }

    /// Plans the lowest-voltage operating point that keeps at least
    /// `min_capacity_bytes` of memory within `tolerable` fault rate
    /// (3-factor: timing-blind). Returns `None` if no swept voltage
    /// satisfies the requirement.
    #[must_use]
    pub fn plan(&self, min_capacity_bytes: u64, tolerable: Ratio) -> Option<OperatingPoint> {
        self.plan_request(&PlanRequest::new(min_capacity_bytes, tolerable))
    }

    /// Plans the lowest-voltage operating point satisfying a full
    /// four-factor [`PlanRequest`]: enough capacity within the fault
    /// budget, within the latency budget, above the bandwidth floor.
    /// Returns `None` if no swept voltage satisfies all of them.
    #[must_use]
    pub fn plan_request(&self, request: &PlanRequest) -> Option<OperatingPoint> {
        let bytes_per_pc = self.map.geometry.bytes_per_pc();
        let needed_pcs = request.min_capacity_bytes.div_ceil(bytes_per_pc).max(1) as usize;
        let mut best: Option<OperatingPoint> = None;
        for &voltage in &self.map.voltages {
            let usable = self.map.usable_pcs(voltage, request.tolerable);
            if usable.len() < needed_pcs {
                continue;
            }
            let timing = self.timing_at(voltage);
            let latency = timing.access_latency_ns(request.pattern);
            if request.latency_budget_ns.is_some_and(|b| latency > b) {
                continue;
            }
            let delivered = timing.delivered_gbps(request.pattern);
            if request.min_delivered_gbps.is_some_and(|m| delivered < m) {
                continue;
            }
            let point =
                self.operating_point(voltage, &usable, request.tolerable, delivered, latency);
            match &best {
                Some(b) if b.voltage <= point.voltage => {}
                _ => best = Some(point),
            }
        }
        best
    }

    fn operating_point(
        &self,
        voltage: Millivolts,
        usable: &[PcIndex],
        tolerable: Ratio,
        delivered_gbps: f64,
        access_latency_ns: f64,
    ) -> OperatingPoint {
        let worst = usable
            .iter()
            .filter_map(|&pc| self.map.profile(pc).at(voltage))
            .map(|e| e.union().as_f64())
            .fold(0.0, f64::max);
        let saving = self
            .power
            .saving_factor(voltage, Ratio::ONE, self.device_fraction(voltage));
        debug_assert!(worst <= tolerable.as_f64().max(f64::EPSILON) || tolerable == Ratio::ZERO);
        OperatingPoint {
            voltage,
            usable_pcs: usable.iter().map(|pc| pc.as_u8()).collect(),
            capacity_bytes: usable.len() as u64 * self.map.geometry.bytes_per_pc(),
            saving_factor: saving,
            worst_fault_rate: Ratio(worst),
            delivered_gbps,
            access_latency_ns,
        }
    }

    /// The tolerance family the paper's Fig. 6 displays.
    #[must_use]
    pub fn standard_tolerances() -> [Ratio; 6] {
        [
            Ratio::ZERO,
            Ratio(1e-6),
            Ratio(1e-4),
            Ratio(0.01),
            Ratio(0.1),
            Ratio(0.5),
        ]
    }

    /// Builds the full report: the standard Fig. 6 family, the
    /// four-factor surface, and planner examples spanning the
    /// capacity/fault-budget space.
    ///
    /// # Errors
    ///
    /// Propagates planner configuration errors (none for the built-in
    /// example fractions).
    pub fn report(&self) -> Result<TradeOffReport, ExperimentError> {
        let curves = self.usable_pc_curves(&Self::standard_tolerances());
        let examples = [(1.0, Ratio::ZERO), (0.5, Ratio(1e-6)), (0.25, Ratio(0.01))];
        let mut plans = Vec::with_capacity(examples.len());
        for (fraction, tolerable) in examples {
            plans.push(PlannedFraction {
                fraction,
                tolerable,
                point: self.plan_fraction(fraction, tolerable)?,
            });
        }
        Ok(TradeOffReport {
            curves,
            surface: self.surface(),
            plans,
        })
    }

    /// The paper's §III-C example queries, as a convenience: returns the
    /// operating point for "needs `fraction` of the capacity, tolerates
    /// `tolerable`".
    ///
    /// # Errors
    ///
    /// Returns a configuration error if `fraction` is outside `(0, 1]`.
    pub fn plan_fraction(
        &self,
        fraction: f64,
        tolerable: Ratio,
    ) -> Result<Option<OperatingPoint>, ExperimentError> {
        Ok(self.plan_request(&self.request_for_fraction(fraction, tolerable)?))
    }

    /// Builds a [`PlanRequest`] asking for a fraction of the device
    /// capacity (timing-unconstrained; refine it with the builders).
    ///
    /// # Errors
    ///
    /// Returns a configuration error if `fraction` is outside `(0, 1]`.
    pub fn request_for_fraction(
        &self,
        fraction: f64,
        tolerable: Ratio,
    ) -> Result<PlanRequest, ExperimentError> {
        if !(fraction > 0.0 && fraction <= 1.0) {
            return Err(ExperimentError::config(format!(
                "capacity fraction must be in (0, 1], got {fraction}"
            )));
        }
        let total = self.map.geometry.total_bytes();
        Ok(PlanRequest::new(
            (total as f64 * fraction).ceil() as u64,
            tolerable,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbm_device::HbmGeometry;
    use hbm_faults::{FaultModelParams, RatePredictor};

    fn analysis() -> TradeOffAnalysis {
        let predictor = RatePredictor::new(FaultModelParams::date21(), HbmGeometry::vcu128(), 7);
        let map =
            FaultMap::from_predictor(&predictor, Millivolts(980), Millivolts(810), Millivolts(10));
        TradeOffAnalysis::new(map, HbmPowerModel::date21())
    }

    #[test]
    fn fig6_curves_are_monotone() {
        let a = analysis();
        let tolerances = [
            Ratio::ZERO,
            Ratio(1e-6),
            Ratio(1e-4),
            Ratio(0.01),
            Ratio(0.5),
        ];
        let curves = a.usable_pc_curves(&tolerances);
        assert_eq!(curves.len(), tolerances.len());
        for curve in &curves {
            // Counts never increase as voltage drops.
            assert!(
                curve.points.windows(2).all(|w| w[0].1 >= w[1].1),
                "tolerance {:?}: {:?}",
                curve.tolerable,
                curve.points
            );
        }
        // More tolerance, (weakly) more PCs at every voltage.
        for w in curves.windows(2) {
            for (a, b) in w[0].points.iter().zip(&w[1].points) {
                assert!(a.1 <= b.1);
            }
        }
    }

    #[test]
    fn fault_intolerant_full_capacity_stays_near_guardband() {
        let a = analysis();
        let point = a.plan(8 << 30, Ratio::ZERO).unwrap();
        assert!(
            point.voltage >= Millivolts(960),
            "voltage {}",
            point.voltage
        );
        assert_eq!(point.usable_pcs.len(), 32);
        assert_eq!(point.capacity_bytes, 8 << 30);
        assert!(
            (1.45..1.65).contains(&point.saving_factor),
            "{}",
            point.saving_factor
        );
    }

    #[test]
    fn sacrificing_capacity_buys_voltage() {
        let a = analysis();
        let full = a.plan_fraction(1.0, Ratio::ZERO).unwrap().unwrap();
        let small = a.plan_fraction(0.2, Ratio::ZERO).unwrap().unwrap();
        assert!(small.voltage <= full.voltage);
        assert!(small.saving_factor >= full.saving_factor);
    }

    #[test]
    fn tolerating_faults_buys_voltage() {
        let a = analysis();
        let strict = a.plan_fraction(0.5, Ratio::ZERO).unwrap().unwrap();
        let loose = a.plan_fraction(0.5, Ratio(1e-6)).unwrap().unwrap();
        let looser = a.plan_fraction(0.5, Ratio(0.01)).unwrap().unwrap();
        assert!(loose.voltage <= strict.voltage);
        assert!(looser.voltage <= loose.voltage);
        assert!(looser.saving_factor >= strict.saving_factor);
        // Deep undervolting with high tolerance approaches the 2.3× regime.
        assert!(
            looser.saving_factor > 1.8,
            "saving {}",
            looser.saving_factor
        );
    }

    #[test]
    fn worst_fault_rate_respects_budget() {
        let a = analysis();
        let tol = Ratio(1e-4);
        let point = a.plan_fraction(0.25, tol).unwrap().unwrap();
        assert!(point.worst_fault_rate.as_f64() <= tol.as_f64());
    }

    #[test]
    fn impossible_plans_return_none() {
        let a = analysis();
        // Full capacity, zero faults, at the lowest voltages only: the map
        // starts at 0.98 V, so full capacity IS available; ask for more
        // capacity than exists instead.
        assert!(a.plan(u64::MAX, Ratio::ZERO).is_none());
        assert!(a.plan_fraction(2.0, Ratio::ZERO).is_err());
        assert!(a.plan_fraction(0.0, Ratio::ZERO).is_err());
    }

    #[test]
    fn curve_lookup_snaps_to_the_nearest_knot() {
        let a = analysis();
        let curve = a.usable_pc_curve(Ratio::ZERO);
        // Exact hits.
        assert_eq!(curve.at(Millivolts(980)), Some(32));
        assert_eq!(curve.at(Millivolts(810)), Some(0));
        // Off-grid snaps to the nearest knot (983 → 980, 812 → 810).
        assert_eq!(curve.at(Millivolts(983)), curve.at(Millivolts(980)));
        assert_eq!(curve.at(Millivolts(812)), curve.at(Millivolts(810)));
        // Equidistant queries prefer the higher knot.
        assert_eq!(curve.at(Millivolts(975)), curve.at(Millivolts(980)));
        // Beyond either end clamps to the boundary.
        assert_eq!(curve.at(Millivolts(1200)), Some(32));
        assert_eq!(curve.at(Millivolts(500)), Some(0));
        // Only an empty curve has nothing to say.
        let empty = UsablePcCurve {
            tolerable: Ratio::ZERO,
            points: Vec::new(),
        };
        assert_eq!(empty.at(Millivolts(900)), None);
    }

    #[test]
    fn surface_tracks_all_four_factors() {
        let a = analysis();
        let surface = a.surface();
        assert_eq!(surface.len(), a.fault_map().voltages.len());
        for w in surface.windows(2) {
            let (hi, lo) = (&w[0], &w[1]);
            assert!(hi.voltage > lo.voltage, "descending order");
            // Power saving grows as voltage drops …
            assert!(lo.saving_factor >= hi.saving_factor);
            // … while capacity and delivered bandwidth only shrink, and
            // latency only grows (the stretch model is monotone).
            assert!(lo.usable_pcs <= hi.usable_pcs);
            assert!(lo.sequential_gbps <= hi.sequential_gbps);
            assert!(lo.random_gbps <= hi.random_gbps);
            assert!(lo.random_latency_ns >= hi.random_latency_ns);
        }
        // Energy per delivered bit still improves with depth: the
        // quadratic power win outruns the stretched-timing bandwidth loss.
        for w in surface.windows(2) {
            assert!(w[1].sequential_pj_per_bit <= w[0].sequential_pj_per_bit);
        }
        let top = &surface[0];
        assert!(top.sequential_gbps > top.strided_gbps);
        assert!(top.strided_gbps >= top.random_gbps);
        assert!(top.random_gbps > 0.0);
        assert!(top.sequential_pj_per_bit > 0.0);
    }

    #[test]
    fn latency_budget_raises_the_planned_voltage() {
        let a = analysis();
        let unconstrained = a.plan_fraction(0.5, Ratio(1e-6)).unwrap().unwrap();
        // A budget equal to the latency four grid steps above the
        // unconstrained answer: strictly-monotone stretch means every
        // voltage below that reference violates it.
        let reference = unconstrained.voltage + Millivolts(40);
        let budget = a.access_latency_ns(reference, AccessPattern::RandomWord);
        let request = a
            .request_for_fraction(0.5, Ratio(1e-6))
            .unwrap()
            .with_pattern(AccessPattern::RandomWord)
            .with_latency_budget_ns(budget);
        let budgeted = a.plan_request(&request).unwrap();
        assert!(
            budgeted.voltage >= reference,
            "budgeted {budgeted:?} vs unconstrained {unconstrained:?}"
        );
        assert!(budgeted.voltage > unconstrained.voltage);
        assert!(budgeted.access_latency_ns <= budget);
        // An impossible budget (below nominal latency) finds nothing.
        let impossible = a.plan_request(&request.with_latency_budget_ns(1.0));
        assert!(impossible.is_none());
    }

    #[test]
    fn bandwidth_floor_raises_the_planned_voltage() {
        let a = analysis();
        let unconstrained = a.plan_fraction(0.25, Ratio(0.01)).unwrap().unwrap();
        let reference = unconstrained.voltage + Millivolts(40);
        let floor = a.delivered_gbps(reference, AccessPattern::SequentialStream);
        let request = a
            .request_for_fraction(0.25, Ratio(0.01))
            .unwrap()
            .with_min_delivered_gbps(floor);
        let floored = a.plan_request(&request).unwrap();
        assert!(
            floored.voltage >= reference,
            "floored {floored:?} vs unconstrained {unconstrained:?}"
        );
        assert!(floored.delivered_gbps >= floor);
    }

    #[test]
    fn stretch_free_timing_reproduces_the_3_factor_planner() {
        let a = analysis();
        let blind = a
            .clone()
            .with_timing(a.timing_at(Millivolts(1200)), TimingStretchModel::none());
        // With no stretch, even a tight budget changes nothing: every
        // voltage delivers nominal bandwidth and latency.
        let request = blind
            .request_for_fraction(0.5, Ratio(1e-6))
            .unwrap()
            .with_pattern(AccessPattern::RandomWord)
            .with_latency_budget_ns(31.0);
        let budgeted = blind.plan_request(&request).unwrap();
        let unconstrained = blind.plan_fraction(0.5, Ratio(1e-6)).unwrap().unwrap();
        assert_eq!(budgeted.voltage, unconstrained.voltage);
    }
}
