//! Integration tests of the crash-aware resilient sweep runtime: a sweep
//! killed between any two voltage points and resumed from its checkpoint
//! must produce a report bit-identical to the uninterrupted run, transient
//! crashes must be retried with backoff, and port failures must quarantine
//! the port with an explicit record instead of sinking the campaign.

use hbm_undervolt_suite::device::TransientCrashModel;
use hbm_undervolt_suite::traffic::DataPattern;
use hbm_undervolt_suite::undervolt::{
    ExperimentError, Platform, ReliabilityConfig, RetryPolicy, SweepCheckpoint, SweepConfig,
    SweepSupervisor, TestClock, TestScope, VoltageSweep, CHECKPOINT_VERSION,
};
use hbm_units::Millivolts;
use proptest::prelude::*;

/// A sweep that crosses the crash cliff (810 mV floor) in a few points.
fn cliff_config() -> ReliabilityConfig {
    let mut config = ReliabilityConfig::quick();
    config.sweep = VoltageSweep::new(Millivolts(850), Millivolts(790), Millivolts(10)).unwrap();
    config.batch_size = 1;
    config.words_per_pc = Some(16);
    config.patterns = vec![DataPattern::AllOnes];
    config
}

fn temp_path(stem: &str) -> String {
    std::env::temp_dir()
        .join(format!("hbm-resilience-{stem}-{}.json", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

#[test]
fn kill_at_every_voltage_point_then_resume_is_bit_identical() {
    let config = cliff_config();
    let points = config.sweep.len();

    let reference = SweepConfig::from_reliability(config.clone())
        .seed(7)
        .run()
        .unwrap();

    for kill_after in 1..points {
        let path = temp_path(&format!("kill{kill_after}"));
        let _ = std::fs::remove_file(&path);

        let supervisor = SweepSupervisor::new(
            SweepConfig::from_reliability(config.clone())
                .build_tester()
                .unwrap(),
        )
        .checkpoint(&path)
        .resume(true);

        // "Kill" the process after `kill_after` checkpointed points.
        let mut victim = Platform::builder().seed(7).build();
        let err = supervisor
            .clone()
            .abort_after(kill_after)
            .run(&mut victim)
            .unwrap_err();
        assert_eq!(
            err,
            ExperimentError::Interrupted {
                completed_points: kill_after
            }
        );

        // A fresh process with a fresh platform resumes from the file.
        let mut resumer = Platform::builder().seed(7).build();
        let resumed = supervisor.run(&mut resumer).unwrap();
        assert_eq!(resumed.resumed_points, kill_after);
        assert_eq!(
            resumed, reference,
            "kill after point {kill_after} must resume bit-identically"
        );

        let _ = std::fs::remove_file(&path);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The kill/resume identity holds for any specimen seed and any kill
    /// point, not just the defaults the deterministic test uses.
    #[test]
    fn resume_is_bit_identical_for_any_seed_and_kill_point(
        seed in 0u64..1024,
        kill_after in 1usize..4,
    ) {
        let mut config = ReliabilityConfig::quick();
        config.sweep =
            VoltageSweep::new(Millivolts(840), Millivolts(800), Millivolts(10)).unwrap();
        config.batch_size = 1;
        config.words_per_pc = Some(8);
        config.patterns = vec![DataPattern::AllZeros];

        let reference = SweepConfig::from_reliability(config.clone())
            .seed(seed)
            .run()
            .unwrap();

        let path = temp_path(&format!("prop-{seed}-{kill_after}"));
        let _ = std::fs::remove_file(&path);
        let base = SweepConfig::from_reliability(config)
            .seed(seed)
            .checkpoint(&path)
            .resume(true);

        let err = base
            .clone()
            .build_supervisor()
            .unwrap()
            .abort_after(kill_after)
            .run(&mut base.build_platform())
            .unwrap_err();
        prop_assert!(matches!(err, ExperimentError::Interrupted { .. }));

        let resumed = base.run().unwrap();
        let _ = std::fs::remove_file(&path);
        prop_assert_eq!(resumed, reference);
    }
}

#[test]
fn transient_crashes_are_retried_and_do_not_break_resume_identity() {
    // Transient crashes fire deterministically per (seed, voltage, attempt),
    // so even a flaky campaign resumes bit-identically: completed points are
    // never re-run, and the in-flight point restarts its attempt sequence
    // exactly like the uninterrupted run's first visit.
    let transient = TransientCrashModel::new(0.4, Millivolts(40));
    let campaign = |checkpoint: Option<&str>, resume: bool| {
        let mut config = SweepConfig::from_reliability(cliff_config())
            .seed(11)
            .transient_crashes(transient)
            .retry_policy(RetryPolicy {
                max_retries: 2,
                base_delay_ms: 1,
                max_delay_ms: 4,
            })
            .resume(resume);
        if let Some(path) = checkpoint {
            config = config.checkpoint(path);
        }
        config
    };

    let reference = campaign(None, false).run().unwrap();

    let path = temp_path("transient");
    let _ = std::fs::remove_file(&path);
    let interrupted = campaign(Some(&path), true);
    let err = interrupted
        .clone()
        .build_supervisor()
        .unwrap()
        .abort_after(2)
        .run(&mut interrupted.build_platform())
        .unwrap_err();
    assert!(matches!(err, ExperimentError::Interrupted { .. }));

    let resumed = interrupted.run().unwrap();
    let _ = std::fs::remove_file(&path);
    assert_eq!(resumed, reference);
}

#[test]
fn quarantined_port_yields_explicit_records_and_survives_resume() {
    let mut config = cliff_config();
    config.scope = TestScope::Ports(vec![0, 1, 2]);
    let build_platform = || {
        let mut p = Platform::builder().seed(7).build();
        p.enable_ports(2); // port 2 is broken for the whole campaign
        p
    };

    let supervisor = SweepSupervisor::new(
        SweepConfig::from_reliability(config.clone())
            .build_tester()
            .unwrap(),
    );
    let reference = supervisor.run(&mut build_platform()).unwrap();
    assert_eq!(reference.quarantined.len(), 1);
    assert_eq!(reference.quarantined[0].port, 2);
    assert!(reference.completed_points().count() > 0);
    for point in reference.completed_points().filter(|p| !p.crashed) {
        assert_eq!(point.outcomes[0].per_port.len(), 2, "port 2 excluded");
    }

    // The quarantine record survives a kill/resume round trip.
    let path = temp_path("quarantine");
    let _ = std::fs::remove_file(&path);
    let checkpointed = supervisor.clone().checkpoint(&path).resume(true);
    let err = checkpointed
        .clone()
        .abort_after(1)
        .run(&mut build_platform())
        .unwrap_err();
    assert!(matches!(err, ExperimentError::Interrupted { .. }));
    let resumed = checkpointed.run(&mut build_platform()).unwrap();
    let _ = std::fs::remove_file(&path);
    assert_eq!(resumed, reference);
    assert_eq!(resumed.quarantined.len(), 1);
}

#[test]
fn checkpoint_file_is_versioned_json_matching_the_report() {
    let path = temp_path("roundtrip");
    let _ = std::fs::remove_file(&path);
    let config = SweepConfig::from_reliability(cliff_config())
        .seed(7)
        .checkpoint(&path);
    let report = config.run().unwrap();

    let text = std::fs::read_to_string(&path).unwrap();
    let checkpoint: SweepCheckpoint = serde_json::from_str(&text).unwrap();
    let _ = std::fs::remove_file(&path);

    assert_eq!(checkpoint.version, CHECKPOINT_VERSION);
    assert_eq!(checkpoint.experiment, "supervised-sweep");
    assert_eq!(checkpoint.seed, 7);
    assert_eq!(checkpoint.points, report.points);
    assert_eq!(checkpoint.quarantined, report.quarantined);
}

#[test]
fn hopeless_transient_point_is_skipped_after_the_backoff_schedule() {
    // probability 1.0 inside the window: 840 mV can never complete. The
    // supervisor must walk the backoff schedule on a mocked clock (no real
    // sleeps) and record the point as skipped rather than fail the run.
    let mut config = cliff_config();
    config.sweep = VoltageSweep::new(Millivolts(840), Millivolts(840), Millivolts(10)).unwrap();
    let sweep_config = SweepConfig::from_reliability(config)
        .seed(7)
        .transient_crashes(TransientCrashModel::new(1.0, Millivolts(50)))
        .retry_policy(RetryPolicy {
            max_retries: 3,
            base_delay_ms: 10,
            max_delay_ms: 25,
        });

    let mut clock = TestClock::new();
    let mut platform = sweep_config.build_platform();
    let report = sweep_config
        .build_supervisor()
        .unwrap()
        .run_with_clock(&mut platform, &mut clock)
        .unwrap();

    assert_eq!(clock.sleeps, [10, 20, 25], "bounded exponential backoff");
    assert_eq!(report.completed_points().count(), 0);
    let (voltage, reason) = report.skipped_points().next().unwrap();
    assert_eq!(voltage, Millivolts(840));
    assert!(reason.contains("4 attempt(s)"), "reason: {reason}");
    assert!(!platform.is_crashed(), "supervisor must leave it recovered");
}
