//! Criterion bench for Algorithm 1's kernel: one write/read-back batch over
//! one pseudo channel at representative voltages.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hbm_device::PcIndex;
use hbm_traffic::DataPattern;
use hbm_undervolt::{
    ExecutionMode, FaultFieldMode, KernelBackend, Platform, ReliabilityConfig, ReliabilityTester,
    TestScope, VoltageSweep,
};
use hbm_units::Millivolts;

fn bench_reliability(c: &mut Criterion) {
    let words = 2048u64;
    let mut group = c.benchmark_group("reliability_kernel");
    group.throughput(Throughput::Elements(words * 2)); // write + read-check
    for mv in [990u32, 950, 900, 850, 820] {
        group.bench_with_input(BenchmarkId::from_parameter(mv), &mv, |b, &mv| {
            let config = ReliabilityConfig {
                sweep: VoltageSweep::new(Millivolts(mv), Millivolts(mv), Millivolts(10))
                    .expect("single point"),
                batch_size: 1,
                patterns: vec![DataPattern::AllOnes],
                scope: TestScope::SinglePc(PcIndex::new(0).expect("valid pc")),
                words_per_pc: Some(words),
                sample_words: None,
                mode: ExecutionMode::CachedMasks,
                fault_field: FaultFieldMode::PerVoltage,
                kernel: KernelBackend::Auto,
                carry_forward: true,
            };
            let tester = ReliabilityTester::new(config).expect("config valid");
            let mut platform = Platform::builder().seed(7).build();
            b.iter(|| tester.run(&mut platform).expect("reliability run"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reliability);
criterion_main!(benches);
