//! The power-measurement experiment (the paper's Fig. 2, and via
//! [`hbm_power::PowerAnalysis`], Fig. 3).
//!
//! The study measures HBM power at bandwidth utilization steps of 25 %
//! (0, 8, 16, 24, 32 enabled AXI ports) while underscaling the supply from
//! 1.20 V, and normalizes every measurement to the power at 1.20 V with
//! maximum utilization (310 GB/s).

use hbm_power::{AcfSample, PowerAnalysis};
use hbm_traffic::MacroProgram;
use hbm_units::{Millivolts, Ratio, Watts};
use serde::{Deserialize, Serialize};

use crate::engine;
use crate::error::ExperimentError;
use crate::platform::Platform;
use crate::sweep::VoltageSweep;
use crate::telemetry::{Telemetry, TelemetryEvent};

/// One measured point of the power sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerPoint {
    /// Supply voltage.
    pub voltage: Millivolts,
    /// Enabled AXI ports during the measurement.
    pub enabled_ports: usize,
    /// Bandwidth utilization implied by the ports.
    pub utilization: Ratio,
    /// Measured power.
    pub power: Watts,
    /// Power normalized to the 1.20 V / 100 % reference.
    pub normalized: Ratio,
}

/// The power-sweep experiment.
///
/// # Examples
///
/// ```
/// use hbm_undervolt::{Platform, PowerSweep};
/// use hbm_units::Millivolts;
///
/// # fn main() -> Result<(), hbm_undervolt::ExperimentError> {
/// let mut platform = Platform::builder().seed(7).build();
/// let report = PowerSweep::date21().run(&mut platform)?;
///
/// // Fig. 2's headline: ≈1.5× at the guardband edge, ≈2.3× at 0.85 V.
/// let s98 = report.saving(Millivolts(980), 32).unwrap();
/// let s85 = report.saving(Millivolts(850), 32).unwrap();
/// assert!((s98 - 1.5).abs() < 0.05, "saving {s98}");
/// assert!((s85 - 2.3).abs() < 0.15, "saving {s85}");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PowerSweep {
    sweep: VoltageSweep,
    port_steps: Vec<usize>,
    /// Words of streaming traffic run per enabled port before each
    /// measurement (keeps the TGs honest; 0 skips traffic).
    warmup_words: u64,
}

impl PowerSweep {
    /// The study's configuration: 1.20 V down to 0.85 V in 10 mV steps, at
    /// 0 / 25 / 50 / 75 / 100 % utilization.
    #[must_use]
    pub fn date21() -> Self {
        PowerSweep {
            sweep: VoltageSweep::new(Millivolts(1200), Millivolts(850), Millivolts(10))
                .expect("static sweep valid"),
            port_steps: vec![0, 8, 16, 24, 32],
            warmup_words: 64,
        }
    }

    /// Custom configuration.
    ///
    /// # Errors
    ///
    /// Configuration errors if `port_steps` is empty or exceeds 32 ports.
    pub fn new(
        sweep: VoltageSweep,
        port_steps: Vec<usize>,
        warmup_words: u64,
    ) -> Result<Self, ExperimentError> {
        if port_steps.is_empty() {
            return Err(ExperimentError::config("at least one port step required"));
        }
        if port_steps.iter().any(|&p| p > 32) {
            return Err(ExperimentError::config("port steps must be ≤ 32"));
        }
        Ok(PowerSweep {
            sweep,
            port_steps,
            warmup_words,
        })
    }

    /// Runs the experiment. The platform is left at the sweep's lowest
    /// voltage with the last port step enabled.
    ///
    /// # Errors
    ///
    /// PMBus/device errors; the sweep must stay at or above V_critical.
    pub fn run(&self, platform: &mut Platform) -> Result<PowerSweepReport, ExperimentError> {
        self.run_observed(platform, Telemetry::disabled())
    }

    /// [`PowerSweep::run`] with telemetry: emits the sweep lifecycle and one
    /// [`PowerMeasured`](TelemetryEvent::PowerMeasured) event per point.
    ///
    /// # Errors
    ///
    /// See [`PowerSweep::run`].
    pub fn run_observed(
        &self,
        platform: &mut Platform,
        telemetry: &Telemetry,
    ) -> Result<PowerSweepReport, ExperimentError> {
        // Reference: nominal voltage, all ports.
        platform.set_voltage(Millivolts(1200))?;
        platform.enable_ports(32);
        let reference = platform.measure_power(Ratio::ONE)?.power;
        if reference.as_f64() <= 0.0 {
            return Err(ExperimentError::config(
                "reference power measurement is non-positive",
            ));
        }
        telemetry.emit(TelemetryEvent::SweepStarted {
            experiment: "power-sweep".to_owned(),
            seed: platform.seed(),
            points: (self.port_steps.len() * self.sweep.len()) as u64,
            from_mv: self.sweep.from().as_u32(),
            to_mv: self.sweep.down_to().as_u32(),
            // Power sweeps measure through live traffic (`observe`), not a
            // mask kernel; the scalar token records that no backend choice
            // applies.
            kernel: "scalar".to_owned(),
        });

        let mut points = Vec::with_capacity(self.port_steps.len() * self.sweep.len());
        for &ports in &self.port_steps {
            platform.enable_ports(ports);
            let utilization = platform.utilization();
            for voltage in self.sweep.iter() {
                platform.set_voltage(voltage)?;
                if platform.is_crashed() {
                    return Err(ExperimentError::from(hbm_device::DeviceError::Crashed));
                }
                self.warm_up(platform, ports, telemetry)?;
                let sample = platform.measure_power(utilization)?;
                telemetry.emit(TelemetryEvent::PowerMeasured {
                    voltage_mv: voltage.as_u32(),
                    ports: ports as u64,
                    watts: sample.power.as_f64(),
                });
                points.push(PowerPoint {
                    voltage,
                    enabled_ports: ports,
                    utilization,
                    power: sample.power,
                    normalized: Ratio(sample.power / reference),
                });
            }
        }
        telemetry.emit(TelemetryEvent::SweepCompleted {
            completed: points.len() as u64,
            skipped: 0,
            quarantined: 0,
        });
        Ok(PowerSweepReport {
            reference,
            port_steps: self.port_steps.clone(),
            voltages: self.sweep.iter().collect(),
            points,
        })
    }

    fn warm_up(
        &self,
        platform: &mut Platform,
        ports: usize,
        telemetry: &Telemetry,
    ) -> Result<(), ExperimentError> {
        if self.warmup_words == 0 {
            return Ok(());
        }
        let program = MacroProgram::streaming_reads(0..self.warmup_words, 1);
        let ids: Vec<_> = platform.device().ports().enabled_ids().collect();
        debug_assert_eq!(ids.len(), ports);
        let jobs: Vec<_> = ids
            .into_iter()
            .map(|port| (port, program.clone()))
            .collect();
        engine::run_jobs(platform, &jobs, telemetry)?;
        Ok(())
    }
}

/// The power sweep's results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerSweepReport {
    /// The 1.20 V / 100 % reference power all points normalize to.
    pub reference: Watts,
    /// The swept port steps.
    pub port_steps: Vec<usize>,
    /// The swept voltages, descending.
    pub voltages: Vec<Millivolts>,
    /// Every measured point (port-step major, voltage minor).
    pub points: Vec<PowerPoint>,
}

impl PowerSweepReport {
    /// The point at an exact `(voltage, ports)` pair.
    #[must_use]
    pub fn at(&self, voltage: Millivolts, ports: usize) -> Option<&PowerPoint> {
        self.points
            .iter()
            .find(|p| p.voltage == voltage && p.enabled_ports == ports)
    }

    /// The voltage series of one port step, descending voltage.
    #[must_use]
    pub fn series(&self, ports: usize) -> Vec<&PowerPoint> {
        self.points
            .iter()
            .filter(|p| p.enabled_ports == ports)
            .collect()
    }

    /// Power saving at `(voltage, ports)` relative to the same port count
    /// at 1.20 V.
    #[must_use]
    pub fn saving(&self, voltage: Millivolts, ports: usize) -> Option<f64> {
        let nominal = self.at(Millivolts(1200), ports)?;
        let point = self.at(voltage, ports)?;
        Some(nominal.power / point.power)
    }

    /// Idle power as a fraction of full-load power at a voltage (the paper:
    /// ≈⅓).
    #[must_use]
    pub fn idle_fraction(&self, voltage: Millivolts) -> Option<f64> {
        let idle = self.at(voltage, 0)?;
        let full = self.at(voltage, 32)?;
        Some(idle.power / full.power)
    }

    /// The effective `α·C_L·f` series of one port step (the paper's
    /// Fig. 3), normalized within the series.
    #[must_use]
    pub fn acf_series(&self, ports: usize) -> Vec<AcfSample> {
        let samples: Vec<(Millivolts, Watts)> = self
            .series(ports)
            .into_iter()
            .map(|p| (p.voltage, p.power))
            .collect();
        PowerAnalysis::extract_acf(&samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_sweep() -> PowerSweep {
        PowerSweep::new(
            VoltageSweep::new(Millivolts(1200), Millivolts(850), Millivolts(50)).unwrap(),
            vec![0, 16, 32],
            8,
        )
        .unwrap()
    }

    fn platform() -> Platform {
        Platform::builder().seed(7).build()
    }

    #[test]
    fn invalid_configs_rejected() {
        let sweep = VoltageSweep::date21();
        assert!(PowerSweep::new(sweep, vec![], 0).is_err());
        assert!(PowerSweep::new(sweep, vec![40], 0).is_err());
    }

    #[test]
    fn report_is_complete_and_normalized() {
        let report = small_sweep().run(&mut platform()).unwrap();
        assert_eq!(report.points.len(), 3 * 8);
        // The reference point normalizes to ≈1 (measurement noise only).
        let reference = report.at(Millivolts(1200), 32).unwrap();
        assert!((reference.normalized.as_f64() - 1.0).abs() < 0.02);
        // Idle at nominal is ≈⅓ of full load.
        let idle_frac = report.idle_fraction(Millivolts(1200)).unwrap();
        assert!((idle_frac - 1.0 / 3.0).abs() < 0.03, "idle {idle_frac}");
    }

    #[test]
    fn savings_match_paper_headlines() {
        let report = small_sweep().run(&mut platform()).unwrap();
        for &ports in &[0usize, 16, 32] {
            let s = report.saving(Millivolts(1000), ports).unwrap();
            assert!((1.40..1.52).contains(&s), "ports {ports}: 1.0 V saving {s}");
            let s = report.saving(Millivolts(850), ports).unwrap();
            assert!((2.1..2.5).contains(&s), "ports {ports}: 0.85 V saving {s}");
        }
    }

    #[test]
    fn power_ordering_across_utilization() {
        let report = small_sweep().run(&mut platform()).unwrap();
        for &v in &report.voltages {
            let p0 = report.at(v, 0).unwrap().power;
            let p16 = report.at(v, 16).unwrap().power;
            let p32 = report.at(v, 32).unwrap().power;
            assert!(p0 < p16 && p16 < p32, "ordering at {v}");
        }
    }

    #[test]
    fn acf_series_flat_in_guardband_dropping_below() {
        let report = small_sweep().run(&mut platform()).unwrap();
        let series = report.acf_series(32);
        // Within the guardband αC_Lf stays within a few percent of nominal.
        let dev = PowerAnalysis::max_deviation_above(&series, Millivolts(980));
        assert!(dev < 0.03, "guardband deviation {dev}");
        // At 0.85 V the stuck-bit drop shows (paper: ≈14 %).
        let at_850 = PowerAnalysis::normalized_at(&series, Millivolts(850)).unwrap();
        let drop = 1.0 - at_850.as_f64();
        assert!((0.08..0.20).contains(&drop), "drop at 0.85 V: {drop}");
    }

    #[test]
    fn saving_independent_of_utilization_in_guardband() {
        // The paper stresses that the savings factor does not depend on the
        // bandwidth utilization.
        let report = small_sweep().run(&mut platform()).unwrap();
        let s0 = report.saving(Millivolts(1000), 0).unwrap();
        let s32 = report.saving(Millivolts(1000), 32).unwrap();
        assert!((s0 - s32).abs() < 0.05, "{s0} vs {s32}");
    }
}
