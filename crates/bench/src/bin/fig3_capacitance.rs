//! Regenerates Fig. 3: normalized effective α·C_L·f vs supply voltage per
//! bandwidth utilization (flat within 3 % above 0.98 V, −14 % at 0.85 V).

fn main() {
    let seed = seed_from_args();
    let (report, rendered) = hbm_bench::fig3(seed).expect("fig3 pipeline");
    println!("Fig. 3 — normalized effective a*C_L*f (seed {seed})\n");
    print!("{rendered}");
    let acf = report.acf_series(32);
    let dev = hbm_power::PowerAnalysis::max_deviation_above(&acf, hbm_units::Millivolts(980));
    let at850 = hbm_power::PowerAnalysis::normalized_at(&acf, hbm_units::Millivolts(850))
        .expect("0.85 V swept");
    println!(
        "\nguardband flatness: max deviation {:.2}% (paper: <=3%)",
        dev * 100.0
    );
    println!(
        "drop at 0.85 V: {:.1}% (paper: 14%)",
        (1.0 - at850.as_f64()) * 100.0
    );
}

fn seed_from_args() -> u64 {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(hbm_bench::DEFAULT_SEED)
}
