//! Rendering experiment results as the tables/series the paper reports,
//! plus CSV export.
//!
//! Every report type implements [`Render`]: `to_text` gives the table the
//! corresponding paper figure shows, `to_csv` a machine-readable export.
//! Heterogeneous campaigns can render through
//! `Box<dyn Render>` (see [`crate::DynExperiment`]).

use std::fmt::Write as _;

use hbm_power::PowerAnalysis;
use hbm_units::Millivolts;
use serde::{Deserialize, Serialize};

use crate::characterization::{PcFaultTable, StackFractionPoint};
use crate::error::ExperimentError;
use crate::governor::GovernorScenarioReport;
use crate::guardband::GuardbandReport;
use crate::platform::Platform;
use crate::power_test::PowerSweepReport;
use crate::reliability::ReliabilityReport;
use crate::supervisor::{PointOutcome, SupervisedReport};
use crate::trade_off::{SurfacePoint, TradeOffReport, UsablePcCurve};

/// A report that can render itself both as the paper's plain-text table
/// and as CSV.
pub trait Render {
    /// The plain-text table (what the `fig*` binaries print).
    fn to_text(&self) -> String;

    /// A machine-readable CSV export of the same data.
    fn to_csv(&self) -> String;
}

/// The paper's headline numbers, in one struct.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeadlineMetrics {
    /// Guardband width as a percentage of nominal (paper: "19 %").
    pub guardband_percent: f64,
    /// Power saving at the guardband edge, 0.98 V (paper: 1.5×).
    pub saving_at_guardband: f64,
    /// Power saving at 0.85 V including stuck-bit effects (paper: 2.3×).
    pub saving_at_850mv: f64,
    /// Idle power as a fraction of full-load power (paper: ≈⅓).
    pub idle_fraction: f64,
    /// Effective-capacitance drop at 0.85 V (paper: 14 %).
    pub acf_drop_at_850mv: f64,
}

/// Computes the headline metrics from a finished power sweep and guardband
/// report.
///
/// # Errors
///
/// Returns a configuration error if the sweep lacks the needed voltages
/// (1.20 V, 0.98 V, 0.85 V at 0 and 32 ports).
pub fn headline_metrics(
    power: &PowerSweepReport,
    guardband: &GuardbandReport,
) -> Result<HeadlineMetrics, ExperimentError> {
    let need = |v: Millivolts, ports: usize| {
        power
            .at(v, ports)
            .ok_or_else(|| ExperimentError::config(format!("sweep lacks {v} @ {ports} ports")))
    };
    let saving_at_guardband = power
        .saving(guardband.v_min, 32)
        .ok_or_else(|| ExperimentError::config("sweep lacks the guardband voltage"))?;
    let saving_at_850mv = power
        .saving(Millivolts(850), 32)
        .ok_or_else(|| ExperimentError::config("sweep lacks 0.85 V"))?;
    let idle = need(Millivolts(1200), 0)?;
    let full = need(Millivolts(1200), 32)?;
    let acf = power.acf_series(32);
    let at_850 = PowerAnalysis::normalized_at(&acf, Millivolts(850))
        .ok_or_else(|| ExperimentError::config("acf series lacks 0.85 V"))?;
    Ok(HeadlineMetrics {
        guardband_percent: guardband.guardband_fraction().as_percent(),
        saving_at_guardband,
        saving_at_850mv,
        idle_fraction: idle.power / full.power,
        acf_drop_at_850mv: 1.0 - at_850.as_f64(),
    })
}

impl std::fmt::Display for HeadlineMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "guardband:            {:.1}% of nominal",
            self.guardband_percent
        )?;
        writeln!(f, "saving at guardband:  {:.2}x", self.saving_at_guardband)?;
        writeln!(f, "saving at 0.85 V:     {:.2}x", self.saving_at_850mv)?;
        writeln!(f, "idle / full-load:     {:.2}", self.idle_fraction)?;
        write!(
            f,
            "aClf drop at 0.85 V:  {:.1}%",
            self.acf_drop_at_850mv * 100.0
        )
    }
}

/// Renders the Fig. 2 table: normalized power per voltage (rows, 50 mV
/// display steps as in the paper) and per utilization step (columns).
fn render_power_table(report: &PowerSweepReport) -> String {
    let mut out = String::new();
    write!(out, "{:>8}", "V").expect("write to string");
    for &ports in &report.port_steps {
        write!(out, "{:>9}", format!("{}%", ports * 100 / 32)).expect("write to string");
    }
    out.push('\n');
    for &v in &report.voltages {
        if v.as_u32() % 50 != 0 {
            continue; // the paper displays 50 mV steps for visibility
        }
        write!(
            out,
            "{:>8}",
            format!("{:.2}", f64::from(v.as_u32()) / 1000.0)
        )
        .expect("write to string");
        for &ports in &report.port_steps {
            match report.at(v, ports) {
                Some(p) => write!(out, "{:>9.3}", p.normalized.as_f64()),
                None => write!(out, "{:>9}", "-"),
            }
            .expect("write to string");
        }
        out.push('\n');
    }
    out
}

/// Renders the Fig. 3 table: normalized `α·C_L·f` per voltage per
/// utilization step.
fn render_acf_table(report: &PowerSweepReport) -> String {
    let mut out = String::new();
    write!(out, "{:>8}", "V").expect("write to string");
    for &ports in &report.port_steps {
        write!(out, "{:>9}", format!("{}%", ports * 100 / 32)).expect("write to string");
    }
    out.push('\n');
    let series: Vec<_> = report
        .port_steps
        .iter()
        .map(|&p| (p, report.acf_series(p)))
        .collect();
    for &v in &report.voltages {
        if v.as_u32() % 50 != 0 {
            continue;
        }
        write!(
            out,
            "{:>8}",
            format!("{:.2}", f64::from(v.as_u32()) / 1000.0)
        )
        .expect("write to string");
        for (_, acf) in &series {
            match PowerAnalysis::normalized_at(acf, v) {
                Some(r) => write!(out, "{:>9.3}", r.as_f64()),
                None => write!(out, "{:>9}", "-"),
            }
            .expect("write to string");
        }
        out.push('\n');
    }
    out
}

/// Renders the Fig. 4 series: per-stack faulty fraction per voltage.
fn render_stack_fractions(series: &[StackFractionPoint]) -> String {
    let mut out = String::from("       V     HBM0     HBM1\n");
    for point in series {
        writeln!(
            out,
            "{:>8} {:>8.4} {:>8.4}",
            format!("{:.2}", f64::from(point.voltage.as_u32()) / 1000.0),
            point.hbm0.as_f64(),
            point.hbm1.as_f64()
        )
        .expect("write to string");
    }
    out
}

/// Renders the Fig. 5 grid: ports as columns, voltages as rows, cells as
/// the paper formats them ("NF", "0" for <1 %, else whole percent).
fn render_pc_table(table: &PcFaultTable) -> String {
    let mut out = String::new();
    writeln!(out, "pattern: {}", table.pattern).expect("write to string");
    write!(out, "{:>6}", "V").expect("write to string");
    for row in &table.rows {
        write!(out, "{:>5}", format!("P{}", row.port)).expect("write to string");
    }
    out.push('\n');
    for (col, &v) in table.voltages.iter().enumerate() {
        write!(
            out,
            "{:>6}",
            format!("{:.2}", f64::from(v.as_u32()) / 1000.0)
        )
        .expect("write to string");
        for row in &table.rows {
            write!(out, "{:>5}", row.cells[col].display()).expect("write to string");
        }
        out.push('\n');
    }
    out
}

/// Renders the Fig. 6 family: usable PC count per voltage per tolerance.
fn render_usable_pc_curves(curves: &[UsablePcCurve]) -> String {
    let mut out = String::new();
    write!(out, "{:>8}", "V").expect("write to string");
    for curve in curves {
        write!(
            out,
            "{:>12}",
            format!("≤{}", curve.tolerable.display_percent())
        )
        .expect("write to string");
    }
    out.push('\n');
    if let Some(first) = curves.first() {
        for (i, &(v, _)) in first.points.iter().enumerate() {
            write!(
                out,
                "{:>8}",
                format!("{:.2}", f64::from(v.as_u32()) / 1000.0)
            )
            .expect("write to string");
            for curve in curves {
                write!(out, "{:>12}", curve.points[i].1).expect("write to string");
            }
            out.push('\n');
        }
    }
    out
}

/// The Fig. 3 view of a power sweep: the same report rendered as the
/// extracted `α·C_L·f` table instead of the Fig. 2 power table.
#[derive(Debug, Clone, Copy)]
pub struct AcfTable<'a>(pub &'a PowerSweepReport);

impl Render for PowerSweepReport {
    fn to_text(&self) -> String {
        render_power_table(self)
    }

    fn to_csv(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    p.voltage.as_u32().to_string(),
                    p.enabled_ports.to_string(),
                    format!("{:.6}", p.power.as_f64()),
                    format!("{:.6}", p.normalized.as_f64()),
                ]
            })
            .collect();
        to_csv(&["voltage_mv", "ports", "power_w", "normalized"], &rows)
    }
}

impl Render for AcfTable<'_> {
    fn to_text(&self) -> String {
        render_acf_table(self.0)
    }

    fn to_csv(&self) -> String {
        let mut rows = Vec::new();
        for &ports in &self.0.port_steps {
            for sample in self.0.acf_series(ports) {
                rows.push(vec![
                    sample.voltage.as_u32().to_string(),
                    ports.to_string(),
                    format!("{:.6}", sample.normalized.as_f64()),
                ]);
            }
        }
        to_csv(&["voltage_mv", "ports", "normalized_acf"], &rows)
    }
}

impl Render for [StackFractionPoint] {
    fn to_text(&self) -> String {
        render_stack_fractions(self)
    }

    fn to_csv(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .iter()
            .map(|p| {
                vec![
                    p.voltage.as_u32().to_string(),
                    format!("{:.6}", p.hbm0.as_f64()),
                    format!("{:.6}", p.hbm1.as_f64()),
                ]
            })
            .collect();
        to_csv(&["voltage_mv", "hbm0_fraction", "hbm1_fraction"], &rows)
    }
}

impl Render for Vec<StackFractionPoint> {
    fn to_text(&self) -> String {
        self.as_slice().to_text()
    }

    fn to_csv(&self) -> String {
        self.as_slice().to_csv()
    }
}

impl Render for PcFaultTable {
    fn to_text(&self) -> String {
        render_pc_table(self)
    }

    fn to_csv(&self) -> String {
        let mut rows = Vec::new();
        for (col, &v) in self.voltages.iter().enumerate() {
            for row in &self.rows {
                rows.push(vec![
                    self.pattern.to_string(),
                    v.as_u32().to_string(),
                    row.port.to_string(),
                    row.cells[col].display(),
                ]);
            }
        }
        to_csv(&["pattern", "voltage_mv", "port", "cell"], &rows)
    }
}

impl Render for [UsablePcCurve] {
    fn to_text(&self) -> String {
        render_usable_pc_curves(self)
    }

    fn to_csv(&self) -> String {
        let mut rows = Vec::new();
        for curve in self {
            for &(v, n) in &curve.points {
                rows.push(vec![
                    format!("{:e}", curve.tolerable.as_f64()),
                    v.as_u32().to_string(),
                    n.to_string(),
                ]);
            }
        }
        to_csv(&["tolerable", "voltage_mv", "usable_pcs"], &rows)
    }
}

impl Render for Vec<UsablePcCurve> {
    fn to_text(&self) -> String {
        self.as_slice().to_text()
    }

    fn to_csv(&self) -> String {
        self.as_slice().to_csv()
    }
}

impl Render for TradeOffReport {
    fn to_text(&self) -> String {
        let mut out = self.curves.to_text();
        if !self.surface.is_empty() {
            writeln!(
                out,
                "{:>8}{:>6}{:>10}{:>9}{:>10}{:>10}{:>10}{:>9}{:>9}",
                "V",
                "PCs",
                "cap GiB",
                "saving",
                "seq GB/s",
                "strd GB/s",
                "rand GB/s",
                "rand ns",
                "pJ/bit"
            )
            .expect("write to string");
            for p in &self.surface {
                writeln!(
                    out,
                    "{:>8}{:>6}{:>10.2}{:>8.2}x{:>10.1}{:>10.1}{:>10.1}{:>9.1}{:>9.2}",
                    p.voltage.to_string(),
                    p.usable_pcs,
                    p.capacity_bytes as f64 / f64::from(1u32 << 30),
                    p.saving_factor,
                    p.sequential_gbps,
                    p.strided_gbps,
                    p.random_gbps,
                    p.random_latency_ns,
                    p.sequential_pj_per_bit,
                )
                .expect("write to string");
            }
        }
        for plan in &self.plans {
            match &plan.point {
                Some(p) => writeln!(
                    out,
                    "plan {:>5.0}% capacity, tol {:>8}: {} ({} PCs, {:.2}x saving)",
                    plan.fraction * 100.0,
                    plan.tolerable.display_percent(),
                    p.voltage,
                    p.usable_pcs.len(),
                    p.saving_factor
                ),
                None => writeln!(
                    out,
                    "plan {:>5.0}% capacity, tol {:>8}: unreachable",
                    plan.fraction * 100.0,
                    plan.tolerable.display_percent()
                ),
            }
            .expect("write to string");
        }
        out
    }

    fn to_csv(&self) -> String {
        // The curve family augmented with the four-factor surface columns:
        // the timing axis depends only on the voltage, so its values repeat
        // across the tolerance series of the same row voltage.
        let mut rows = Vec::new();
        for curve in &self.curves {
            for &(v, n) in &curve.points {
                let surface = self.surface.iter().find(|p| p.voltage == v);
                let timing_cell = |f: fn(&SurfacePoint) -> f64| {
                    surface.map_or_else(String::new, |p| format!("{:.3}", f(p)))
                };
                rows.push(vec![
                    format!("{:e}", curve.tolerable.as_f64()),
                    v.as_u32().to_string(),
                    n.to_string(),
                    timing_cell(|p| p.saving_factor),
                    timing_cell(|p| p.sequential_gbps),
                    timing_cell(|p| p.strided_gbps),
                    timing_cell(|p| p.random_gbps),
                    timing_cell(|p| p.random_latency_ns),
                    timing_cell(|p| p.sequential_pj_per_bit),
                ]);
            }
        }
        to_csv(
            &[
                "tolerable",
                "voltage_mv",
                "usable_pcs",
                "saving_factor",
                "sequential_gbps",
                "strided_gbps",
                "random_gbps",
                "random_latency_ns",
                "sequential_pj_per_bit",
            ],
            &rows,
        )
    }
}

impl Render for GovernorScenarioReport {
    fn to_text(&self) -> String {
        let mut out = String::from("closed-loop governor scenarios\n");
        for row in &self.rows {
            let trip = match (row.outcome.trip_reason, row.outcome.tripped_at) {
                (Some(reason), Some(v)) => format!("{} at {}", reason.as_str(), v),
                _ => "floor reached".to_owned(),
            };
            writeln!(
                out,
                "{:>12} ({:>10}): settled {}, lowest clean {}, {trip}, \
                 {} flip(s), {:.1} GB/s, {:.1} ns, {:.2}x saving",
                row.label,
                row.workload.as_token(),
                row.outcome.settled,
                row.outcome.lowest_clean,
                row.outcome.canary_flips,
                row.outcome.delivered_gbps,
                row.outcome.access_latency_ns,
                row.saving_factor,
            )
            .expect("write to string");
        }
        out
    }

    fn to_csv(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| {
                vec![
                    row.label.clone(),
                    row.workload.as_token().to_owned(),
                    row.outcome.settled.as_u32().to_string(),
                    row.outcome.lowest_clean.as_u32().to_string(),
                    row.outcome
                        .tripped_at
                        .map_or_else(String::new, |v| v.as_u32().to_string()),
                    row.outcome
                        .trip_reason
                        .map_or_else(String::new, |r| r.as_str().to_owned()),
                    row.outcome.canary_flips.to_string(),
                    format!("{:.3}", row.outcome.delivered_gbps),
                    format!("{:.3}", row.outcome.access_latency_ns),
                    format!("{:.4}", row.saving_factor),
                ]
            })
            .collect();
        to_csv(
            &[
                "scenario",
                "workload",
                "settled_mv",
                "lowest_clean_mv",
                "tripped_at_mv",
                "trip_reason",
                "canary_flips",
                "delivered_gbps",
                "access_latency_ns",
                "saving_factor",
            ],
            &rows,
        )
    }
}

impl Render for GuardbandReport {
    fn to_text(&self) -> String {
        format!(
            "v_nom:      {}\nv_min:      {}\nv_critical: {}\nguardband:  {} ({:.1}% of nominal)\n",
            self.v_nom,
            self.v_min,
            self.v_critical,
            self.guardband(),
            self.guardband_fraction().as_percent()
        )
    }

    fn to_csv(&self) -> String {
        to_csv(
            &[
                "v_nom_mv",
                "v_min_mv",
                "v_critical_mv",
                "guardband_mv",
                "guardband_percent",
            ],
            &[vec![
                self.v_nom.as_u32().to_string(),
                self.v_min.as_u32().to_string(),
                self.v_critical.as_u32().to_string(),
                self.guardband().as_u32().to_string(),
                format!("{:.2}", self.guardband_fraction().as_percent()),
            ]],
        )
    }
}

impl Render for ReliabilityReport {
    fn to_text(&self) -> String {
        let mut out = String::new();
        write!(out, "{:>8}", "V").expect("write to string");
        for pattern in &self.config.patterns {
            write!(out, "{:>14}", pattern.to_string()).expect("write to string");
        }
        write!(out, "{:>12}{:>12}", "words/s", "masks/s").expect("write to string");
        out.push('\n');
        for point in &self.points {
            write!(
                out,
                "{:>8}",
                format!("{:.2}", f64::from(point.voltage.as_u32()) / 1000.0)
            )
            .expect("write to string");
            if point.crashed {
                for _ in &self.config.patterns {
                    write!(out, "{:>14}", "crash").expect("write to string");
                }
                write!(out, "{:>12}{:>12}", "-", "-").expect("write to string");
            } else {
                for pattern in &self.config.patterns {
                    match point.outcome(*pattern) {
                        Some(o) => write!(out, "{:>14.1}", o.mean_fault_count),
                        None => write!(out, "{:>14}", "-"),
                    }
                    .expect("write to string");
                }
                write!(
                    out,
                    "{:>12}{:>12}",
                    rate_text(point.words_per_second),
                    rate_text(point.masks_per_second)
                )
                .expect("write to string");
            }
            out.push('\n');
        }
        out
    }

    fn to_csv(&self) -> String {
        let mut rows = Vec::new();
        for point in &self.points {
            if point.crashed {
                rows.push(vec![
                    point.voltage.as_u32().to_string(),
                    "1".to_owned(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                ]);
                continue;
            }
            for outcome in &point.outcomes {
                rows.push(vec![
                    point.voltage.as_u32().to_string(),
                    "0".to_owned(),
                    outcome.pattern.to_string(),
                    format!("{:.3}", outcome.mean_fault_count),
                    outcome.flips_1to0.to_string(),
                    outcome.flips_0to1.to_string(),
                    rate_csv(point.words_per_second),
                    rate_csv(point.masks_per_second),
                ]);
            }
        }
        to_csv(
            &[
                "voltage_mv",
                "crashed",
                "pattern",
                "mean_faults",
                "flips_1to0",
                "flips_0to1",
                "words_per_sec",
                "masks_per_sec",
            ],
            &rows,
        )
    }
}

impl Render for SupervisedReport {
    /// The reliability table for the completed points, followed by the
    /// resilience bookkeeping (skips and quarantines).
    fn to_text(&self) -> String {
        let mut out = self.to_reliability().to_text();
        for (voltage, reason) in self.skipped_points() {
            writeln!(
                out,
                "{:>8}  skipped: {reason}",
                format!("{:.2}", f64::from(voltage.as_u32()) / 1000.0)
            )
            .expect("write to string");
        }
        for q in &self.quarantined {
            writeln!(
                out,
                "quarantined port {} at {}: {}",
                q.port, q.voltage, q.reason
            )
            .expect("write to string");
        }
        out
    }

    fn to_csv(&self) -> String {
        let mut rows = Vec::new();
        for point in &self.points {
            match &point.outcome {
                PointOutcome::Completed(p) => {
                    let status = if p.crashed { "crashed" } else { "ok" };
                    for outcome in &p.outcomes {
                        rows.push(vec![
                            point.voltage.as_u32().to_string(),
                            status.to_owned(),
                            point.attempts.to_string(),
                            outcome.pattern.to_string(),
                            format!("{:.3}", outcome.mean_fault_count),
                            outcome.flips_1to0.to_string(),
                            outcome.flips_0to1.to_string(),
                            String::new(),
                        ]);
                    }
                    if p.outcomes.is_empty() {
                        rows.push(vec![
                            point.voltage.as_u32().to_string(),
                            status.to_owned(),
                            point.attempts.to_string(),
                            String::new(),
                            String::new(),
                            String::new(),
                            String::new(),
                            String::new(),
                        ]);
                    }
                }
                PointOutcome::Skipped { reason } => {
                    rows.push(vec![
                        point.voltage.as_u32().to_string(),
                        "skipped".to_owned(),
                        point.attempts.to_string(),
                        String::new(),
                        String::new(),
                        String::new(),
                        String::new(),
                        reason.clone(),
                    ]);
                }
            }
        }
        to_csv(
            &[
                "voltage_mv",
                "status",
                "attempts",
                "pattern",
                "mean_faults",
                "flips_1to0",
                "flips_0to1",
                "detail",
            ],
            &rows,
        )
    }
}

impl Render for HeadlineMetrics {
    fn to_text(&self) -> String {
        format!("{self}\n")
    }

    fn to_csv(&self) -> String {
        to_csv(
            &[
                "guardband_percent",
                "saving_at_guardband",
                "saving_at_850mv",
                "idle_fraction",
                "acf_drop_at_850mv",
            ],
            &[vec![
                format!("{:.2}", self.guardband_percent),
                format!("{:.3}", self.saving_at_guardband),
                format!("{:.3}", self.saving_at_850mv),
                format!("{:.3}", self.idle_fraction),
                format!("{:.3}", self.acf_drop_at_850mv),
            ]],
        )
    }
}

/// Serializes any experiment artefact to pretty JSON (for archival next to
/// the rendered tables).
///
/// # Errors
///
/// Returns a configuration error if serialization fails (non-finite floats
/// with a custom serializer, etc. — not expected for the workspace types).
pub fn to_json<T: Serialize>(value: &T) -> Result<String, ExperimentError> {
    serde_json::to_string_pretty(value)
        .map_err(|e| ExperimentError::config(format!("serialization failed: {e}")))
}

/// A measured rate for a plain-text table: `-` when absent.
fn rate_text(rate: Option<f64>) -> String {
    rate.map_or_else(|| "-".to_owned(), |r| format!("{r:.2e}"))
}

/// A measured rate for a CSV cell: blank when absent, so consumers see a
/// missing value rather than a fabricated `0.0`.
fn rate_csv(rate: Option<f64>) -> String {
    rate.map_or_else(String::new, |r| format!("{r:.3}"))
}

/// Appends one field, quoting per RFC 4180 when it contains a comma,
/// quote, or line break (inner quotes are doubled). Every CSV cell the
/// crate emits flows through here, so escaping lives in exactly one place.
fn push_csv_field(out: &mut String, field: &str) {
    if field.contains(['"', ',', '\n', '\r']) {
        out.push('"');
        for c in field.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
    } else {
        out.push_str(field);
    }
}

/// Appends one newline-terminated CSV record.
fn push_csv_row<'a>(out: &mut String, fields: impl IntoIterator<Item = &'a str>) {
    for (i, field) in fields.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_csv_field(out, field);
    }
    out.push('\n');
}

/// Writes a CSV from header + rows, quoting fields per RFC 4180 where
/// needed (commas, quotes and line breaks in a field — e.g. a skip-reason
/// message quoting a device error — no longer corrupt the row structure).
#[must_use]
pub fn to_csv(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    push_csv_row(&mut out, header.iter().copied());
    for row in rows {
        push_csv_row(&mut out, row.iter().map(String::as_str));
    }
    out
}

/// Convenience: runs guardband + power sweep on a fresh platform and
/// returns the headline metrics (what the `headline_metrics` bench binary
/// prints).
///
/// # Errors
///
/// Propagates experiment errors.
pub fn compute_headlines(platform: &mut Platform) -> Result<HeadlineMetrics, ExperimentError> {
    let guardband = crate::guardband::GuardbandFinder::new().run(platform)?;
    let power = crate::power_test::PowerSweep::date21().run(platform)?;
    headline_metrics(&power, &guardband)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterization::{stack_fraction_series, PcFaultTable};
    use crate::power_test::PowerSweep;
    use crate::sweep::VoltageSweep;
    use crate::trade_off::TradeOffAnalysis;
    use hbm_faults::FaultMap;
    use hbm_power::HbmPowerModel;
    use hbm_traffic::DataPattern;
    use hbm_units::Ratio;

    fn platform() -> Platform {
        Platform::builder().seed(7).build()
    }

    #[test]
    fn headlines_match_paper() {
        let mut p = platform();
        let metrics = compute_headlines(&mut p).unwrap();
        assert!((18.0..19.5).contains(&metrics.guardband_percent));
        assert!((1.45..1.55).contains(&metrics.saving_at_guardband));
        assert!((2.15..2.45).contains(&metrics.saving_at_850mv));
        assert!((0.30..0.37).contains(&metrics.idle_fraction));
        assert!((0.08..0.20).contains(&metrics.acf_drop_at_850mv));
        let display = metrics.to_string();
        assert!(display.contains("guardband"));
        assert!(display.contains('x'));
    }

    #[test]
    fn power_table_renders_50mv_rows() {
        let mut p = platform();
        let report = PowerSweep::date21().run(&mut p).unwrap();
        let table = render_power_table(&report);
        assert!(table.contains("1.20"));
        assert!(table.contains("0.85"));
        assert!(!table.contains("1.19"), "10 mV rows must be hidden");
        assert!(table.lines().count() > 5);

        let acf = render_acf_table(&report);
        assert!(acf.contains("100%"));
    }

    #[test]
    fn stack_fraction_table() {
        let p = platform();
        let series = stack_fraction_series(p.full_scale_predictor(), VoltageSweep::unsafe_region());
        let table = render_stack_fractions(&series);
        assert!(table.contains("HBM0"));
        assert!(table.lines().count() == series.len() + 1);
    }

    #[test]
    fn pc_table_contains_nf_cells() {
        let p = platform();
        let sweep = VoltageSweep::new(Millivolts(970), Millivolts(840), Millivolts(10)).unwrap();
        let table =
            PcFaultTable::from_predictor(p.full_scale_predictor(), sweep, DataPattern::AllOnes);
        let rendered = render_pc_table(&table);
        assert!(rendered.contains("NF"), "high voltages must show NF cells");
        assert!(rendered.contains("P31"));
        assert!(rendered.contains("all-1s"));
    }

    #[test]
    fn usable_pc_table() {
        let p = platform();
        let map = FaultMap::from_predictor(
            p.full_scale_predictor(),
            Millivolts(980),
            Millivolts(850),
            Millivolts(10),
        );
        let analysis = TradeOffAnalysis::new(map, HbmPowerModel::date21());
        let curves = analysis.usable_pc_curves(&[Ratio::ZERO, Ratio(1e-6), Ratio(0.01)]);
        let table = render_usable_pc_curves(&curves);
        assert!(table.contains("0.98"));
        assert!(table.contains("32"));
    }

    #[test]
    fn reliability_tables_report_throughput() {
        use crate::reliability::{ReliabilityConfig, ReliabilityTester};
        let mut p = platform();
        let mut config = ReliabilityConfig::quick();
        config.words_per_pc = Some(64);
        config.batch_size = 1;
        let report = ReliabilityTester::new(config).unwrap().run(&mut p).unwrap();
        let text = report.to_text();
        assert!(text.contains("words/s"), "{text}");
        assert!(text.contains("masks/s"), "{text}");
        let csv = report.to_csv();
        assert!(
            csv.starts_with(
                "voltage_mv,crashed,pattern,mean_faults,flips_1to0,flips_0to1,\
                 words_per_sec,masks_per_sec\n"
            ),
            "{csv}"
        );
    }

    #[test]
    fn csv_and_json_helpers() {
        let csv = to_csv(
            &["voltage", "power"],
            &[
                vec!["1.2".into(), "9.0".into()],
                vec!["0.98".into(), "6.0".into()],
            ],
        );
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("voltage,power\n"));

        let json = to_json(&vec![1, 2, 3]).unwrap();
        assert!(json.contains('1'));
    }

    #[test]
    fn csv_fields_with_commas_quotes_and_newlines_are_escaped() {
        let csv = to_csv(
            &["reason", "count"],
            &[vec!["said \"no, thanks\"\nand left".into(), "2".into()]],
        );
        assert_eq!(
            csv,
            "reason,count\n\"said \"\"no, thanks\"\"\nand left\",2\n"
        );
        // Unremarkable fields stay unquoted.
        let plain = to_csv(&["a"], &[vec!["plain".into()]]);
        assert_eq!(plain, "a\nplain\n");
    }

    #[test]
    fn supervised_csv_escapes_hostile_skip_reasons() {
        use crate::reliability::ReliabilityConfig;
        let report = SupervisedReport {
            config: ReliabilityConfig::quick(),
            checked_bits_per_run: 0,
            points: vec![crate::supervisor::SupervisedPoint {
                voltage: Millivolts(900),
                attempts: 3,
                outcome: PointOutcome::Skipped {
                    reason: "gave up: device said \"no\", then\ncrashed".to_owned(),
                },
            }],
            quarantined: Vec::new(),
            resumed_points: 0,
            power_cycles: 0,
        };
        let csv = report.to_csv();
        let mut lines = csv.lines();
        assert!(lines.next().unwrap().ends_with(",detail"));
        // The reason's comma and newline are contained inside one quoted
        // field: the record still parses as exactly 8 columns.
        assert!(
            csv.contains("\"gave up: device said \"\"no\"\", then\ncrashed\""),
            "{csv}"
        );
    }

    #[test]
    fn crashed_points_render_blank_throughput_not_zero() {
        use crate::reliability::{ReliabilityConfig, VoltagePoint};
        let mut config = ReliabilityConfig::quick();
        config.patterns = vec![DataPattern::AllOnes];
        let report = ReliabilityReport {
            config,
            checked_bits_per_run: 0,
            points: vec![VoltagePoint {
                voltage: Millivolts(820),
                crashed: true,
                outcomes: Vec::new(),
                words_per_second: None,
                masks_per_second: None,
                mask_reuse: None,
            }],
        };
        let text = report.to_text();
        assert!(text.contains('-'), "{text}");
        assert!(!text.contains("0.0e0"), "{text}");
        let csv = report.to_csv();
        let row = csv.lines().nth(1).unwrap();
        assert!(
            row.ends_with(",,"),
            "crashed rows must leave throughput blank: {row}"
        );
        assert!(!row.contains("0.000"), "{row}");
    }
}
