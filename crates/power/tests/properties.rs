//! Property-based tests for the power model.

use hbm_power::{HbmPowerModel, PowerAnalysis};
use hbm_units::{Millivolts, Ratio, Watts};
use proptest::prelude::*;

proptest! {
    /// Power is strictly increasing in voltage, non-decreasing in
    /// utilization and non-increasing in fault fraction.
    #[test]
    fn power_surface_monotonicity(
        mv in 600u32..1300,
        util in 0.0f64..1.0,
        fault in 0.0f64..1.0,
    ) {
        let m = HbmPowerModel::date21();
        let v = Millivolts(mv);
        let p = m.power(v, Ratio(util), Ratio(fault));

        let p_higher_v = m.power(v + Millivolts(10), Ratio(util), Ratio(fault));
        prop_assert!(p_higher_v > p);

        let p_more_util = m.power(v, Ratio((util + 0.1).min(1.0)), Ratio(fault));
        prop_assert!(p_more_util >= p);

        let p_more_fault = m.power(v, Ratio(util), Ratio((fault + 0.1).min(1.0)));
        prop_assert!(p_more_fault <= p);
    }

    /// The fault-free saving factor is exactly the voltage-square ratio,
    /// independent of utilization.
    #[test]
    fn fault_free_saving_is_quadratic(mv in 700u32..1200, util in 0.0f64..1.0) {
        let m = HbmPowerModel::date21();
        let saving = m.saving_factor(Millivolts(mv), Ratio(util), Ratio::ZERO);
        let expected = (1200.0 / f64::from(mv)).powi(2);
        prop_assert!((saving - expected).abs() < 1e-9, "{} vs {}", saving, expected);
    }

    /// αC_Lf extraction inverts the power model exactly: feeding model
    /// outputs back through the analysis recovers the effective
    /// capacitance at every voltage.
    #[test]
    fn analysis_inverts_model(util in 0.0f64..1.0, fault in 0.0f64..0.9) {
        let m = HbmPowerModel::date21();
        let samples: Vec<(Millivolts, Watts)> = (0..20)
            .map(|i| {
                let v = Millivolts(1200 - i * 20);
                (v, m.power(v, Ratio(util), Ratio(fault)))
            })
            .collect();
        let series = PowerAnalysis::extract_acf(&samples);
        let expected = m.effective_acf(Ratio(util), Ratio(fault));
        for sample in &series {
            prop_assert!(
                (sample.acf.as_f64() - expected.as_f64()).abs() < 1e-9,
                "at {}", sample.voltage
            );
            prop_assert!((sample.normalized.as_f64() - 1.0).abs() < 1e-12);
        }
    }

    /// A capacitance loss injected at one voltage shows up in the
    /// normalized series at exactly that voltage, at exactly that depth.
    #[test]
    fn analysis_localizes_capacitance_loss(
        loss in 0.01f64..0.5,
        position in 1usize..19,
    ) {
        let m = HbmPowerModel::date21();
        let mut samples: Vec<(Millivolts, Watts)> = (0..20)
            .map(|i| {
                let v = Millivolts(1200 - i as u32 * 20);
                (v, m.power(v, Ratio::ONE, Ratio::ZERO))
            })
            .collect();
        samples[position].1 = Watts(samples[position].1.as_f64() * (1.0 - loss));
        let series = PowerAnalysis::extract_acf(&samples);
        for (i, sample) in series.iter().enumerate() {
            let expected = if i == position { 1.0 - loss } else { 1.0 };
            prop_assert!(
                (sample.normalized.as_f64() - expected).abs() < 1e-9,
                "index {} voltage {}", i, sample.voltage
            );
        }
    }
}
