//! Cross-crate property tests at the platform level.

use hbm_undervolt_suite::device::{PortId, Word256, WordOffset};
use hbm_undervolt_suite::traffic::{
    merge_shard_results, DataPattern, MacroProgram, MemoryPort, PortStats, TrafficGenerator,
};
use hbm_undervolt_suite::undervolt::{
    ExecutionMode, Experiment, Platform, ReliabilityConfig, ReliabilityTester, TestScope,
    VoltageSweep,
};
use hbm_units::{Millivolts, Ratio};
use proptest::prelude::*;

fn arb_stats() -> impl Strategy<Value = PortStats> {
    (
        0u64..1_000,
        0u64..1_000,
        0u64..1_000,
        0u64..100_000,
        0u64..100_000,
    )
        .prop_map(
            |(words_written, words_read, faulty_words, flips_1to0, flips_0to1)| PortStats {
                words_written,
                words_read,
                faulty_words,
                flips_1to0,
                flips_0to1,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the seed and voltage (above the crash floor), the platform
    /// never loses writes in the guardband and never reports 0→1 flips for
    /// an all-ones pattern.
    #[test]
    fn pattern_polarity_invariant(
        seed in any::<u64>(),
        mv in 810u32..1200,
        port_index in 0u8..32,
    ) {
        let mut p = Platform::builder().seed(seed).build();
        p.set_voltage(Millivolts(mv)).unwrap();
        let port = PortId::new(port_index).unwrap();
        let program = MacroProgram::write_then_check(0..128, DataPattern::AllOnes);
        let mut tg = TrafficGenerator::new(port);
        let stats = tg.run(&program, &mut p.port(port)).unwrap();
        prop_assert_eq!(stats.flips_0to1, 0);
        if mv >= 980 {
            prop_assert_eq!(stats.flips_1to0, 0, "guardband fault at {} mV", mv);
        }
    }

    /// Fault counts grow monotonically with depth of undervolting for any
    /// specimen.
    #[test]
    fn measured_faults_monotone(seed in any::<u64>(), port_index in 0u8..32) {
        let mut p = Platform::builder().seed(seed).build();
        let port = PortId::new(port_index).unwrap();
        let program = MacroProgram::write_then_check(0..256, DataPattern::AllZeros);
        let mut last = 0u64;
        for mv in [980u32, 940, 900, 870, 850, 830] {
            p.set_voltage(Millivolts(mv)).unwrap();
            let mut tg = TrafficGenerator::new(port);
            let stats = tg.run(&program, &mut p.port(port)).unwrap();
            prop_assert!(
                stats.flips_0to1 >= last,
                "fault count shrank at {} mV: {} < {}",
                mv, stats.flips_0to1, last
            );
            last = stats.flips_0to1;
        }
    }

    /// Power is strictly decreasing in voltage and non-decreasing in
    /// utilization for any specimen.
    #[test]
    fn power_surface_monotone(seed in any::<u64>()) {
        let mut p = Platform::builder().seed(seed).build();
        let mut last = f64::MAX;
        for mv in (850..=1200).rev().step_by(50) {
            p.set_voltage(Millivolts(mv)).unwrap();
            let power = p.measure_power(Ratio::ONE).unwrap().power.as_f64();
            prop_assert!(power < last * 1.01, "power rose at {} mV", mv);
            last = power;
        }
        p.set_voltage(Millivolts(1000)).unwrap();
        let idle = p.measure_power(Ratio::ZERO).unwrap().power.as_f64();
        let half = p.measure_power(Ratio(0.5)).unwrap().power.as_f64();
        let full = p.measure_power(Ratio::ONE).unwrap().power.as_f64();
        prop_assert!(idle < half && half < full);
    }

    /// Data written in the guardband survives arbitrary voltage excursions
    /// back into the guardband (stuck bits do not corrupt storage, only
    /// reads below V_min).
    #[test]
    fn guardband_storage_integrity(
        seed in any::<u64>(),
        lanes in any::<[u64; 4]>(),
        excursion in 820u32..979,
    ) {
        let mut p = Platform::builder().seed(seed).build();
        let port = PortId::new(3).unwrap();
        let word = Word256(lanes);
        p.port(port).write(WordOffset(9), word).unwrap();

        // Dip below the guardband (reads are faulty there) …
        p.set_voltage(Millivolts(excursion)).unwrap();
        let _ = p.port(port).read(WordOffset(9)).unwrap();

        // … and back up: the stored data is intact.
        p.set_voltage(Millivolts(1000)).unwrap();
        prop_assert_eq!(p.port(port).read(WordOffset(9)).unwrap(), word);
    }

    /// The [`Experiment`] contract: for ANY seed, running the reliability
    /// experiment on a parallel platform is bit-identical to the
    /// sequential run.
    #[test]
    fn experiment_is_deterministic_for_any_seed(
        seed in any::<u64>(),
        workers in 2usize..9,
        sampled in any::<bool>(),
    ) {
        let config = ReliabilityConfig {
            sweep: VoltageSweep::new(Millivolts(940), Millivolts(880), Millivolts(20)).unwrap(),
            batch_size: 1,
            patterns: vec![DataPattern::AllOnes],
            scope: TestScope::EntireHbm,
            words_per_pc: Some(128),
            sample_words: sampled.then_some(32),
            // The subject here is the parallel traffic engine itself, so
            // force the literal write/read-back path.
            mode: ExecutionMode::Traffic,
            fault_field: hbm_undervolt_suite::faults::FaultFieldMode::PerVoltage,
            kernel: hbm_undervolt_suite::faults::KernelBackend::Auto,
            carry_forward: true,
        };
        let tester = ReliabilityTester::new(config).unwrap();
        let mut sequential = Platform::builder().seed(seed).workers(1).build();
        let mut parallel = Platform::builder().seed(seed).workers(workers).build();
        prop_assert_eq!(
            Experiment::run(&tester, &mut sequential).unwrap(),
            Experiment::run(&tester, &mut parallel).unwrap()
        );
    }

    /// Shard-merge arithmetic: merging per-shard statistics is a plain
    /// field-wise sum — order-insensitive, duplicate-collapsing, and
    /// total-preserving.
    #[test]
    fn shard_merge_is_order_insensitive_and_total_preserving(
        stats in proptest::collection::vec(arb_stats(), 1..20),
        rotation in 0usize..20,
    ) {
        let jobs: Vec<(PortId, PortStats)> = stats
            .iter()
            .enumerate()
            .map(|(i, &s)| (PortId::new((i % 32) as u8).unwrap(), s))
            .collect();

        let mut rotated = jobs.clone();
        rotated.rotate_left(rotation % jobs.len());
        let merged = merge_shard_results(jobs.clone());
        prop_assert_eq!(&merged, &merge_shard_results(rotated));

        // Ports come out sorted and unique.
        prop_assert!(merged.windows(2).all(|w| w[0].0.as_u8() < w[1].0.as_u8()));

        // No flip is lost or invented by merging.
        let total = |items: &[(PortId, PortStats)]| {
            items.iter().fold(PortStats::default(), |mut acc, (_, s)| {
                acc.merge(s);
                acc
            })
        };
        prop_assert_eq!(total(&merged), total(&jobs));
    }
}
