//! The sweep engine's hard guarantee: a parallel run is bit-identical to
//! the sequential run — same report, same device statistics — for every
//! seed and every worker count.

use hbm_undervolt_suite::traffic::DataPattern;
use hbm_undervolt_suite::undervolt::{
    ExecutionMode, GuardbandFinder, Platform, ReliabilityConfig, ReliabilityReport,
    ReliabilityTester,
};
use hbm_units::Millivolts;

fn run_with(seed: u64, workers: usize, config: &ReliabilityConfig) -> ReliabilityReport {
    let mut platform = Platform::builder().seed(seed).workers(workers).build();
    ReliabilityTester::new(config.clone())
        .unwrap()
        .run(&mut platform)
        .unwrap()
}

#[test]
fn parallel_reliability_reports_are_bit_identical() {
    // The subject is the sharded traffic engine, so pin the literal
    // write/read-back path (the cached-mask kernel has its own
    // traffic-equivalence tests in the core crate).
    let mut config = ReliabilityConfig::quick();
    config.mode = ExecutionMode::Traffic;
    for seed in [3u64, 7, 11] {
        let sequential = run_with(seed, 1, &config);
        assert!(
            sequential
                .points
                .iter()
                .any(|p| p.total_mean_faults() > 0.0),
            "seed {seed}: the sweep must observe faults for the comparison to mean anything"
        );
        for workers in [4usize, 8] {
            assert_eq!(
                sequential,
                run_with(seed, workers, &config),
                "seed {seed}, {workers} workers"
            );
        }
    }
}

#[test]
fn sampled_mode_is_worker_count_invariant() {
    // Sampled offsets come from one ChaCha stream per (seed, voltage, PC),
    // so the workload itself must not depend on how shards are scheduled.
    let mut config = ReliabilityConfig::quick();
    config.sample_words = Some(128);
    config.batch_size = 1;
    config.mode = ExecutionMode::Traffic;
    for seed in [5u64, 13, 21] {
        let sequential = run_with(seed, 1, &config);
        for workers in [4usize, 8] {
            assert_eq!(
                sequential,
                run_with(seed, workers, &config),
                "seed {seed}, {workers} workers"
            );
        }
    }
}

#[test]
fn measured_guardband_is_worker_count_invariant() {
    let vmin_with = |workers: usize| {
        let mut platform = Platform::builder().seed(7).workers(workers).build();
        let mut finder = GuardbandFinder::new();
        finder.probe_words = 256;
        finder.find_vmin_measured(&mut platform).unwrap()
    };
    let sequential = vmin_with(1);
    assert!(sequential <= Millivolts(980));
    for workers in [4usize, 8] {
        assert_eq!(sequential, vmin_with(workers), "{workers} workers");
    }
}

#[test]
fn device_statistics_match_across_worker_counts() {
    let stats_with = |workers: usize| {
        let mut config = ReliabilityConfig::quick();
        config.patterns = vec![DataPattern::Checkerboard];
        config.batch_size = 1;
        // Device statistics only accumulate when the AXI path actually
        // runs, so this comparison needs the traffic kernel.
        config.mode = ExecutionMode::Traffic;
        let mut platform = Platform::builder().seed(11).workers(workers).build();
        ReliabilityTester::new(config)
            .unwrap()
            .run(&mut platform)
            .unwrap();
        platform.device().total_stats()
    };
    let sequential = stats_with(1);
    for workers in [4usize, 8] {
        assert_eq!(sequential, stats_with(workers), "{workers} workers");
    }
}

#[test]
fn workers_knob_clamps_to_at_least_one() {
    let platform = Platform::builder().seed(7).workers(0).build();
    assert_eq!(platform.workers(), 1);
    let mut platform = Platform::builder().seed(7).workers(6).build();
    assert_eq!(platform.workers(), 6);
    // The deprecated forwarder must keep working for old callers.
    #[allow(deprecated)]
    platform.set_workers(0);
    assert_eq!(platform.workers(), 1);
}
