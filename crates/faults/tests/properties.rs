//! Property-based tests of the fault model's core guarantees.

// The deprecated per-strategy entry points stay under test for their
// deprecation release: they are the scalar reference the kernel API's
// backends are checked against.
#![allow(deprecated)]

use hbm_device::{HbmGeometry, PcIndex, Word256, WordOffset};
use hbm_faults::{
    FaultFieldMode, FaultInjector, FaultMap, FaultModelParams, KernelBackend, MaskKernel,
    RatePredictor,
};
use hbm_units::{Celsius, Millivolts, Ratio};
use proptest::prelude::*;

fn injector(seed: u64) -> FaultInjector {
    FaultInjector::new(
        FaultModelParams::date21(),
        HbmGeometry::vcu128_reduced(),
        seed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No fault anywhere at or above V_min, for any seed and address.
    #[test]
    fn guardband_inviolable(
        seed in any::<u64>(),
        pc_index in 0u8..32,
        word in 0u64..8192,
        above in 0u32..300,
    ) {
        let inj = injector(seed);
        let pc = PcIndex::new(pc_index).unwrap();
        let v = Millivolts(980 + above);
        let (s0, s1) = inj.stuck_masks(pc, WordOffset(word), v);
        prop_assert!(s0.is_zero() && s1.is_zero());
    }

    /// Stuck-at masks are disjoint and deterministic at any voltage.
    #[test]
    fn masks_disjoint_and_deterministic(
        seed in any::<u64>(),
        pc_index in 0u8..32,
        word in 0u64..8192,
        mv in 810u32..1000,
    ) {
        let inj = injector(seed);
        let pc = PcIndex::new(pc_index).unwrap();
        let v = Millivolts(mv);
        let (s0, s1) = inj.stuck_masks(pc, WordOffset(word), v);
        prop_assert!((s0 & s1).is_zero());
        prop_assert_eq!(inj.stuck_masks(pc, WordOffset(word), v), (s0, s1));
    }

    /// Dropping the voltage can only grow each polarity's fault set.
    #[test]
    fn fault_sets_monotone(
        seed in any::<u64>(),
        pc_index in 0u8..32,
        word in 0u64..8192,
        hi in 830u32..980,
        delta in 1u32..100,
    ) {
        let inj = injector(seed);
        let pc = PcIndex::new(pc_index).unwrap();
        let lo = Millivolts(hi.saturating_sub(delta).max(810));
        let hi = Millivolts(hi);
        let (hi0, hi1) = inj.stuck_masks(pc, WordOffset(word), hi);
        let (lo0, lo1) = inj.stuck_masks(pc, WordOffset(word), lo);
        prop_assert_eq!(lo0 & hi0, hi0, "stuck-at-0 set shrank");
        prop_assert_eq!(lo1 & hi1, hi1, "stuck-at-1 set shrank");
    }

    /// What a read observes is consistent with the masks for any stored
    /// pattern: observed = (stored & !stuck0) | stuck1.
    #[test]
    fn observation_matches_masks(
        seed in any::<u64>(),
        lanes in any::<[u64; 4]>(),
        word in 0u64..4096,
        mv in 810u32..980,
    ) {
        let inj = injector(seed);
        let pc = PcIndex::new(3).unwrap();
        let stored = Word256(lanes);
        let v = Millivolts(mv);
        let (s0, s1) = inj.stuck_masks(pc, WordOffset(word), v);
        let observed = inj.observe(stored, pc, WordOffset(word), v);
        prop_assert_eq!(observed, (stored & !s0) | s1);
        // A second observation is identical (faults are stuck, not noisy).
        prop_assert_eq!(inj.observe(stored, pc, WordOffset(word), v), observed);
    }

    /// Analytic rates are monotone in voltage for every PC.
    #[test]
    fn analytic_rates_monotone(seed in any::<u64>(), pc_index in 0u8..32) {
        let p = RatePredictor::new(
            FaultModelParams::date21(),
            HbmGeometry::vcu128(),
            seed,
        );
        let pc = PcIndex::new(pc_index).unwrap();
        let mut last = -1.0;
        let mut v = Millivolts(990);
        while v >= Millivolts(810) {
            let rate = p.pc_rates(pc, v).union().as_f64();
            prop_assert!(rate >= last, "rate shrank at {} for PC{}", v, pc_index);
            last = rate;
            v = v.saturating_sub(Millivolts(30));
        }
    }

    /// Tentpole guarantee of the region-tiled kernel: the cached path (tile
    /// probability cache + geometric skip enumeration) is bit-identical to
    /// the naive per-word reference path for any seed, voltage, PC and
    /// temperature.
    #[test]
    fn kernel_bit_identical_to_per_word_reference(
        seed in any::<u64>(),
        pc_index in 0u8..32,
        word in 0u64..8192,
        mv in 810u32..1050,
        temp_tenths in 250u32..=550,
    ) {
        let mut inj = injector(seed);
        inj.set_temperature(Celsius(f64::from(temp_tenths) / 10.0));
        let pc = PcIndex::new(pc_index).unwrap();
        let v = Millivolts(mv);
        let w = WordOffset(word);
        let kernel = inj.kernel(FaultFieldMode::PerVoltage, KernelBackend::Auto);
        prop_assert_eq!(inj.stuck_masks(pc, w, v), kernel.reference_masks(pc, w, v));
    }

    /// The skip-sampling range enumeration visits exactly the faulty words
    /// the reference path finds — same counts, same masks, no extras.
    #[test]
    fn kernel_enumeration_matches_reference(
        seed in any::<u64>(),
        pc_index in 0u8..32,
        start in 0u64..7000,
        len in 1u64..768,
        mv in 810u32..1000,
    ) {
        let inj = injector(seed);
        let pc = PcIndex::new(pc_index).unwrap();
        let v = Millivolts(mv);
        let range = start..(start + len).min(8192);
        let reference = inj.kernel(FaultFieldMode::PerVoltage, KernelBackend::Scalar);
        let mut expected = Vec::new();
        for w in range.clone() {
            let (s0, s1) = reference.reference_masks(pc, WordOffset(w), v);
            if !(s0.is_zero() && s1.is_zero()) {
                expected.push((WordOffset(w), s0, s1));
            }
        }
        prop_assert_eq!(inj.faulty_words(pc, range.clone(), v), expected.clone());
        let counted = inj.count_range(pc, range, v);
        let sum0: u64 = expected.iter().map(|(_, s0, _)| u64::from(s0.count_ones())).sum();
        let sum1: u64 = expected.iter().map(|(_, _, s1)| u64::from(s1.count_ones())).sum();
        prop_assert_eq!(counted, (sum0, sum1));
    }

    /// Coupled-field inclusion monotonicity by construction: dropping the
    /// voltage can only grow each polarity's fault set, for any seed,
    /// address and descent step.
    #[test]
    fn coupled_fault_sets_monotone(
        seed in any::<u64>(),
        pc_index in 0u8..32,
        word in 0u64..8192,
        hi in 811u32..980,
        delta in 1u32..120,
    ) {
        let inj = injector(seed);
        let pc = PcIndex::new(pc_index).unwrap();
        let lo = Millivolts(hi.saturating_sub(delta).max(810));
        let hi = Millivolts(hi);
        let (hi0, hi1) = inj.coupled_stuck_masks(pc, WordOffset(word), hi);
        let (lo0, lo1) = inj.coupled_stuck_masks(pc, WordOffset(word), lo);
        prop_assert_eq!(lo0 & hi0, hi0, "coupled stuck-at-0 set shrank");
        prop_assert_eq!(lo1 & hi1, hi1, "coupled stuck-at-1 set shrank");
    }

    /// Tentpole guarantee of the incremental sweep kernel: over a random
    /// descending voltage sequence, the carried working set (start +
    /// advances) and the delta enumeration are both bit-identical to a
    /// from-scratch coupled enumeration at every point. Ranges above the
    /// bit-carry capacity exercise the word-granular tier.
    #[test]
    fn coupled_carry_matches_from_scratch(
        seed in any::<u64>(),
        pc_index in 0u8..32,
        start_word in 0u64..4096,
        len in 1u64..8192,
        first_mv in 830u32..980,
        steps in proptest::collection::vec(1u32..40, 1..5),
    ) {
        let inj = injector(seed);
        let pc = PcIndex::new(pc_index).unwrap();
        let range = start_word..(start_word + len).min(8192);

        let mut v = Millivolts(first_mv);
        let (mut carry, _) = inj.coupled_carry_start(pc, range.clone(), v);
        prop_assert_eq!(
            carry.masks(),
            inj.coupled_faulty_words(pc, range.clone(), v),
            "carry start diverged at {}", v
        );

        for step in steps {
            let prev = v;
            v = Millivolts(v.as_u32().saturating_sub(step).max(810));
            let scratch = inj.coupled_faulty_words(pc, range.clone(), v);

            // The carried set advances to exactly the from-scratch set.
            inj.coupled_carry_advance(&mut carry, v);
            prop_assert_eq!(&carry.masks(), &scratch, "carry advance diverged at {}", v);

            // The delta enumeration reports exactly the activations: the
            // words faulty at the next voltage but clean at the previous
            // one, with their full masks at the next voltage.
            let prev_offsets: std::collections::BTreeSet<u64> = inj
                .coupled_faulty_words(pc, range.clone(), prev)
                .into_iter()
                .map(|(w, _, _)| w.0)
                .collect();
            let expected: Vec<_> = scratch
                .iter()
                .filter(|(w, _, _)| !prev_offsets.contains(&w.0))
                .copied()
                .collect();
            prop_assert_eq!(
                inj.faulty_words_delta(pc, range.clone(), prev, v),
                expected,
                "delta enumeration diverged at {}", v
            );
        }
    }

    /// Tentpole guarantee of the bit-sliced kernel: every [`MaskKernel`]
    /// backend is bit-identical to the scalar oracle — same enumerations,
    /// same counts, same per-word masks — in both fault fields, for any
    /// seed, range, voltage and temperature.
    #[test]
    fn bitsliced_matches_scalar(
        seed in any::<u64>(),
        pc_index in 0u8..32,
        start in 0u64..7000,
        len in 1u64..768,
        mv in 810u32..1000,
        temp_tenths in 250u32..=550,
    ) {
        let mut inj = injector(seed);
        inj.set_temperature(Celsius(f64::from(temp_tenths) / 10.0));
        let pc = PcIndex::new(pc_index).unwrap();
        let v = Millivolts(mv);
        let range = start..(start + len).min(8192);
        for field in [FaultFieldMode::PerVoltage, FaultFieldMode::MonotoneCoupled] {
            let scalar = inj.kernel(field, KernelBackend::Scalar);
            for backend in [KernelBackend::BitSliced, KernelBackend::Auto] {
                let kernel = inj.kernel(field, backend);
                prop_assert_eq!(
                    kernel.faulty_words(pc, range.clone(), v),
                    scalar.faulty_words(pc, range.clone(), v),
                    "{:?}/{:?} enumeration diverged at {}", field, backend, v
                );
                prop_assert_eq!(
                    kernel.count_range(pc, range.clone(), v),
                    scalar.count_range(pc, range.clone(), v),
                    "{:?}/{:?} counts diverged at {}", field, backend, v
                );
                prop_assert_eq!(
                    kernel.masks(pc, WordOffset(start), v),
                    kernel.reference_masks(pc, WordOffset(start), v),
                    "{:?}/{:?} single-word masks diverged at {}", field, backend, v
                );
            }
        }
    }

    /// Carried descending sweeps are backend-independent: starting and
    /// advancing a coupled carry under the bit-sliced or auto backend
    /// yields the same masks AND the same carry accounting as the scalar
    /// backend at every point of a random descent.
    #[test]
    fn bitsliced_carried_advances_match_scalar(
        seed in any::<u64>(),
        pc_index in 0u8..32,
        start_word in 0u64..4096,
        len in 1u64..8192,
        first_mv in 830u32..980,
        steps in proptest::collection::vec(1u32..40, 1..5),
    ) {
        let inj = injector(seed);
        let pc = PcIndex::new(pc_index).unwrap();
        let range = start_word..(start_word + len).min(8192);
        let kernels = [
            inj.kernel(FaultFieldMode::MonotoneCoupled, KernelBackend::Scalar),
            inj.kernel(FaultFieldMode::MonotoneCoupled, KernelBackend::BitSliced),
            inj.kernel(FaultFieldMode::MonotoneCoupled, KernelBackend::Auto),
        ];

        let mut v = Millivolts(first_mv);
        let mut carries = Vec::new();
        let mut start_stats = Vec::new();
        for kernel in &kernels {
            let (carry, stats) = kernel.carry_start(pc, range.clone(), v);
            carries.push(carry);
            start_stats.push(stats);
        }
        for i in 1..kernels.len() {
            prop_assert_eq!(&start_stats[i], &start_stats[0],
                "carry-start stats diverged ({:?})", kernels[i].backend());
            prop_assert_eq!(carries[i].masks(), carries[0].masks(),
                "carry-start masks diverged ({:?})", kernels[i].backend());
        }

        for step in steps {
            v = Millivolts(v.as_u32().saturating_sub(step).max(810));
            let stats: Vec<_> = kernels
                .iter()
                .zip(carries.iter_mut())
                .map(|(kernel, carry)| kernel.carry_advance(carry, v))
                .collect();
            for i in 1..kernels.len() {
                prop_assert_eq!(&stats[i], &stats[0],
                    "advance stats diverged at {} ({:?})", v, kernels[i].backend());
                prop_assert_eq!(carries[i].masks(), carries[0].masks(),
                    "advance masks diverged at {} ({:?})", v, kernels[i].backend());
            }
        }
    }

    /// The two fault fields share one analytic model, so their aggregate
    /// fault counts agree statistically at any voltage — near the guardband
    /// (where both are essentially zero), mid-slope, and at saturation.
    #[test]
    fn legacy_and_coupled_rates_agree(seed in any::<u64>(), pc_index in 0u8..32) {
        let inj = injector(seed);
        let pc = PcIndex::new(pc_index).unwrap();
        for mv in [970u32, 960, 840] {
            let v = Millivolts(mv);
            let (l0, l1) = inj.count_range(pc, 0..8192, v);
            let (c0, c1) = inj.coupled_count_range(pc, 0..8192, v);
            for (legacy, coupled, class) in [(l0, c0, "stuck0"), (l1, c1, "stuck1")] {
                let scale = legacy.max(coupled) as f64;
                let diff = legacy.abs_diff(coupled) as f64;
                // Two independent binomial draws of the same expectation:
                // allow a generous relative band plus an absolute floor so
                // near-zero counts (high voltages) never flake.
                prop_assert!(
                    diff <= 0.25 * scale + 64.0,
                    "{class} at {v}: legacy {legacy} vs coupled {coupled}"
                );
            }
        }
    }

    /// Fault-map usable-PC counts are monotone in tolerance and voltage.
    #[test]
    fn fault_map_monotonicity(seed in any::<u64>()) {
        let p = RatePredictor::new(
            FaultModelParams::date21(),
            HbmGeometry::vcu128(),
            seed,
        );
        let map = FaultMap::from_predictor(
            &p,
            Millivolts(980),
            Millivolts(850),
            Millivolts(30),
        );
        let tolerances = [Ratio::ZERO, Ratio(1e-8), Ratio(1e-6), Ratio(1e-3), Ratio(0.1)];
        for &v in &map.voltages {
            let counts: Vec<usize> =
                tolerances.iter().map(|&t| map.usable_pc_count(v, t)).collect();
            prop_assert!(counts.windows(2).all(|w| w[0] <= w[1]), "tolerance monotonicity at {}", v);
        }
        for &t in &tolerances {
            let counts: Vec<usize> =
                map.voltages.iter().map(|&v| map.usable_pc_count(v, t)).collect();
            prop_assert!(counts.windows(2).all(|w| w[0] >= w[1]), "voltage monotonicity");
        }
    }
}
