//! Address types and the mapping between linear word offsets and the
//! bank/row/column organization of a pseudo channel.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::error::DeviceError;
use crate::geometry::HbmGeometry;

/// Identifier of an HBM stack (`HBM0` or `HBM1` on the study platform).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StackId(pub u8);

impl fmt::Display for StackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HBM{}", self.0)
    }
}

/// Identifier of a 128-bit memory channel within a stack (`0..8`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChannelId(pub u8);

/// Identifier of a bank within a pseudo channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BankId(pub u16);

/// Identifier of a row within a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RowId(pub u32);

/// Global pseudo-channel index, `0..32`.
///
/// The study numbers PCs across both stacks: PC0–PC15 belong to `HBM0` and
/// PC16–PC31 to `HBM1`, matching the AXI port numbering of Fig. 5.
///
/// # Examples
///
/// ```
/// use hbm_device::{HbmGeometry, PcIndex};
///
/// # fn main() -> Result<(), hbm_device::DeviceError> {
/// let pc = PcIndex::new(18)?;
/// let (stack, channel, pc_in_channel) = pc.decompose(HbmGeometry::vcu128());
/// assert_eq!(stack.0, 1);        // PC18 lives in HBM1
/// assert_eq!(channel.0, 1);      // second channel of that stack
/// assert_eq!(pc_in_channel, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PcIndex(u8);

/// Total number of pseudo channels (and AXI ports) on the study platform.
pub const TOTAL_PCS: u8 = 32;

impl PcIndex {
    /// Creates a pseudo-channel index.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidPseudoChannel`] if `index >= 32`.
    pub fn new(index: u8) -> Result<Self, DeviceError> {
        if index < TOTAL_PCS {
            Ok(PcIndex(index))
        } else {
            Err(DeviceError::InvalidPseudoChannel { index })
        }
    }

    /// Returns the raw index (`0..32`).
    #[must_use]
    pub fn as_u8(self) -> u8 {
        self.0
    }

    /// Returns the raw index widened to `usize` for container indexing.
    #[must_use]
    pub fn as_usize(self) -> usize {
        usize::from(self.0)
    }

    /// Iterates over every pseudo channel of a geometry, in index order.
    pub fn all(geometry: HbmGeometry) -> impl Iterator<Item = PcIndex> {
        (0..geometry.total_pcs()).map(PcIndex)
    }

    /// Splits the global index into `(stack, channel, pc-within-channel)`.
    #[must_use]
    pub fn decompose(self, geometry: HbmGeometry) -> (StackId, ChannelId, u8) {
        let per_stack = geometry.pcs_per_stack();
        let per_channel = geometry.pcs_per_channel();
        let stack = self.0 / per_stack;
        let within = self.0 % per_stack;
        (
            StackId(stack),
            ChannelId(within / per_channel),
            within % per_channel,
        )
    }

    /// The stack this pseudo channel belongs to.
    #[must_use]
    pub fn stack(self, geometry: HbmGeometry) -> StackId {
        self.decompose(geometry).0
    }

    /// Composes a global index from `(stack, channel, pc-within-channel)`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidPseudoChannel`] if the parts exceed the
    /// geometry.
    pub fn compose(
        geometry: HbmGeometry,
        stack: StackId,
        channel: ChannelId,
        pc_in_channel: u8,
    ) -> Result<Self, DeviceError> {
        let index = stack.0 * geometry.pcs_per_stack()
            + channel.0 * geometry.pcs_per_channel()
            + pc_in_channel;
        if stack.0 < geometry.stacks()
            && channel.0 < geometry.channels_per_stack()
            && pc_in_channel < geometry.pcs_per_channel()
        {
            PcIndex::new(index)
        } else {
            Err(DeviceError::InvalidPseudoChannel { index })
        }
    }
}

impl fmt::Display for PcIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PC{}", self.0)
    }
}

/// User-side AXI port index, `0..32`. Port *i* fronts pseudo channel *i*
/// unless the switching network re-routes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PortId(u8);

impl PortId {
    /// Creates an AXI port index.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidPort`] if `index >= 32`.
    pub fn new(index: u8) -> Result<Self, DeviceError> {
        if index < TOTAL_PCS {
            Ok(PortId(index))
        } else {
            Err(DeviceError::InvalidPort { index })
        }
    }

    /// Returns the raw index (`0..32`).
    #[must_use]
    pub fn as_u8(self) -> u8 {
        self.0
    }

    /// Returns the raw index widened to `usize`.
    #[must_use]
    pub fn as_usize(self) -> usize {
        usize::from(self.0)
    }

    /// The pseudo channel this port maps to when the switching network is
    /// disabled (the identity mapping used throughout the study).
    #[must_use]
    pub fn direct_pc(self) -> PcIndex {
        PcIndex(self.0)
    }

    /// Iterates over every port of a geometry, in index order.
    pub fn all(geometry: HbmGeometry) -> impl Iterator<Item = PortId> {
        (0..geometry.total_pcs()).map(PortId)
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AXI{}", self.0)
    }
}

impl From<PortId> for PcIndex {
    fn from(port: PortId) -> PcIndex {
        port.direct_pc()
    }
}

/// A linear AXI-word offset within one pseudo channel.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct WordOffset(pub u64);

impl WordOffset {
    /// Decodes the offset into bank/row/column under a geometry.
    ///
    /// The mapping places the column in the low bits, the bank next (so
    /// sequential accesses interleave across banks row-by-row) and the row
    /// on top.
    ///
    /// # Panics
    ///
    /// Panics if the offset exceeds the pseudo-channel capacity; validate
    /// with the device API first for fallible handling.
    #[must_use]
    pub fn decode(self, geometry: HbmGeometry) -> DecodedAddress {
        assert!(
            self.0 < geometry.words_per_pc(),
            "word offset {} out of range for geometry ({} words/pc)",
            self.0,
            geometry.words_per_pc()
        );
        let col_bits = geometry.col_bits();
        let bank_bits = geometry.bank_bits();
        let col = (self.0 & ((1 << col_bits) - 1)) as u16;
        let bank = ((self.0 >> col_bits) & ((1 << bank_bits) - 1)) as u16;
        let row = (self.0 >> (col_bits + bank_bits)) as u32;
        DecodedAddress {
            bank: BankId(bank),
            row: RowId(row),
            col,
        }
    }
}

impl fmt::Display for WordOffset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "+0x{:x}", self.0)
    }
}

/// A bank/row/column address within one pseudo channel.
///
/// # Examples
///
/// ```
/// use hbm_device::{DecodedAddress, HbmGeometry, WordOffset};
///
/// let g = HbmGeometry::vcu128();
/// let decoded = WordOffset(12345).decode(g);
/// assert_eq!(decoded.encode(g), WordOffset(12345));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DecodedAddress {
    /// Bank within the pseudo channel.
    pub bank: BankId,
    /// Row within the bank.
    pub row: RowId,
    /// AXI-word column within the row.
    pub col: u16,
}

impl DecodedAddress {
    /// Re-encodes into a linear word offset under a geometry.
    ///
    /// # Panics
    ///
    /// Panics if any field exceeds the geometry.
    #[must_use]
    pub fn encode(self, geometry: HbmGeometry) -> WordOffset {
        assert!(
            u32::from(self.bank.0) < u32::from(geometry.banks_per_pc()),
            "bank out of range"
        );
        assert!(self.row.0 < geometry.rows_per_bank(), "row out of range");
        assert!(self.col < geometry.words_per_row(), "column out of range");
        let col_bits = geometry.col_bits();
        let bank_bits = geometry.bank_bits();
        WordOffset(
            (u64::from(self.row.0) << (col_bits + bank_bits))
                | (u64::from(self.bank.0) << col_bits)
                | u64::from(self.col),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pc_index_validation() {
        assert!(PcIndex::new(0).is_ok());
        assert!(PcIndex::new(31).is_ok());
        assert_eq!(
            PcIndex::new(32).unwrap_err(),
            DeviceError::InvalidPseudoChannel { index: 32 }
        );
    }

    #[test]
    fn pc_stack_assignment_matches_paper() {
        let g = HbmGeometry::vcu128();
        // PC0–PC15 in HBM0; PC16–PC31 in HBM1 (Fig. 5 numbering).
        for i in 0..16 {
            assert_eq!(PcIndex::new(i).unwrap().stack(g), StackId(0));
        }
        for i in 16..32 {
            assert_eq!(PcIndex::new(i).unwrap().stack(g), StackId(1));
        }
    }

    #[test]
    fn pc_decompose_compose_round_trip() {
        let g = HbmGeometry::vcu128();
        for pc in PcIndex::all(g) {
            let (stack, channel, within) = pc.decompose(g);
            assert_eq!(PcIndex::compose(g, stack, channel, within).unwrap(), pc);
        }
    }

    #[test]
    fn compose_rejects_out_of_range() {
        let g = HbmGeometry::vcu128();
        assert!(PcIndex::compose(g, StackId(2), ChannelId(0), 0).is_err());
        assert!(PcIndex::compose(g, StackId(0), ChannelId(8), 0).is_err());
        assert!(PcIndex::compose(g, StackId(0), ChannelId(0), 2).is_err());
    }

    #[test]
    fn port_maps_directly_to_pc() {
        for i in 0..32 {
            let port = PortId::new(i).unwrap();
            assert_eq!(port.direct_pc().as_u8(), i);
            assert_eq!(PcIndex::from(port).as_u8(), i);
        }
        assert!(PortId::new(32).is_err());
    }

    #[test]
    fn address_decode_encode_round_trip() {
        let g = HbmGeometry::vcu128_reduced();
        for offset in 0..g.words_per_pc() {
            let w = WordOffset(offset);
            assert_eq!(w.decode(g).encode(g), w);
        }
    }

    #[test]
    fn sequential_offsets_interleave_banks() {
        let g = HbmGeometry::vcu128();
        // One full row (32 words) stays in bank 0, then bank 1 begins.
        assert_eq!(WordOffset(0).decode(g).bank, BankId(0));
        assert_eq!(WordOffset(31).decode(g).bank, BankId(0));
        assert_eq!(WordOffset(32).decode(g).bank, BankId(1));
        // After all 16 banks, the row advances.
        assert_eq!(WordOffset(32 * 16).decode(g).row, RowId(1));
        assert_eq!(WordOffset(32 * 16).decode(g).bank, BankId(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn decode_rejects_out_of_range() {
        let g = HbmGeometry::vcu128_reduced();
        let _ = WordOffset(g.words_per_pc()).decode(g);
    }

    #[test]
    fn display_formats() {
        assert_eq!(StackId(0).to_string(), "HBM0");
        assert_eq!(PcIndex::new(18).unwrap().to_string(), "PC18");
        assert_eq!(PortId::new(7).unwrap().to_string(), "AXI7");
        assert_eq!(WordOffset(255).to_string(), "+0xff");
    }
}
