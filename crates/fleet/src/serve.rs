//! The long-lived fleet serving loop: one loaded artifact, many queries.
//!
//! [`FleetService`] wraps a [`FleetStore`] and answers [`FleetRequest`]s
//! without re-opening the artifact per query — the whole point of the
//! compressed format. Recommendations are served **model-first**: the
//! per-device [`crate::model::DeviceModel`] decides every cell through
//! its fidelity envelope, and only when a cell is genuinely undecidable
//! does the service fall back to exact evidence — the stored FAULTS
//! column when the artifact kept it, else an on-demand kernel rescan
//! reconstructed from the header. Either way the answer is identical to
//! the exact one; the envelope only ever changes *where* it comes from.
//!
//! [`serve`] runs the LDJSON transport: one request JSON per input line,
//! one response JSON per output line, same order. A malformed line
//! produces an `Error` response (kind `parse`) and the loop continues;
//! EOF ends the session and returns the counters.

use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use crate::api::{ApiError, FleetRequest, FleetResponse};
use crate::artifact::FleetStore;
use crate::model::{fit_store, FidelityReport};
use crate::population::{FleetCostModel, PopulationSummary};
use crate::query;

/// Serving counters, reported once per session at EOF.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Requests answered (including error replies).
    pub queries_served: u64,
    /// Recommendations answered purely from the compressed model.
    pub compressed_hits: u64,
    /// Recommendations that needed exact evidence (stored column or
    /// kernel rescan).
    pub exact_rescans: u64,
    /// Size of the loaded MODEL column in bytes (0 when absent).
    pub model_bytes: u64,
}

/// A loaded artifact plus the counters of everything served from it.
#[derive(Debug)]
pub struct FleetService {
    store: FleetStore,
    queries_served: AtomicU64,
    compressed_hits: AtomicU64,
    exact_rescans: AtomicU64,
}

impl FleetService {
    /// Wraps a loaded store for serving.
    #[must_use]
    pub fn new(store: FleetStore) -> FleetService {
        FleetService {
            store,
            queries_served: AtomicU64::new(0),
            compressed_hits: AtomicU64::new(0),
            exact_rescans: AtomicU64::new(0),
        }
    }

    /// The wrapped store.
    #[must_use]
    pub fn store(&self) -> &FleetStore {
        &self.store
    }

    /// Current counter values.
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            queries_served: self.queries_served.load(Ordering::Relaxed),
            compressed_hits: self.compressed_hits.load(Ordering::Relaxed),
            exact_rescans: self.exact_rescans.load(Ordering::Relaxed),
            model_bytes: self.store.model_bytes(),
        }
    }

    /// Answers one request. Never panics on caller input: invalid
    /// parameters come back as [`FleetResponse::Error`].
    pub fn handle(&self, request: &FleetRequest) -> FleetResponse {
        self.queries_served.fetch_add(1, Ordering::Relaxed);
        if let Err(err) = request.validate(self.store.meta().pc_count) {
            return FleetResponse::Error(err);
        }
        match *request {
            FleetRequest::Recommend {
                device_id,
                target_rate,
                min_pcs,
            } => self.recommend(device_id, target_rate, min_pcs as usize),
            FleetRequest::Summary => FleetResponse::Summary(PopulationSummary::from_store(
                &self.store,
                &FleetCostModel::default(),
            )),
            FleetRequest::Fidelity => self.fidelity(),
            FleetRequest::Export => {
                if self.store.has_exact_counts() {
                    FleetResponse::Export(self.store.export())
                } else {
                    FleetResponse::Error(ApiError::runtime(
                        "export needs the exact FAULTS column; this artifact was \
                         compressed without --keep-exact",
                    ))
                }
            }
        }
    }

    fn recommend(&self, device_id: u32, target_rate: f64, min_pcs: usize) -> FleetResponse {
        let row = match self.store.find(device_id) {
            Ok(row) => row,
            Err(err) => return FleetResponse::Error(ApiError::from(&err)),
        };
        if let Some(model) = self.store.model(row) {
            if let Some(rec) =
                query::recommend_model(&self.store, row, &model, target_rate, min_pcs)
            {
                self.compressed_hits.fetch_add(1, Ordering::Relaxed);
                return FleetResponse::Recommendation(rec);
            }
        }
        // No model column, or the envelope abstained: exact evidence.
        self.exact_rescans.fetch_add(1, Ordering::Relaxed);
        if self.store.has_exact_counts() {
            return FleetResponse::Recommendation(query::recommend_exact(
                &self.store,
                row,
                target_rate,
                min_pcs,
            ));
        }
        match query::recommend_rescan(&self.store, row, target_rate, min_pcs) {
            Ok(rec) => FleetResponse::Recommendation(rec),
            Err(err) => FleetResponse::Error(ApiError::from(&err)),
        }
    }

    fn fidelity(&self) -> FleetResponse {
        let models = match self.stored_or_fresh_models() {
            Ok(models) => models,
            Err(err) => return FleetResponse::Error(err),
        };
        match FidelityReport::compute(&self.store, &models) {
            Ok(report) => FleetResponse::Fidelity(report),
            Err(err) => FleetResponse::Error(ApiError::from(&err)),
        }
    }

    fn stored_or_fresh_models(&self) -> Result<Vec<crate::model::DeviceModel>, ApiError> {
        if self.store.has_model() {
            Ok((0..self.store.len())
                .map(|i| self.store.model(i).expect("MODEL column present"))
                .collect())
        } else {
            fit_store(&self.store).map_err(|err| ApiError::from(&err))
        }
    }
}

/// Runs the LDJSON request loop until EOF and returns the session stats.
///
/// # Errors
///
/// Only transport I/O errors abort the loop; request-level problems are
/// answered in-band as [`FleetResponse::Error`] lines.
pub fn serve(
    service: &FleetService,
    input: impl BufRead,
    mut output: impl Write,
) -> std::io::Result<ServeStats> {
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = match serde_json::from_str::<FleetRequest>(&line) {
            Ok(request) => service.handle(&request),
            Err(err) => {
                service.queries_served.fetch_add(1, Ordering::Relaxed);
                FleetResponse::Error(ApiError::parse(format!("bad request line: {err}")))
            }
        };
        let json = response
            .to_json()
            .map_err(|err| std::io::Error::new(std::io::ErrorKind::InvalidData, err.message))?;
        writeln!(output, "{json}")?;
    }
    output.flush()?;
    Ok(service.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::encode;
    use crate::config::FleetConfig;
    use crate::model::compress_store;
    use crate::sweep;
    use hbm_units::Millivolts;

    fn exact_store(devices: u32) -> FleetStore {
        let cfg = FleetConfig {
            devices,
            workers: 1,
            words_per_pc: 16,
            from: Millivolts(1000),
            down_to: Millivolts(860),
            step: Millivolts(20),
            weak_reference: Millivolts(900),
            ..FleetConfig::default()
        };
        let records = sweep::run(&cfg).unwrap().records;
        FleetStore::from_bytes(encode(&cfg, &records)).unwrap()
    }

    /// An all-clean grid: the sweep stops far above every onset voltage,
    /// so every cell is certainly fault-free and the model envelope
    /// decides every query without exact evidence.
    fn clean_store() -> FleetStore {
        let cfg = FleetConfig {
            devices: 3,
            workers: 1,
            words_per_pc: 8,
            from: Millivolts(1000),
            down_to: Millivolts(960),
            step: Millivolts(20),
            weak_reference: Millivolts(980),
            ..FleetConfig::default()
        };
        let records = sweep::run(&cfg).unwrap().records;
        FleetStore::from_bytes(encode(&cfg, &records)).unwrap()
    }

    #[test]
    fn happy_path_serves_without_exact_column_reads() {
        let exact = clean_store();
        let compressed = FleetStore::from_bytes(compress_store(&exact, true).unwrap()).unwrap();
        assert!(compressed.has_exact_counts() && compressed.has_model());
        let service = FleetService::new(compressed);
        let response = service.handle(&FleetRequest::Recommend {
            device_id: 1,
            target_rate: 1e-2,
            min_pcs: 16,
        });
        assert!(
            matches!(response, FleetResponse::Recommendation(_)),
            "{response:?}"
        );
        let summary = service.handle(&FleetRequest::Summary);
        assert!(matches!(summary, FleetResponse::Summary(_)), "{summary:?}");
        let stats = service.stats();
        assert_eq!(stats.queries_served, 2);
        assert_eq!(stats.compressed_hits, 1);
        assert_eq!(stats.exact_rescans, 0);
        assert!(stats.model_bytes > 0);
        // The artifact kept its exact columns, yet neither query read them.
        assert_eq!(service.store().exact_column_reads(), 0);
    }

    #[test]
    fn model_answers_match_exact_answers() {
        let exact = exact_store(4);
        let compressed = FleetStore::from_bytes(compress_store(&exact, false).unwrap()).unwrap();
        let service = FleetService::new(compressed);
        for device_id in 0..4u32 {
            for (target, min_pcs) in [(1e-3, 32u32), (1e-2, 16), (0.5, 1)] {
                let row = exact.find(device_id).unwrap();
                let want = query::recommend_exact(&exact, row, target, min_pcs as usize);
                let got = service.handle(&FleetRequest::Recommend {
                    device_id,
                    target_rate: target,
                    min_pcs,
                });
                assert_eq!(
                    got,
                    FleetResponse::Recommendation(want),
                    "device {device_id} target {target}"
                );
            }
        }
        let stats = service.stats();
        assert_eq!(stats.queries_served, 12);
        assert_eq!(stats.compressed_hits + stats.exact_rescans, 12);
    }

    #[test]
    fn ldjson_loop_answers_in_order_and_survives_garbage() {
        let service = FleetService::new(exact_store(2));
        let input = concat!(
            "{\"Recommend\":{\"device_id\":0,\"target_rate\":0.01,\"min_pcs\":16}}\n",
            "not json\n",
            "\"Summary\"\n",
            "{\"Recommend\":{\"device_id\":0,\"target_rate\":0.0,\"min_pcs\":16}}\n",
        );
        let mut output = Vec::new();
        let stats = serve(&service, input.as_bytes(), &mut output).unwrap();
        let lines: Vec<&str> = std::str::from_utf8(&output).unwrap().lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("{\"Recommendation\":"), "{}", lines[0]);
        assert!(lines[1].contains("\"parse\""), "{}", lines[1]);
        assert!(lines[2].starts_with("{\"Summary\":"), "{}", lines[2]);
        assert!(lines[3].contains("\"config\""), "{}", lines[3]);
        assert_eq!(stats.queries_served, 4);
    }

    #[test]
    fn fidelity_route_works_on_exact_stores_and_fails_cleanly_without_exact() {
        let exact = exact_store(3);
        let service = FleetService::new(exact.clone());
        assert!(matches!(
            service.handle(&FleetRequest::Fidelity),
            FleetResponse::Fidelity(_)
        ));
        let compressed = FleetStore::from_bytes(compress_store(&exact, false).unwrap()).unwrap();
        let service = FleetService::new(compressed);
        match service.handle(&FleetRequest::Fidelity) {
            FleetResponse::Error(err) => assert_eq!(err.kind, "artifact"),
            other => panic!("unexpected: {other:?}"),
        }
        match service.handle(&FleetRequest::Export) {
            FleetResponse::Error(err) => assert_eq!(err.kind, "runtime"),
            other => panic!("unexpected: {other:?}"),
        }
    }
}
