//! The columnar fleet artifact: a little-endian binary replacing JSON as
//! the at-scale result store, with JSON kept as an export path.
//!
//! # Layout (all integers little-endian)
//!
//! ```text
//! offset  field
//!      0  magic            [u8; 4]  = "HBFA"
//!      4  version          u32      = 1
//!      8  device_count     u32
//!     12  pc_count         u32
//!     16  knot_count       u32
//!     20  nominal_mv       u16
//!     22  weak_reference_mv u16
//!     24  base_seed        u64
//!     32  words_per_pc     u64
//!     40  crash_jitter_mv  u16
//!     42  reserved         u16      = 0
//!     44  column_count     u32      = 6
//!     48  weak_rate_threshold f64   (IEEE-754 bits)
//!     56  index_offset     u64      (byte offset of the column index)
//!     64  knot table       u16 × knot_count   (mV, descending)
//!      …  column index     column_count × { tag u32, elem_bytes u32,
//!                                           offset u64, byte_len u64 }
//!      …  columns, each 8-byte aligned
//! ```
//!
//! Columns (fixed element widths, one element per device unless noted):
//!
//! | tag | name      | element | notes                                   |
//! |-----|-----------|---------|-----------------------------------------|
//! | 1   | DEVICE_ID | u32     | ascending                               |
//! | 2   | SEED      | u64     | per-device fault-universe seed          |
//! | 3   | V_MIN_MV  | u16     | 0 = no fault-free knot observed         |
//! | 4   | CRASH_MV  | u16     | per-device crash floor                  |
//! | 5   | WEAK_PCS  | u32     | weak-PC bitmap                          |
//! | 6   | FAULTS    | u16     | device × pc × knot counts, 0xFFFF = crashed |
//!
//! The column index lets a reader seek straight to any column without
//! parsing records, and [`FleetStore::column_bytes`] exposes each column
//! as a zero-copy `&[u8]` view over the loaded (or mmapped) buffer.

use std::ops::Range;
use std::path::Path;

use hbm_units::Millivolts;
use serde::{Deserialize, Serialize};

use crate::config::{FleetConfig, FleetError};
use crate::record::{DeviceRecord, CRASHED_KNOT};

/// Artifact magic bytes.
pub const ARTIFACT_MAGIC: [u8; 4] = *b"HBFA";

/// Format version this build writes and reads.
pub const ARTIFACT_VERSION: u32 = 1;

const HEADER_LEN: usize = 64;
const INDEX_ENTRY_LEN: usize = 24;
const COLUMN_COUNT: usize = 6;

/// Column tags, in index order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum Column {
    /// Device IDs, ascending.
    DeviceId = 1,
    /// Per-device seeds.
    Seed = 2,
    /// Per-device V_min in millivolts.
    VMin = 3,
    /// Per-device crash floors in millivolts.
    Crash = 4,
    /// Per-device weak-PC bitmaps.
    WeakPcs = 5,
    /// Fault-count matrix, device-major then PC-major.
    Faults = 6,
}

const COLUMNS: [(Column, usize); COLUMN_COUNT] = [
    (Column::DeviceId, 4),
    (Column::Seed, 8),
    (Column::VMin, 2),
    (Column::Crash, 2),
    (Column::WeakPcs, 4),
    (Column::Faults, 2),
];

/// Everything the header records about a fleet run — enough to interpret
/// and re-derive the fleet without the originating [`FleetConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArtifactMeta {
    /// Format version.
    pub version: u32,
    /// Devices in the artifact.
    pub device_count: u32,
    /// Pseudo channels per device.
    pub pc_count: u32,
    /// Knots per fault-rate curve.
    pub knot_count: u32,
    /// Nominal supply the guardband is measured against.
    pub nominal_mv: u16,
    /// Weak-PC reference knot.
    pub weak_reference_mv: u16,
    /// Base seed of the fleet.
    pub base_seed: u64,
    /// Words sampled per pseudo channel (the rate denominator is
    /// `words_per_pc × 256`).
    pub words_per_pc: u64,
    /// Crash-floor jitter half-width.
    pub crash_jitter_mv: u16,
    /// Weak-PC rate threshold.
    pub weak_rate_threshold: f64,
}

impl ArtifactMeta {
    /// Meta block for a run of `cfg`.
    #[must_use]
    pub fn from_config(cfg: &FleetConfig) -> ArtifactMeta {
        ArtifactMeta {
            version: ARTIFACT_VERSION,
            device_count: cfg.devices,
            pc_count: u32::from(cfg.geometry.total_pcs()),
            knot_count: cfg.knots().len() as u32,
            nominal_mv: cfg.nominal.as_u32() as u16,
            weak_reference_mv: cfg.weak_reference.as_u32() as u16,
            base_seed: cfg.base_seed,
            words_per_pc: cfg.words_per_pc,
            crash_jitter_mv: cfg.crash_jitter.as_u32() as u16,
            weak_rate_threshold: cfg.weak_rate_threshold,
        }
    }

    /// Bits checked per pseudo channel per knot.
    #[must_use]
    pub fn bits_per_pc(&self) -> u64 {
        self.words_per_pc * 256
    }
}

fn align8(n: usize) -> usize {
    (n + 7) & !7
}

/// Encodes a finished fleet into the columnar binary format.
///
/// # Panics
///
/// Panics when a record's matrix shape disagrees with the config — encode
/// only ever sees records the sweep engine produced.
#[must_use]
pub fn encode(cfg: &FleetConfig, records: &[DeviceRecord]) -> Vec<u8> {
    let meta = ArtifactMeta::from_config(cfg);
    let knots = cfg.knots();
    assert_eq!(records.len(), meta.device_count as usize, "fleet size");

    let n = records.len();
    let cells = n * meta.pc_count as usize * meta.knot_count as usize;
    let knot_table_len = knots.len() * 2;
    let index_offset = align8(HEADER_LEN + knot_table_len);
    let mut column_offsets = [0usize; COLUMN_COUNT];
    let mut cursor = align8(index_offset + COLUMN_COUNT * INDEX_ENTRY_LEN);
    for (slot, (tag, elem)) in COLUMNS.iter().enumerate() {
        column_offsets[slot] = cursor;
        let elems = if *tag == Column::Faults { cells } else { n };
        cursor = align8(cursor + elems * elem);
    }

    let mut out = vec![0u8; cursor];
    out[0..4].copy_from_slice(&ARTIFACT_MAGIC);
    out[4..8].copy_from_slice(&ARTIFACT_VERSION.to_le_bytes());
    out[8..12].copy_from_slice(&meta.device_count.to_le_bytes());
    out[12..16].copy_from_slice(&meta.pc_count.to_le_bytes());
    out[16..20].copy_from_slice(&meta.knot_count.to_le_bytes());
    out[20..22].copy_from_slice(&meta.nominal_mv.to_le_bytes());
    out[22..24].copy_from_slice(&meta.weak_reference_mv.to_le_bytes());
    out[24..32].copy_from_slice(&meta.base_seed.to_le_bytes());
    out[32..40].copy_from_slice(&meta.words_per_pc.to_le_bytes());
    out[40..42].copy_from_slice(&meta.crash_jitter_mv.to_le_bytes());
    out[44..48].copy_from_slice(&(COLUMN_COUNT as u32).to_le_bytes());
    out[48..56].copy_from_slice(&meta.weak_rate_threshold.to_bits().to_le_bytes());
    out[56..64].copy_from_slice(&(index_offset as u64).to_le_bytes());

    for (k, knot) in knots.iter().enumerate() {
        let at = HEADER_LEN + k * 2;
        out[at..at + 2].copy_from_slice(&(knot.as_u32() as u16).to_le_bytes());
    }

    for (slot, (tag, elem)) in COLUMNS.iter().enumerate() {
        let at = index_offset + slot * INDEX_ENTRY_LEN;
        let elems = if *tag == Column::Faults { cells } else { n };
        out[at..at + 4].copy_from_slice(&(*tag as u32).to_le_bytes());
        out[at + 4..at + 8].copy_from_slice(&(*elem as u32).to_le_bytes());
        out[at + 8..at + 16].copy_from_slice(&(column_offsets[slot] as u64).to_le_bytes());
        out[at + 16..at + 24].copy_from_slice(&((elems * elem) as u64).to_le_bytes());
    }

    for (i, rec) in records.iter().enumerate() {
        assert_eq!(
            rec.faults.len(),
            meta.pc_count as usize * meta.knot_count as usize,
            "record matrix shape"
        );
        let put = |out: &mut Vec<u8>, slot: usize, bytes: &[u8]| {
            let elem = COLUMNS[slot].1;
            let at = column_offsets[slot] + i * elem;
            out[at..at + elem].copy_from_slice(bytes);
        };
        put(&mut out, 0, &rec.device_id.to_le_bytes());
        put(&mut out, 1, &rec.seed.to_le_bytes());
        put(&mut out, 2, &rec.v_min_mv.to_le_bytes());
        put(&mut out, 3, &rec.crash_mv.to_le_bytes());
        put(&mut out, 4, &rec.weak_pcs.to_le_bytes());
        let row_len = rec.faults.len() * 2;
        let at = column_offsets[5] + i * row_len;
        for (j, count) in rec.faults.iter().enumerate() {
            out[at + j * 2..at + j * 2 + 2].copy_from_slice(&count.to_le_bytes());
        }
    }
    out
}

/// Encodes and durably writes an artifact, returning the byte count.
///
/// # Errors
///
/// Returns [`FleetError::Io`] when the write fails.
pub fn write_to_path(
    path: impl AsRef<Path>,
    cfg: &FleetConfig,
    records: &[DeviceRecord],
) -> Result<u64, FleetError> {
    let bytes = encode(cfg, records);
    std::fs::write(path.as_ref(), &bytes)
        .map_err(|e| FleetError::Io(format!("{}: {e}", path.as_ref().display())))?;
    Ok(bytes.len() as u64)
}

/// A loaded artifact: owns the raw buffer and serves zero-copy column
/// views plus typed per-device accessors that decode on read.
#[derive(Debug, Clone)]
pub struct FleetStore {
    bytes: Vec<u8>,
    meta: ArtifactMeta,
    knots: Vec<Millivolts>,
    columns: [Range<usize>; COLUMN_COUNT],
}

impl FleetStore {
    /// Parses an artifact buffer (typically `fs::read` or an mmap copy).
    ///
    /// # Errors
    ///
    /// [`FleetError::Artifact`] for truncation, bad magic or inconsistent
    /// bounds; [`FleetError::Version`] for an unsupported format version.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<FleetStore, FleetError> {
        if bytes.len() < HEADER_LEN {
            return Err(FleetError::Artifact(format!(
                "truncated header: {} bytes",
                bytes.len()
            )));
        }
        if bytes[0..4] != ARTIFACT_MAGIC {
            return Err(FleetError::Artifact("bad magic (not an HBFA file)".into()));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("len checked"));
        if version != ARTIFACT_VERSION {
            return Err(FleetError::Version {
                found: version,
                expected: ARTIFACT_VERSION,
            });
        }
        let read_u32 = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
        let read_u16 = |at: usize| u16::from_le_bytes(bytes[at..at + 2].try_into().unwrap());
        let read_u64 = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
        let meta = ArtifactMeta {
            version,
            device_count: read_u32(8),
            pc_count: read_u32(12),
            knot_count: read_u32(16),
            nominal_mv: read_u16(20),
            weak_reference_mv: read_u16(22),
            base_seed: read_u64(24),
            words_per_pc: read_u64(32),
            crash_jitter_mv: read_u16(40),
            weak_rate_threshold: f64::from_bits(read_u64(48)),
        };
        let column_count = read_u32(44) as usize;
        if column_count != COLUMN_COUNT {
            return Err(FleetError::Artifact(format!(
                "expected {COLUMN_COUNT} columns, header lists {column_count}"
            )));
        }
        let knot_table_end = HEADER_LEN + meta.knot_count as usize * 2;
        let index_offset = read_u64(56) as usize;
        let index_end = index_offset + COLUMN_COUNT * INDEX_ENTRY_LEN;
        if knot_table_end > bytes.len() || index_offset < knot_table_end || index_end > bytes.len()
        {
            return Err(FleetError::Artifact("column index out of bounds".into()));
        }
        let knots: Vec<Millivolts> = (0..meta.knot_count as usize)
            .map(|k| Millivolts(u32::from(read_u16(HEADER_LEN + k * 2))))
            .collect();

        let n = meta.device_count as usize;
        let cells = n * meta.pc_count as usize * meta.knot_count as usize;
        let mut columns: [Range<usize>; COLUMN_COUNT] = std::array::from_fn(|_| 0..0);
        for (slot, (tag, elem)) in COLUMNS.iter().enumerate() {
            let at = index_offset + slot * INDEX_ENTRY_LEN;
            let found_tag = read_u32(at);
            let found_elem = read_u32(at + 4) as usize;
            let offset = read_u64(at + 8) as usize;
            let len = read_u64(at + 16) as usize;
            let elems = if *tag == Column::Faults { cells } else { n };
            if found_tag != *tag as u32 || found_elem != *elem || len != elems * elem {
                return Err(FleetError::Artifact(format!(
                    "column {slot}: tag {found_tag} elem {found_elem} len {len} \
                     does not match the declared fleet shape"
                )));
            }
            let end = offset.checked_add(len).filter(|&e| e <= bytes.len());
            let Some(end) = end else {
                return Err(FleetError::Artifact(format!(
                    "column {slot} extends past the buffer"
                )));
            };
            columns[slot] = offset..end;
        }
        Ok(FleetStore {
            bytes,
            meta,
            knots,
            columns,
        })
    }

    /// Loads an artifact file.
    ///
    /// # Errors
    ///
    /// [`FleetError::Io`] when the file cannot be read, otherwise as
    /// [`FleetStore::from_bytes`].
    pub fn open(path: impl AsRef<Path>) -> Result<FleetStore, FleetError> {
        let bytes = std::fs::read(path.as_ref())
            .map_err(|e| FleetError::Io(format!("{}: {e}", path.as_ref().display())))?;
        FleetStore::from_bytes(bytes)
    }

    /// The header meta block.
    #[must_use]
    pub fn meta(&self) -> &ArtifactMeta {
        &self.meta
    }

    /// The knot grid, descending.
    #[must_use]
    pub fn knots(&self) -> &[Millivolts] {
        &self.knots
    }

    /// Devices stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.meta.device_count as usize
    }

    /// `true` when the artifact holds no devices.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Zero-copy view of one column's raw little-endian bytes.
    #[must_use]
    pub fn column_bytes(&self, column: Column) -> &[u8] {
        let slot = COLUMNS
            .iter()
            .position(|(tag, _)| *tag == column)
            .expect("all tags indexed");
        &self.bytes[self.columns[slot].clone()]
    }

    fn scalar<const W: usize>(&self, column: Column, i: usize) -> [u8; W] {
        let col = self.column_bytes(column);
        col[i * W..(i + 1) * W].try_into().expect("fixed width")
    }

    /// Device ID at row `i`.
    #[must_use]
    pub fn device_id(&self, i: usize) -> u32 {
        u32::from_le_bytes(self.scalar::<4>(Column::DeviceId, i))
    }

    /// Seed at row `i`.
    #[must_use]
    pub fn seed(&self, i: usize) -> u64 {
        u64::from_le_bytes(self.scalar::<8>(Column::Seed, i))
    }

    /// V_min at row `i` in millivolts (0 = none observed).
    #[must_use]
    pub fn v_min_mv(&self, i: usize) -> u16 {
        u16::from_le_bytes(self.scalar::<2>(Column::VMin, i))
    }

    /// Crash floor at row `i` in millivolts.
    #[must_use]
    pub fn crash_mv(&self, i: usize) -> u16 {
        u16::from_le_bytes(self.scalar::<2>(Column::Crash, i))
    }

    /// Weak-PC bitmap at row `i`.
    #[must_use]
    pub fn weak_pcs(&self, i: usize) -> u32 {
        u32::from_le_bytes(self.scalar::<4>(Column::WeakPcs, i))
    }

    /// Fault count of `(row, pc, knot)`; [`CRASHED_KNOT`] marks a crashed
    /// knot.
    #[must_use]
    pub fn fault(&self, i: usize, pc: usize, knot: usize) -> u16 {
        let stride = self.meta.pc_count as usize * self.meta.knot_count as usize;
        let at = i * stride + pc * self.meta.knot_count as usize + knot;
        let col = self.column_bytes(Column::Faults);
        u16::from_le_bytes(col[at * 2..at * 2 + 2].try_into().expect("fixed width"))
    }

    /// Row index of `device_id` (rows are sorted by device ID).
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownDevice`] when absent.
    pub fn find(&self, device_id: u32) -> Result<usize, FleetError> {
        let n = self.len();
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.device_id(mid) < device_id {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo < n && self.device_id(lo) == device_id {
            Ok(lo)
        } else {
            Err(FleetError::UnknownDevice(device_id))
        }
    }

    /// Decodes row `i` back into a [`DeviceRecord`].
    #[must_use]
    pub fn record(&self, i: usize) -> DeviceRecord {
        let stride = self.meta.pc_count as usize * self.meta.knot_count as usize;
        let col = self.column_bytes(Column::Faults);
        let faults = (0..stride)
            .map(|j| {
                let at = (i * stride + j) * 2;
                u16::from_le_bytes(col[at..at + 2].try_into().expect("fixed width"))
            })
            .collect();
        DeviceRecord {
            device_id: self.device_id(i),
            seed: self.seed(i),
            v_min_mv: self.v_min_mv(i),
            crash_mv: self.crash_mv(i),
            weak_pcs: self.weak_pcs(i),
            faults,
        }
    }

    /// Decodes every row.
    #[must_use]
    pub fn records(&self) -> Vec<DeviceRecord> {
        (0..self.len()).map(|i| self.record(i)).collect()
    }

    /// The JSON export view of this artifact.
    #[must_use]
    pub fn export(&self) -> FleetExport {
        FleetExport::build(&self.meta, &self.knots, &self.records())
    }
}

/// The JSON export: the artifact's full content as rates (exact dyadic
/// `count / (words_per_pc × 256)` quotients), with `null` marking crashed
/// knots. Kept as the interchange path; the binary is the at-scale store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetExport {
    /// Header fields, echoed.
    pub meta: ArtifactMeta,
    /// Knot grid in millivolts, descending.
    pub knots_mv: Vec<u16>,
    /// Per-device export rows, ascending by device ID.
    pub fleet: Vec<DeviceExport>,
}

/// One device's JSON export row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceExport {
    /// Fleet position.
    pub device_id: u32,
    /// Fault-universe seed.
    pub seed: u64,
    /// Lowest fault-free knot (0 = none).
    pub v_min_mv: u16,
    /// Crash floor.
    pub crash_mv: u16,
    /// Weak-PC bitmap.
    pub weak_pcs: u32,
    /// Union fault-rate curve per pseudo channel; `null` = crashed knot.
    pub rates: Vec<Vec<Option<f64>>>,
}

impl FleetExport {
    /// Builds the export view of `records` under `cfg`.
    #[must_use]
    pub fn from_records(cfg: &FleetConfig, records: &[DeviceRecord]) -> FleetExport {
        let knots = cfg.knots();
        FleetExport::build(&ArtifactMeta::from_config(cfg), &knots, records)
    }

    fn build(meta: &ArtifactMeta, knots: &[Millivolts], records: &[DeviceRecord]) -> FleetExport {
        let bits = meta.bits_per_pc() as f64;
        let fleet = records
            .iter()
            .map(|rec| {
                let rates = (0..meta.pc_count as usize)
                    .map(|pc| {
                        (0..knots.len())
                            .map(|k| {
                                let count = rec.faults[pc * knots.len() + k];
                                if count == CRASHED_KNOT {
                                    None
                                } else {
                                    Some(f64::from(count) / bits)
                                }
                            })
                            .collect()
                    })
                    .collect();
                DeviceExport {
                    device_id: rec.device_id,
                    seed: rec.seed,
                    v_min_mv: rec.v_min_mv,
                    crash_mv: rec.crash_mv,
                    weak_pcs: rec.weak_pcs,
                    rates,
                }
            })
            .collect();
        FleetExport {
            meta: *meta,
            knots_mv: knots.iter().map(|k| k.as_u32() as u16).collect(),
            fleet,
        }
    }

    /// Serializes the export as one JSON document plus trailing newline.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut json = serde_json::to_string(self).expect("export serializes");
        json.push('\n');
        json
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep;

    fn artifact_fixture() -> (FleetConfig, Vec<DeviceRecord>) {
        let cfg = FleetConfig {
            devices: 3,
            workers: 1,
            words_per_pc: 8,
            from: Millivolts(980),
            down_to: Millivolts(900),
            step: Millivolts(40),
            weak_reference: Millivolts(900),
            ..FleetConfig::default()
        };
        let records = sweep::run(&cfg).unwrap().records;
        (cfg, records)
    }

    #[test]
    fn encode_decode_round_trips() {
        let (cfg, records) = artifact_fixture();
        let bytes = encode(&cfg, &records);
        let store = FleetStore::from_bytes(bytes).unwrap();
        assert_eq!(store.records(), records);
        assert_eq!(store.knots(), cfg.knots());
        assert_eq!(store.meta().base_seed, cfg.base_seed);
        assert_eq!(store.export(), FleetExport::from_records(&cfg, &records));
    }

    #[test]
    fn columns_are_fixed_width_views() {
        let (cfg, records) = artifact_fixture();
        let store = FleetStore::from_bytes(encode(&cfg, &records)).unwrap();
        assert_eq!(store.column_bytes(Column::DeviceId).len(), 3 * 4);
        assert_eq!(store.column_bytes(Column::Seed).len(), 3 * 8);
        let cells = 3 * usize::from(cfg.geometry.total_pcs()) * cfg.knots().len();
        assert_eq!(store.column_bytes(Column::Faults).len(), cells * 2);
        assert_eq!(store.find(2).unwrap(), 2);
        assert!(matches!(store.find(9), Err(FleetError::UnknownDevice(9))));
    }

    #[test]
    fn bad_magic_and_truncation_are_artifact_errors() {
        let (cfg, records) = artifact_fixture();
        let bytes = encode(&cfg, &records);
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        assert!(matches!(
            FleetStore::from_bytes(wrong),
            Err(FleetError::Artifact(_))
        ));
        assert!(matches!(
            FleetStore::from_bytes(bytes[..32].to_vec()),
            Err(FleetError::Artifact(_))
        ));
    }

    #[test]
    fn version_bump_is_rejected() {
        let (cfg, records) = artifact_fixture();
        let mut bytes = encode(&cfg, &records);
        bytes[4..8].copy_from_slice(&(ARTIFACT_VERSION + 1).to_le_bytes());
        assert_eq!(
            FleetStore::from_bytes(bytes).unwrap_err(),
            FleetError::Version {
                found: ARTIFACT_VERSION + 1,
                expected: ARTIFACT_VERSION,
            }
        );
    }
}
