//! The versioned, typed fleet query surface.
//!
//! Every way of asking a fleet artifact a question — the one-shot
//! `hbmctl fleet` subcommands and the long-lived `hbmctl serve` loop —
//! routes through one request/response pair: [`FleetRequest`] in,
//! [`FleetResponse`] out, serialized with the vendored serde shim as
//! externally-tagged JSON (`{"Recommend": {...}}`, `"Summary"`). The CLI
//! replay test pins that the two transports stay byte-identical.
//!
//! Validation lives here too, so malformed queries are rejected the same
//! way regardless of transport: an [`ApiError`] with `kind: "config"`
//! maps to exit code 2 and a usage block in the CLI, every other kind to
//! exit code 1.

use serde::{Deserialize, Serialize};

use crate::artifact::FleetExport;
use crate::config::FleetError;
use crate::model::FidelityReport;
use crate::population::PopulationSummary;
use crate::query::Recommendation;

/// Version of the request/response schema. Bumped when a variant is
/// added, removed, or its payload changes shape.
pub const API_VERSION: u32 = 1;

/// One typed fleet query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FleetRequest {
    /// Recommend an operating voltage for one device: the lowest knot at
    /// or above the crash floor that keeps ≥ `min_pcs` pseudo channels at
    /// a union fault rate ≤ `target_rate`.
    Recommend {
        /// Device to look up.
        device_id: u32,
        /// Highest acceptable union fault rate per pseudo channel,
        /// strictly inside `(0, 1)` — an exact-zero or exact-one target
        /// degenerates to the V_min / crash landmarks already stored in
        /// the artifact's scalar columns.
        target_rate: f64,
        /// Minimum pseudo channels that must stay usable.
        min_pcs: u32,
    },
    /// Population summary from the scalar columns.
    Summary,
    /// Fidelity report of the compressed models against the exact
    /// columns (requires both in the artifact).
    Fidelity,
    /// Full JSON export of the exact fault map.
    Export,
}

impl FleetRequest {
    /// Validates request parameters against an artifact's geometry.
    ///
    /// # Errors
    ///
    /// An [`ApiError`] with `kind: "config"` describing the violation.
    pub fn validate(&self, pc_count: u32) -> Result<(), ApiError> {
        match *self {
            FleetRequest::Recommend {
                target_rate,
                min_pcs,
                ..
            } => {
                if !(target_rate > 0.0 && target_rate < 1.0) {
                    return Err(ApiError::config(format!(
                        "target rate must be strictly inside (0, 1), got {target_rate}; \
                         use the artifact's V_min column for zero tolerance and its \
                         crash column for the no-tolerance bound"
                    )));
                }
                if min_pcs > pc_count {
                    return Err(ApiError::config(format!(
                        "min-pcs {min_pcs} exceeds the artifact's {pc_count} pseudo channels"
                    )));
                }
                Ok(())
            }
            FleetRequest::Summary | FleetRequest::Fidelity | FleetRequest::Export => Ok(()),
        }
    }
}

/// The answer to one [`FleetRequest`], variant-matched to the request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FleetResponse {
    /// Answer to [`FleetRequest::Recommend`].
    Recommendation(Recommendation),
    /// Answer to [`FleetRequest::Summary`].
    Summary(PopulationSummary),
    /// Answer to [`FleetRequest::Fidelity`].
    Fidelity(FidelityReport),
    /// Answer to [`FleetRequest::Export`].
    Export(FleetExport),
    /// The request could not be answered.
    Error(ApiError),
}

impl FleetResponse {
    /// The canonical wire form: one compact JSON document, no trailing
    /// newline. Both transports — the `serve` LDJSON loop and the
    /// one-shot `--format json` subcommands — emit exactly this, so the
    /// replay test can compare them byte for byte.
    ///
    /// # Errors
    ///
    /// Serialization failures surface as a `runtime` [`ApiError`].
    pub fn to_json(&self) -> Result<String, ApiError> {
        serde_json::to_string(self).map_err(|err| ApiError::runtime(err.to_string()))
    }
}

/// A typed error reply.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ApiError {
    /// Machine-readable class: `config` (caller error, CLI exit 2),
    /// `unknown-device`, `artifact`, `version`, `io`, `parse`, `runtime`.
    pub kind: String,
    /// Human-readable description.
    pub message: String,
}

impl ApiError {
    /// A caller error: malformed parameters (CLI exit 2).
    #[must_use]
    pub fn config(message: impl Into<String>) -> ApiError {
        ApiError {
            kind: "config".into(),
            message: message.into(),
        }
    }

    /// A request line that was not valid request JSON.
    #[must_use]
    pub fn parse(message: impl Into<String>) -> ApiError {
        ApiError {
            kind: "parse".into(),
            message: message.into(),
        }
    }

    /// A serving-side failure unrelated to the request's shape.
    #[must_use]
    pub fn runtime(message: impl Into<String>) -> ApiError {
        ApiError {
            kind: "runtime".into(),
            message: message.into(),
        }
    }
}

impl From<&FleetError> for ApiError {
    fn from(err: &FleetError) -> ApiError {
        let kind = match err {
            FleetError::Config(_) => "config",
            FleetError::UnknownDevice(_) => "unknown-device",
            FleetError::Artifact(_) => "artifact",
            FleetError::Version { .. } => "version",
            FleetError::Io(_) => "io",
        };
        ApiError {
            kind: kind.into(),
            message: err.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_json() {
        let requests = [
            FleetRequest::Recommend {
                device_id: 3,
                target_rate: 1e-3,
                min_pcs: 16,
            },
            FleetRequest::Summary,
            FleetRequest::Fidelity,
            FleetRequest::Export,
        ];
        for req in requests {
            let json = serde_json::to_string(&req).unwrap();
            let back: FleetRequest = serde_json::from_str(&json).unwrap();
            assert_eq!(back, req, "{json}");
        }
        assert_eq!(
            serde_json::to_string(&FleetRequest::Summary).unwrap(),
            "\"Summary\""
        );
    }

    #[test]
    fn boundary_targets_are_config_errors() {
        for target in [0.0, 1.0, -0.25, 1.5, f64::NAN] {
            let req = FleetRequest::Recommend {
                device_id: 0,
                target_rate: target,
                min_pcs: 1,
            };
            let err = req.validate(32).unwrap_err();
            assert_eq!(err.kind, "config", "target {target}");
        }
        let req = FleetRequest::Recommend {
            device_id: 0,
            target_rate: 0.5,
            min_pcs: 33,
        };
        assert_eq!(req.validate(32).unwrap_err().kind, "config");
        assert!(req.validate(64).is_ok());
    }

    #[test]
    fn fleet_errors_map_to_kinds() {
        assert_eq!(
            ApiError::from(&FleetError::Config("x".into())).kind,
            "config"
        );
        assert_eq!(
            ApiError::from(&FleetError::UnknownDevice(9)).kind,
            "unknown-device"
        );
        assert_eq!(
            ApiError::from(&FleetError::Version {
                found: 3,
                expected: 2
            })
            .kind,
            "version"
        );
    }
}
