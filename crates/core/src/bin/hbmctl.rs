//! `hbmctl` — host-side control tool for the simulated HBM undervolting
//! platform, mirroring the custom host interface the study built to drive
//! its experiments.
//!
//! Every measurement command is dispatched through the unified
//! [`Experiment`] trait and rendered through [`Render`], so the tool is a
//! thin shell: build a platform, pick an experiment, pick an output
//! format.
//!
//! ```text
//! hbmctl guardband   [--seed N] [--workers N] [--format text|csv|json]
//! hbmctl power-sweep [--seed N] [--workers N] [--format text|csv|json]
//! hbmctl reliability [--seed N] [--workers N] [--format text|csv|json]
//!                    [--from MV] [--to MV] [--step MV]
//!                    [--batch N] [--words N] [--sample N]
//!                    [--exec cached|traffic]
//!                    [--kernel scalar|bitsliced|auto]
//!                    [--fault-field per-voltage|coupled]
//! hbmctl sweep       [reliability flags] [--checkpoint FILE] [--resume]
//!                    [--retries N] [--point-deadline MS] [--v-crash MV]
//!                    [--transient-prob P] [--transient-window MV]
//!                    [--trace-file FILE] [--progress]
//! hbmctl trade-off   [--seed N] [--format text|csv|json]
//! hbmctl governor    [--seed N] [--workers N] [--format text|csv|json]
//!                    [--workload throughput|latency|both]
//!                    [--latency-budget NS] [--bandwidth-target GBPS]
//!                    [--step MV] [--floor MV] [--margin MV] [--canary-words N]
//! hbmctl fault-map   [--seed N] [--out FILE]
//! hbmctl plan        [--seed N] --capacity-gb G --tolerance RATE
//!                    [--workload throughput|latency]
//!                    [--latency-budget NS] [--min-bandwidth GBPS]
//! hbmctl fleet sweep   [--devices N] [--seed N] [--workers N]
//!                      [--from MV] [--to MV] [--step MV] [--words N]
//!                      [--weak-reference MV] [--out FILE] [--export FILE]
//! hbmctl fleet query   --artifact FILE --device ID
//!                      [--target-rate R] [--min-pcs N] [--format text|json]
//! hbmctl fleet export  --artifact FILE [--out FILE]
//! hbmctl fleet summary --artifact FILE [--format text|csv|json]
//! hbmctl fleet compress --artifact FILE --out FILE [--keep-exact]
//! hbmctl fleet fidelity --artifact FILE [--format text|json]
//! hbmctl serve         --artifact FILE [--serve-workers N] [--rescan-cache-mb M]
//! ```
//!
//! Every fleet question — one-shot subcommand or long-lived `serve` loop —
//! routes through the same typed [`FleetRequest`]/[`FleetResponse`] pair
//! from `hbm_fleet::api`, so the two transports cannot drift.
//!
//! Exit codes: `0` success, `1` runtime failure (an experiment, device or
//! I/O error), `2` configuration/usage error (bad flags, bad values —
//! printed with the usage text).

use std::process::ExitCode;

use hbm_device::TransientCrashModel;
use hbm_faults::FaultMap;
use hbm_fleet::{
    ApiError, ArtifactMeta, FleetConfig, FleetCostModel, FleetError, FleetExport, FleetRequest,
    FleetResponse, FleetService, FleetStore, PopulationSummary,
};
use hbm_power::HbmPowerModel;
use hbm_traffic::DataPattern;
use hbm_undervolt::report::{to_json, Render};
use hbm_undervolt::{
    summarize, ExecutionMode, Experiment, FaultFieldMode, GovernorConfig, GovernorScenario,
    GuardbandFinder, JsonlSink, KernelBackend, PlanRequest, Platform, PowerSweep, ProgressSink,
    ReliabilityConfig, ReliabilityTester, SweepCheckpoint, SweepConfig, SystemClock, Telemetry,
    TestScope, TradeOffAnalysis, VoltageSweep, WorkloadMode,
};
use hbm_units::{Millivolts, Ratio};

/// Flags that take no value.
const BOOLEAN_FLAGS: &[&str] = &["resume", "progress", "keep-exact"];

/// A CLI failure, split by blame so `main` can pick the exit code:
/// configuration/usage problems exit 2 (with the usage text), runtime
/// failures exit 1.
enum CliError {
    Config(String),
    Runtime(String),
}

impl CliError {
    fn config(message: impl Into<String>) -> Self {
        CliError::Config(message.into())
    }

    fn runtime(message: impl Into<String>) -> Self {
        CliError::Runtime(message.into())
    }
}

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse() -> Result<Self, CliError> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut iter = std::env::args().skip(1);
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if BOOLEAN_FLAGS.contains(&name) {
                    flags.push((name.to_owned(), "true".to_owned()));
                    continue;
                }
                let value = iter
                    .next()
                    .ok_or_else(|| CliError::config(format!("flag --{name} needs a value")))?;
                flags.push((name.to_owned(), value));
            } else {
                positional.push(arg);
            }
        }
        Ok(Args { positional, flags })
    }

    fn flag<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.flags.iter().find(|(n, _)| n == name) {
            None => Ok(default),
            Some((_, raw)) => raw
                .parse()
                .map_err(|_| CliError::config(format!("invalid value for --{name}: {raw}"))),
        }
    }

    fn optional<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, CliError> {
        match self.flags.iter().find(|(n, _)| n == name) {
            None => Ok(None),
            Some((_, raw)) => raw
                .parse()
                .map(Some)
                .map_err(|_| CliError::config(format!("invalid value for --{name}: {raw}"))),
        }
    }

    fn required<T: std::str::FromStr>(&self, name: &str) -> Result<T, CliError> {
        let (_, raw) = self
            .flags
            .iter()
            .find(|(n, _)| n == name)
            .ok_or_else(|| CliError::config(format!("missing required flag --{name}")))?;
        raw.parse()
            .map_err(|_| CliError::config(format!("invalid value for --{name}: {raw}")))
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Config(message)) => {
            eprintln!("hbmctl: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
        Err(CliError::Runtime(message)) => {
            eprintln!("hbmctl: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  hbmctl guardband   [--seed N] [--workers N] [--format text|csv|json]
  hbmctl power-sweep [--seed N] [--workers N] [--format text|csv|json]
  hbmctl reliability [--seed N] [--workers N] [--format text|csv|json]
                     [--from MV] [--to MV] [--step MV] [--batch N] [--words N] [--sample N]
                     [--exec cached|traffic] [--kernel scalar|bitsliced|auto]
                     [--fault-field per-voltage|coupled]
  hbmctl sweep       [reliability flags] [--checkpoint FILE] [--resume]
                     [--retries N] [--point-deadline MS] [--v-crash MV]
                     [--transient-prob P] [--transient-window MV]
                     [--trace-file FILE] [--progress]
  hbmctl trade-off   [--seed N] [--format text|csv|json]
  hbmctl governor    [--seed N] [--workers N] [--format text|csv|json]
                     [--workload throughput|latency|both]
                     [--latency-budget NS] [--bandwidth-target GBPS]
                     [--step MV] [--floor MV] [--margin MV] [--canary-words N]
  hbmctl fault-map   [--seed N] [--out FILE]
  hbmctl plan        [--seed N] --capacity-gb G --tolerance RATE
                     [--workload throughput|latency]
                     [--latency-budget NS] [--min-bandwidth GBPS]
  hbmctl fleet sweep   [--devices N] [--seed N] [--workers N] [--from MV] [--to MV] [--step MV]
                       [--words N] [--weak-reference MV] [--out FILE] [--export FILE]
  hbmctl fleet query   --artifact FILE --device ID [--target-rate R] [--min-pcs N]
                       [--format text|json]
  hbmctl fleet export  --artifact FILE [--out FILE]
  hbmctl fleet summary --artifact FILE [--format text|csv|json]
  hbmctl fleet compress --artifact FILE --out FILE [--keep-exact]
  hbmctl fleet fidelity --artifact FILE [--format text|json]
  hbmctl serve         --artifact FILE [--serve-workers N] [--rescan-cache-mb M]";

fn run() -> Result<(), CliError> {
    let args = Args::parse()?;
    let command = args
        .positional
        .first()
        .map(String::as_str)
        .ok_or_else(|| CliError::config("no command given"))?;
    let seed: u64 = args.flag("seed", 7)?;
    let workers: usize = args.flag("workers", 1)?;

    match command {
        "guardband" => dispatch(&GuardbandFinder::new(), seed, workers, &args),
        "power-sweep" => dispatch(&PowerSweep::date21(), seed, workers, &args),
        "reliability" => {
            let tester = ReliabilityTester::new(reliability_config(&args)?)
                .map_err(|e| CliError::config(e.to_string()))?;
            dispatch(&tester, seed, workers, &args)
        }
        "sweep" => supervised_sweep(seed, workers, &args),
        "trade-off" => dispatch(&trade_off(seed), seed, workers, &args),
        "governor" => governor(seed, workers, &args),
        "fault-map" => fault_map(seed, &args),
        "plan" => plan(seed, &args),
        "fleet" => fleet(seed, &args),
        "serve" => serve_loop(&args),
        other => Err(CliError::config(format!("unknown command: {other}"))),
    }
}

fn platform(seed: u64, workers: usize) -> Platform {
    Platform::builder().seed(seed).workers(workers).build()
}

/// Prints a report in the requested `--format`.
fn render<R: Render + serde::Serialize>(report: &R, format: &str) -> Result<(), CliError> {
    match format {
        "text" => print!("{}", report.to_text()),
        "csv" => print!("{}", report.to_csv()),
        "json" => println!(
            "{}",
            to_json(report).map_err(|e| CliError::runtime(e.to_string()))?
        ),
        other => {
            return Err(CliError::config(format!(
                "unknown format: {other} (use text, csv or json)"
            )))
        }
    }
    Ok(())
}

/// Runs any experiment and prints its report in the requested format —
/// the whole tool funnels through this one generic function.
fn dispatch<E>(experiment: &E, seed: u64, workers: usize, args: &Args) -> Result<(), CliError>
where
    E: Experiment,
    E::Report: Render + serde::Serialize,
{
    let format: String = args.flag("format", "text".to_owned())?;
    let mut p = platform(seed, workers);
    eprintln!(
        "hbmctl: {} (seed {seed}, {} worker{})",
        experiment.name(),
        p.workers(),
        if p.workers() == 1 { "" } else { "s" }
    );
    let report = experiment
        .run(&mut p)
        .map_err(|e| CliError::runtime(e.to_string()))?;
    render(&report, &format)
}

/// The measurement flags shared by `reliability` and `sweep`. Voltages are
/// parsed as typed [`Millivolts`] ("980" or "980mV").
fn reliability_config(args: &Args) -> Result<ReliabilityConfig, CliError> {
    let from: Millivolts = args.flag("from", Millivolts(980))?;
    let to: Millivolts = args.flag("to", Millivolts(850))?;
    let step: Millivolts = args.flag("step", Millivolts(10))?;
    let batch: usize = args.flag("batch", 1)?;
    let words: u64 = args.flag("words", 1024)?;
    let sample: Option<u64> = args.optional("sample")?;
    let exec: String = args.flag("exec", "cached".to_owned())?;
    let mode = match exec.as_str() {
        "cached" => ExecutionMode::CachedMasks,
        "traffic" => ExecutionMode::Traffic,
        other => {
            return Err(CliError::config(format!(
                "unknown execution mode: {other} (use cached or traffic)"
            )))
        }
    };
    let kernel_token: String = args.flag("kernel", "auto".to_owned())?;
    let kernel = KernelBackend::from_token(&kernel_token).ok_or_else(|| {
        CliError::config(format!(
            "unknown kernel: {kernel_token} (use scalar, bitsliced or auto)"
        ))
    })?;
    let field_token: String = args.flag("fault-field", "per-voltage".to_owned())?;
    let fault_field = FaultFieldMode::from_token(&field_token).ok_or_else(|| {
        CliError::config(format!(
            "unknown fault field: {field_token} (use per-voltage or coupled)"
        ))
    })?;

    Ok(ReliabilityConfig {
        sweep: VoltageSweep::new(from, to, step).map_err(|e| CliError::config(e.to_string()))?,
        batch_size: batch,
        patterns: vec![DataPattern::AllOnes, DataPattern::AllZeros],
        scope: TestScope::EntireHbm,
        words_per_pc: Some(words),
        sample_words: sample,
        mode,
        fault_field,
        kernel,
        carry_forward: true,
    })
}

/// `hbmctl sweep`: the crash-aware resilient runtime — checkpointed
/// resume, retry with backoff, per-port quarantine — over the reliability
/// measurement, assembled through the unified [`SweepConfig`].
fn supervised_sweep(seed: u64, workers: usize, args: &Args) -> Result<(), CliError> {
    let format: String = args.flag("format", "text".to_owned())?;
    let reliability = reliability_config(args)?;
    let fault_field = reliability.fault_field;
    let kernel = reliability.kernel;
    let mut config = SweepConfig::from_reliability(reliability)
        .seed(seed)
        .workers(workers)
        .retries(args.flag("retries", 3u32)?);
    if let Some(deadline) = args.optional::<u64>("point-deadline")? {
        config = config.point_deadline_ms(deadline);
    }
    if let Some(v_crash) = args.optional::<Millivolts>("v-crash")? {
        config = config.v_crash(v_crash);
    }
    if let Some(probability) = args.optional::<f64>("transient-prob")? {
        if !(0.0..=1.0).contains(&probability) {
            return Err(CliError::config(
                "--transient-prob must be a probability in [0, 1]",
            ));
        }
        let window: Millivolts = args.flag("transient-window", Millivolts(50))?;
        config = config.transient_crashes(TransientCrashModel::new(probability, window));
    }
    let checkpoint_path = args.optional::<String>("checkpoint")?;
    if let Some(path) = &checkpoint_path {
        config = config.checkpoint(path.clone());
    }
    let resume: bool = args.flag("resume", false)?;
    config = config.resume(resume);
    if resume {
        if let Some(path) = &checkpoint_path {
            check_resume_fault_field(path, fault_field)?;
            check_resume_kernel(path, kernel)?;
        }
    }

    // Observation: --trace-file streams the typed event log as JSONL (in
    // diffable mode, so traces for one campaign compare byte-for-byte
    // across runs and worker counts); --progress narrates to stderr.
    let mut telemetry = Telemetry::new();
    if let Some(path) = args.optional::<String>("trace-file")? {
        let file = std::fs::File::create(&path)
            .map_err(|e| CliError::runtime(format!("creating {path}: {e}")))?;
        telemetry.add_observer(Box::new(JsonlSink::diffable(std::io::BufWriter::new(file))));
    }
    if args.flag("progress", false)? {
        telemetry.add_observer(Box::new(ProgressSink::new(std::io::stderr())));
    }

    let supervisor = config
        .build_supervisor()
        .map_err(|e| CliError::config(e.to_string()))?;
    let mut p = config.build_platform();
    let points = supervisor.tester().config().sweep.len();
    eprintln!(
        "hbmctl: {} (seed {seed}, {} worker{}, {points} point{}{})",
        supervisor.name(),
        p.workers(),
        if p.workers() == 1 { "" } else { "s" },
        if points == 1 { "" } else { "s" },
        if resume { ", resuming" } else { "" }
    );
    let result = supervisor.run_observed(&mut p, &mut SystemClock::new(), &telemetry);
    telemetry.finish();
    let report = result.map_err(|e| CliError::runtime(e.to_string()))?;
    render(&report, &format)?;
    eprintln!("hbmctl: {}", summarize(&report));
    Ok(())
}

/// Rejects `--resume` when the checkpoint on disk was recorded under a
/// different `--fault-field` mode: the two fields assign faults to
/// different concrete bits, so splicing their points into one report
/// would silently mix incompatible measurements. This is a *usage*
/// mistake (exit 2); a file that does not parse as a current-format
/// checkpoint is left for the supervisor's own validation, which reports
/// it as a runtime error (exit 1).
fn check_resume_fault_field(path: &str, requested: FaultFieldMode) -> Result<(), CliError> {
    let Ok(contents) = std::fs::read_to_string(path) else {
        return Ok(());
    };
    let Ok(checkpoint) = serde_json::from_str::<SweepCheckpoint>(&contents) else {
        return Ok(());
    };
    let Ok(config) = serde_json::from_str::<ReliabilityConfig>(&checkpoint.config_json) else {
        return Ok(());
    };
    if config.fault_field != requested {
        return Err(CliError::config(format!(
            "--resume: checkpoint {path} was recorded with --fault-field {}, \
             but this run requests --fault-field {}",
            config.fault_field.as_token(),
            requested.as_token()
        )));
    }
    Ok(())
}

/// Rejects `--resume` when the checkpoint on disk was recorded under a
/// different `--kernel` backend. All backends are bit-identical, but a
/// resumed campaign must stay reproducible by its recorded configuration
/// alone; like a fault-field mix, this is a *usage* mistake (exit 2), and
/// an unreadable checkpoint is left to the supervisor's own validation.
fn check_resume_kernel(path: &str, requested: KernelBackend) -> Result<(), CliError> {
    let Ok(contents) = std::fs::read_to_string(path) else {
        return Ok(());
    };
    let Ok(checkpoint) = serde_json::from_str::<SweepCheckpoint>(&contents) else {
        return Ok(());
    };
    if checkpoint.kernel != requested.as_token() {
        return Err(CliError::config(format!(
            "--resume: checkpoint {path} was recorded with --kernel {}, \
             but this run requests --kernel {}",
            checkpoint.kernel,
            requested.as_token()
        )));
    }
    Ok(())
}

fn trade_off(seed: u64) -> TradeOffAnalysis {
    let p = platform(seed, 1);
    let map = FaultMap::from_predictor(
        p.full_scale_predictor(),
        Millivolts(980),
        Millivolts(810),
        Millivolts(10),
    );
    TradeOffAnalysis::new(map, HbmPowerModel::date21())
}

/// The latency budget the two-row `--workload both` scenario descends
/// with when none is given: a little above the nominal random-access
/// latency (≈30 ns), so the latency row trips on timing stretch inside
/// the fault-free guardband while the throughput row descends to flips.
const DEFAULT_LATENCY_BUDGET_NS: f64 = 33.0;

/// `hbmctl governor`: closed-loop descents as an [`Experiment`]. The
/// default `--workload both` runs the canonical latency-vs-throughput
/// scenario; a single mode runs one descent under that workload's
/// pattern and constraints.
fn governor(seed: u64, workers: usize, args: &Args) -> Result<(), CliError> {
    let base = GovernorConfig {
        step: args.flag("step", Millivolts(10))?,
        canary_words: args.flag("canary-words", 512u64)?,
        floor: args.flag("floor", Millivolts(840))?,
        margin: args.flag("margin", Millivolts(10))?,
        latency_budget_ns: args.optional("latency-budget")?,
        bandwidth_target_gbps: args.optional("bandwidth-target")?,
        ..GovernorConfig::default()
    };
    let workload: String = args.flag("workload", "both".to_owned())?;
    let scenario = match workload.as_str() {
        "both" => GovernorScenario::latency_vs_throughput(
            base,
            base.latency_budget_ns.unwrap_or(DEFAULT_LATENCY_BUDGET_NS),
        ),
        token => {
            let mode = WorkloadMode::from_token(token).ok_or_else(|| {
                CliError::config(format!(
                    "unknown workload: {token} (use throughput, latency or both)"
                ))
            })?;
            GovernorScenario::new().with_variant(
                token,
                GovernorConfig {
                    workload: mode,
                    ..base
                },
            )
        }
    };
    dispatch(&scenario, seed, workers, args)
}

fn fault_map(seed: u64, args: &Args) -> Result<(), CliError> {
    let p = platform(seed, 1);
    let map = FaultMap::from_predictor(
        p.full_scale_predictor(),
        Millivolts(980),
        Millivolts(810),
        Millivolts(10),
    );
    let json = to_json(&map).map_err(|e| CliError::runtime(e.to_string()))?;
    match args.flags.iter().find(|(n, _)| n == "out") {
        Some((_, path)) => {
            std::fs::write(path, &json)
                .map_err(|e| CliError::runtime(format!("writing {path}: {e}")))?;
            println!(
                "fault map for seed {seed}: {} PCs x {} voltages -> {path}",
                map.profiles.len(),
                map.voltages.len()
            );
        }
        None => println!("{json}"),
    }
    Ok(())
}

fn plan(seed: u64, args: &Args) -> Result<(), CliError> {
    let capacity_gb: f64 = args.required("capacity-gb")?;
    let tolerance: f64 = args.required("tolerance")?;
    if !(0.0..=1.0).contains(&tolerance) {
        return Err(CliError::config("tolerance must be a fraction in [0, 1]"));
    }

    let workload_token: String = args.flag("workload", "throughput".to_owned())?;
    let mode = WorkloadMode::from_token(&workload_token).ok_or_else(|| {
        CliError::config(format!(
            "unknown workload: {workload_token} (use throughput or latency)"
        ))
    })?;

    let analysis = trade_off(seed);
    let bytes = (capacity_gb * (1u64 << 30) as f64) as u64;
    let mut request = PlanRequest::new(bytes, Ratio(tolerance)).with_pattern(mode.pattern());
    if let Some(budget) = args.optional::<f64>("latency-budget")? {
        request = request.with_latency_budget_ns(budget);
    }
    if let Some(floor) = args.optional::<f64>("min-bandwidth")? {
        request = request.with_min_delivered_gbps(floor);
    }
    match analysis.plan_request(&request) {
        Some(point) => {
            println!("operating point for ≥{capacity_gb} GB at ≤{tolerance} fault rate:");
            println!("  voltage        {}", point.voltage);
            println!(
                "  usable PCs     {} ({} GB)",
                point.usable_pcs.len(),
                point.capacity_bytes >> 30
            );
            println!("  power saving   {:.2}x vs nominal", point.saving_factor);
            println!("  worst PC rate  {:.3e}", point.worst_fault_rate.as_f64());
            println!(
                "  delivered      {:.1} GB/s ({} pattern)",
                point.delivered_gbps, workload_token
            );
            println!("  access latency {:.1} ns", point.access_latency_ns);
            Ok(())
        }
        None => Err(CliError::runtime(format!(
            "no swept voltage provides {capacity_gb} GB within fault rate {tolerance} \
             under the requested timing constraints"
        ))),
    }
}

/// `hbmctl fleet`: population-scale characterization — sweep N simulated
/// devices through the work-stealing engine, persist/load the columnar
/// artifact, and answer per-device voltage queries against it.
fn fleet(seed: u64, args: &Args) -> Result<(), CliError> {
    let sub = args.positional.get(1).map(String::as_str).ok_or_else(|| {
        CliError::config(
            "fleet needs a subcommand: sweep, query, export, summary, compress or fidelity",
        )
    })?;
    match sub {
        "sweep" => fleet_sweep(seed, args),
        "query" => fleet_query(args),
        "export" => fleet_export(args),
        "summary" => fleet_summary(args),
        "compress" => fleet_compress(args),
        "fidelity" => fleet_fidelity(args),
        other => Err(CliError::config(format!(
            "unknown fleet subcommand: {other} \
             (use sweep, query, export, summary, compress or fidelity)"
        ))),
    }
}

/// Splits fleet-layer failures by blame: malformed configuration exits 2,
/// everything else (I/O, a corrupt or future-versioned artifact, an
/// unknown device) is a runtime failure and exits 1.
fn fleet_err(error: FleetError) -> CliError {
    match error {
        FleetError::Config(_) => CliError::config(error.to_string()),
        _ => CliError::runtime(error.to_string()),
    }
}

/// Rejects artifact/output paths that cannot name a file — empty, or an
/// existing directory — as usage mistakes before any work happens.
fn checked_path(path: &str, flag: &str) -> Result<(), CliError> {
    if path.is_empty() {
        return Err(CliError::config(format!("--{flag} path is empty")));
    }
    if std::path::Path::new(path).is_dir() {
        return Err(CliError::config(format!(
            "--{flag} path {path} is a directory"
        )));
    }
    Ok(())
}

fn open_store(args: &Args) -> Result<FleetStore, CliError> {
    let path: String = args.required("artifact")?;
    checked_path(&path, "artifact")?;
    FleetStore::open(&path).map_err(fleet_err)
}

fn fleet_config(seed: u64, args: &Args) -> Result<FleetConfig, CliError> {
    let cfg = FleetConfig {
        devices: args.flag("devices", 64u32)?,
        base_seed: seed,
        workers: args.flag("workers", 0usize)?,
        from: args.flag("from", Millivolts(1000))?,
        down_to: args.flag("to", Millivolts(820))?,
        step: args.flag("step", Millivolts(10))?,
        words_per_pc: args.flag("words", 64u64)?,
        weak_reference: args.flag("weak-reference", Millivolts(900))?,
        ..FleetConfig::default()
    };
    cfg.validate().map_err(fleet_err)?;
    Ok(cfg)
}

fn fleet_sweep(seed: u64, args: &Args) -> Result<(), CliError> {
    let cfg = fleet_config(seed, args)?;
    let out: Option<String> = args.optional("out")?;
    let export: Option<String> = args.optional("export")?;
    if let Some(path) = &out {
        checked_path(path, "out")?;
    }
    if let Some(path) = &export {
        checked_path(path, "export")?;
    }

    eprintln!(
        "hbmctl: fleet sweep ({} devices, seed {seed}, {} knots)",
        cfg.devices,
        cfg.knots().len()
    );
    let report = hbm_fleet::sweep::run(&cfg).map_err(fleet_err)?;

    // Fold the run's accounting into the shared counter registry so fleet
    // sweeps surface through the same metrics vocabulary as supervised
    // sweeps.
    let telemetry = Telemetry::new();
    telemetry
        .metrics()
        .add_devices_swept(report.stats.devices_swept);
    telemetry
        .metrics()
        .add_devices_stolen(report.stats.devices_stolen);

    if let Some(path) = &out {
        let bytes =
            hbm_fleet::artifact::write_to_path(path, &cfg, &report.records).map_err(fleet_err)?;
        telemetry.metrics().add_artifact_bytes_written(bytes);
        println!(
            "fleet artifact: {} devices x {} PCs x {} knots -> {path} ({bytes} bytes)",
            cfg.devices,
            cfg.geometry.total_pcs(),
            cfg.knots().len()
        );
    }
    if let Some(path) = &export {
        let json = FleetExport::from_records(&cfg, &report.records).to_json();
        std::fs::write(path, &json)
            .map_err(|e| CliError::runtime(format!("writing {path}: {e}")))?;
        println!(
            "fleet export: {} devices -> {path} ({} bytes)",
            cfg.devices,
            json.len()
        );
    }
    if out.is_none() && export.is_none() {
        let meta = ArtifactMeta::from_config(&cfg);
        let summary =
            PopulationSummary::from_records(&meta, &report.records, &FleetCostModel::default());
        print!("{}", summary.to_text());
    }

    telemetry.finish();
    let snapshot = telemetry.metrics().snapshot();
    eprintln!(
        "hbmctl: fleet swept {} devices on {} worker{} in {} ms \
         ({} stolen across {} steals, {} artifact bytes)",
        snapshot.devices_swept,
        report.stats.workers,
        if report.stats.workers == 1 { "" } else { "s" },
        report.stats.wall_ms,
        snapshot.devices_stolen,
        report.stats.steals,
        snapshot.artifact_bytes_written
    );
    Ok(())
}

/// Splits typed-API errors by blame like [`fleet_err`]: `kind: "config"`
/// is a usage mistake (exit 2, usage text), every other kind a runtime
/// failure (exit 1).
fn api_err(error: &ApiError) -> CliError {
    if error.kind == "config" {
        CliError::config(error.message.clone())
    } else {
        CliError::runtime(error.message.clone())
    }
}

/// Sends one request through the typed API and unwraps the error variant
/// into the CLI's exit-code discipline — the single funnel every one-shot
/// fleet question goes through, identical to a `serve` session's routing.
fn ask(service: &FleetService, request: FleetRequest) -> Result<FleetResponse, CliError> {
    match service.handle(&request) {
        FleetResponse::Error(err) => Err(api_err(&err)),
        response => Ok(response),
    }
}

/// Folds a service's serving counters into the shared metrics registry so
/// one-shot queries and `serve` sessions surface through the same
/// vocabulary as sweeps.
fn fold_serve_stats(service: &FleetService, telemetry: &Telemetry) {
    let stats = service.stats();
    let metrics = telemetry.metrics();
    metrics.add_queries_served(stats.queries_served);
    metrics.add_compressed_hits(stats.compressed_hits);
    metrics.add_exact_rescans(stats.exact_rescans);
    metrics.set_model_bytes(stats.model_bytes);
    metrics.add_rescan_cache_hits(stats.rescan_cache_hits);
    metrics.add_kernel_rescans(stats.kernel_rescans);
    metrics.add_rescan_cache_evictions(stats.rescan_cache_evictions);
    metrics.add_singleflight_waits(stats.singleflight_waits);
}

/// Folds the concurrent pipeline's scheduling-dependent gauges (worker
/// count, queue-depth high-water mark, per-request latency histogram)
/// into the metrics registry, alongside [`fold_serve_stats`].
fn fold_pipeline_stats(stats: &hbm_fleet::PipelineStats, telemetry: &Telemetry) {
    let metrics = telemetry.metrics();
    metrics.set_serve_workers(stats.workers as u64);
    metrics.set_serve_queue_depth_max(stats.queue_depth_max);
    let latency = &stats.latency;
    metrics.merge_request_wall_us(
        latency.count,
        latency.sum_us,
        latency.min_us,
        latency.max_us,
        &latency.log2_buckets,
    );
}

fn fleet_query(args: &Args) -> Result<(), CliError> {
    let service = FleetService::new(open_store(args)?);
    let device_id: u32 = args.required("device")?;
    let target_rate: f64 = args.flag("target-rate", 1e-4)?;
    let min_pcs: u32 = args.flag("min-pcs", 1u32)?;
    let format: String = args.flag("format", "text".to_owned())?;
    let request = FleetRequest::Recommend {
        device_id,
        target_rate,
        min_pcs,
    };
    let response = ask(&service, request)?;
    let FleetResponse::Recommendation(rec) = &response else {
        return Err(CliError::runtime(
            "recommend answered with a non-recommendation",
        ));
    };
    match format.as_str() {
        "text" => {
            println!("device {device_id} (target rate {target_rate:.1e}, >= {min_pcs} PCs):");
            println!("  voltage        {} mV", rec.voltage_mv);
            println!(
                "  usable PCs     {} of {}",
                rec.usable_pcs.len(),
                service.store().meta().pc_count
            );
            println!("  crash floor    {} mV", rec.crash_mv);
            println!("  power saving   {:.2}x vs nominal", rec.saving_factor);
        }
        "json" => println!("{}", response.to_json().map_err(|e| api_err(&e))?),
        other => {
            return Err(CliError::config(format!(
                "unknown format: {other} (use text or json)"
            )))
        }
    }
    Ok(())
}

fn fleet_export(args: &Args) -> Result<(), CliError> {
    let service = FleetService::new(open_store(args)?);
    let FleetResponse::Export(doc) = ask(&service, FleetRequest::Export)? else {
        return Err(CliError::runtime("export answered with a non-export"));
    };
    let json = doc.to_json();
    match args.optional::<String>("out")? {
        Some(path) => {
            checked_path(&path, "out")?;
            std::fs::write(&path, &json)
                .map_err(|e| CliError::runtime(format!("writing {path}: {e}")))?;
            println!(
                "fleet export: {} devices -> {path} ({} bytes)",
                service.store().len(),
                json.len()
            );
        }
        None => print!("{json}"),
    }
    Ok(())
}

fn fleet_summary(args: &Args) -> Result<(), CliError> {
    let service = FleetService::new(open_store(args)?);
    let format: String = args.flag("format", "text".to_owned())?;
    let response = ask(&service, FleetRequest::Summary)?;
    let FleetResponse::Summary(summary) = &response else {
        return Err(CliError::runtime("summary answered with a non-summary"));
    };
    match format.as_str() {
        "text" => print!("{}", summary.to_text()),
        "csv" => print!("{}", summary.to_csv()),
        "json" => println!("{}", response.to_json().map_err(|e| api_err(&e))?),
        other => {
            return Err(CliError::config(format!(
                "unknown format: {other} (use text, csv or json)"
            )))
        }
    }
    Ok(())
}

/// `hbmctl fleet compress`: re-encode an exact artifact with fitted
/// parametric models (and optionally the exact columns alongside).
fn fleet_compress(args: &Args) -> Result<(), CliError> {
    let store = open_store(args)?;
    let out: String = args.required("out")?;
    checked_path(&out, "out")?;
    let keep_exact: bool = args.flag("keep-exact", false)?;
    let before = store.size_bytes();
    let bytes = hbm_fleet::model::compress_store(&store, keep_exact).map_err(fleet_err)?;
    std::fs::write(&out, &bytes).map_err(|e| CliError::runtime(format!("writing {out}: {e}")))?;
    println!(
        "fleet compress: {} devices, {before} -> {} bytes ({:.1}x){} -> {out}",
        store.len(),
        bytes.len(),
        before as f64 / bytes.len() as f64,
        if keep_exact { ", exact kept" } else { "" }
    );
    Ok(())
}

/// `hbmctl fleet fidelity`: quantify the compressed models against the
/// exact columns of the same artifact.
fn fleet_fidelity(args: &Args) -> Result<(), CliError> {
    let service = FleetService::new(open_store(args)?);
    let format: String = args.flag("format", "text".to_owned())?;
    let response = ask(&service, FleetRequest::Fidelity)?;
    let FleetResponse::Fidelity(report) = &response else {
        return Err(CliError::runtime("fidelity answered with a non-report"));
    };
    match format.as_str() {
        "text" => print!("{}", report.to_text()),
        "json" => println!("{}", response.to_json().map_err(|e| api_err(&e))?),
        other => {
            return Err(CliError::config(format!(
                "unknown format: {other} (use text or json)"
            )))
        }
    }
    Ok(())
}

/// `hbmctl serve`: load one artifact and answer typed requests over
/// stdin/stdout as line-delimited JSON until EOF — no per-query artifact
/// load, model-first recommendations, exact evidence only on fallback.
///
/// All worker counts route through the concurrent pipeline
/// ([`hbm_fleet::serve_concurrent`]); its in-order emitter makes the
/// output byte-identical to sequential serving at every `--serve-workers`
/// value, so the flag only changes throughput, never answers.
fn serve_loop(args: &Args) -> Result<(), CliError> {
    let workers: usize = args.flag("serve-workers", 1usize)?;
    if workers == 0 {
        return Err(CliError::config("--serve-workers must be at least 1"));
    }
    let cache_mb: usize = args.flag("rescan-cache-mb", 64usize)?;
    let service = FleetService::with_rescan_cache(open_store(args)?, cache_mb * 1024 * 1024);
    eprintln!(
        "hbmctl: serving {} devices ({}, {} model bytes); \
         one JSON request per line, EOF ends the session",
        service.store().len(),
        if service.store().has_exact_counts() {
            "exact+model"
        } else if service.store().has_model() {
            "model only"
        } else {
            "exact only"
        },
        service.store().model_bytes()
    );
    let stdin = std::io::stdin();
    let options = hbm_fleet::PipelineOptions {
        workers,
        completion_jitter: None,
    };
    // `Stdout` (not the lock guard) crosses into the emitter thread; the
    // emitter is the only writer, so per-call locking costs nothing.
    let pipeline = hbm_fleet::serve_concurrent(&service, stdin.lock(), std::io::stdout(), &options)
        .map_err(|e| CliError::runtime(format!("serve transport: {e}")))?;
    let stats = pipeline.serve;
    let telemetry = Telemetry::new();
    fold_serve_stats(&service, &telemetry);
    fold_pipeline_stats(&pipeline, &telemetry);
    telemetry.finish();
    eprintln!(
        "hbmctl: served {} quer{} ({} compressed hit{}, {} exact rescan{}, \
         {} exact column reads, {} model bytes)",
        stats.queries_served,
        if stats.queries_served == 1 {
            "y"
        } else {
            "ies"
        },
        stats.compressed_hits,
        if stats.compressed_hits == 1 { "" } else { "s" },
        stats.exact_rescans,
        if stats.exact_rescans == 1 { "" } else { "s" },
        service.store().exact_column_reads(),
        stats.model_bytes
    );
    eprintln!(
        "hbmctl: serve runtime: {} worker(s), queue depth high-water {}, \
         {} rescan-cache hit(s), {} kernel rescan(s), {} eviction(s), \
         {} single-flight wait(s)",
        pipeline.workers,
        pipeline.queue_depth_max,
        stats.rescan_cache_hits,
        stats.kernel_rescans,
        stats.rescan_cache_evictions,
        stats.singleflight_waits
    );
    Ok(())
}
