//! Population statistics over a characterized fleet: guardband and V_min
//! distributions, weak-PC census, and the fleet-level power/cost roll-up.
//!
//! The roll-up constants mirror the reallm HBM2 configuration
//! (SNIPPETS.md §2): 7.5 $/GB, 31.2 pJ/B at 1.2 V nominal — TDP per
//! device is `bandwidth × pJ/B`, and undervolted power scales with the
//! quadratic `V²` model the paper fits (via [`HbmPowerModel`]).
//!
//! The energy-efficiency roll-up weights by **delivered** bandwidth, not
//! pin rate: each device's sustainable GB/s at its own setpoint comes
//! from [`AccessTimingModel`] with the DATE'21 timing stretch applied, so
//! a fleet running deep below nominal is charged for the throughput it
//! actually loses to stretched timings, and the pJ-per-delivered-bit
//! figure reflects the real efficiency trade of undervolting.

use hbm_device::{AccessPattern, AccessTimingModel, TimingStretchModel};
use hbm_power::HbmPowerModel;
use hbm_units::{Millivolts, Ratio};
use serde::{Deserialize, Serialize};

use crate::artifact::{ArtifactMeta, FleetStore};
use crate::record::{DeviceRecord, NO_VMIN};

/// Fleet-economics constants, grounded in the reallm HBM2 config.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetCostModel {
    /// Memory price in dollars per gigabyte.
    pub cost_per_gb: f64,
    /// Access energy in picojoules per byte at nominal supply.
    pub pj_per_byte: f64,
    /// Sustained per-device bandwidth in bytes per second (the study's
    /// VCU128 HBM2 stacks sustain ~460 GB/s).
    pub bytes_per_second: f64,
    /// Per-device capacity in gigabytes.
    pub capacity_gb: f64,
}

impl Default for FleetCostModel {
    fn default() -> Self {
        FleetCostModel {
            cost_per_gb: 7.5,
            pj_per_byte: 31.2,
            bytes_per_second: 460.0e9,
            capacity_gb: 8.0,
        }
    }
}

impl FleetCostModel {
    /// Nominal per-device thermal design power in watts:
    /// `bandwidth × pJ/B` (the reallm `tdp` formula).
    #[must_use]
    pub fn device_tdp_w(&self) -> f64 {
        self.bytes_per_second * self.pj_per_byte * 1e-12
    }

    /// Per-device memory cost in dollars.
    #[must_use]
    pub fn device_cost_usd(&self) -> f64 {
        self.capacity_gb * self.cost_per_gb
    }
}

/// Nearest-rank percentile of an ascending-sorted slice (`p` in `(0, 100]`).
fn nearest_rank(sorted: &[u16], p: f64) -> u16 {
    assert!(!sorted.is_empty(), "percentile of empty population");
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Population summary of one fleet artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationSummary {
    /// Devices aggregated.
    pub devices: u32,
    /// Devices with at least one fault-free knot (the V_min percentiles
    /// cover exactly these).
    pub devices_with_v_min: u32,
    /// 1st-percentile V_min in millivolts (best devices).
    pub v_min_p1_mv: u16,
    /// Median V_min in millivolts.
    pub v_min_p50_mv: u16,
    /// 99th-percentile V_min in millivolts (worst devices).
    pub v_min_p99_mv: u16,
    /// Smallest proven guardband against nominal, in millivolts.
    pub guardband_min_mv: u16,
    /// Mean proven guardband in millivolts.
    pub guardband_mean_mv: f64,
    /// Largest proven guardband in millivolts.
    pub guardband_max_mv: u16,
    /// Median crash floor in millivolts.
    pub crash_p50_mv: u16,
    /// Per-PC weak-device counts: entry `p` is how many devices flagged
    /// pseudo channel `p` weak at the reference knot.
    pub weak_census: Vec<u32>,
    /// Devices flagging at least one weak PC.
    pub devices_with_weak_pcs: u32,
    /// Fleet memory cost in dollars.
    pub fleet_cost_usd: f64,
    /// Fleet power at nominal supply, in watts.
    pub fleet_power_nominal_w: f64,
    /// Fleet power with every device at its own V_min (devices without a
    /// V_min stay at nominal), in watts.
    pub fleet_power_undervolted_w: f64,
    /// `1 − undervolted/nominal`.
    pub fleet_power_saving: f64,
    /// Fleet-wide delivered bandwidth at nominal supply, in GB/s: the sum
    /// of every device's sustainable sequential-stream rate under the
    /// [`AccessTimingModel`].
    pub fleet_delivered_nominal_gbps: f64,
    /// Fleet-wide delivered bandwidth with every device at its own V_min
    /// (timings stretched per the DATE'21 model; devices without a V_min
    /// stay at nominal), in GB/s.
    pub fleet_delivered_undervolted_gbps: f64,
    /// Energy per **delivered** bit at nominal, in picojoules: fleet power
    /// divided by fleet delivered bandwidth — a delivered-GB/s-weighted
    /// mean, so fast devices count proportionally more.
    pub energy_per_delivered_bit_nominal_pj: f64,
    /// Energy per delivered bit with every device undervolted to its
    /// V_min, in picojoules.
    pub energy_per_delivered_bit_undervolted_pj: f64,
}

impl PopulationSummary {
    /// Aggregates `records` (any order) under the artifact `meta`.
    ///
    /// # Panics
    ///
    /// Panics on an empty fleet — artifacts always hold ≥ 1 device.
    #[must_use]
    pub fn from_records(
        meta: &ArtifactMeta,
        records: &[DeviceRecord],
        cost: &FleetCostModel,
    ) -> PopulationSummary {
        let scalars: Vec<(u16, u16, u32, u64)> = records
            .iter()
            .map(|r| (r.v_min_mv, r.crash_mv, r.weak_pcs, r.seed))
            .collect();
        Self::from_scalars(meta, &scalars, cost)
    }

    /// Aggregates a store from its scalar columns alone — the summary
    /// never reads per-knot counts, so it works identically on exact and
    /// compressed (model-only) artifacts without touching FAULTS.
    ///
    /// # Panics
    ///
    /// Panics on an empty fleet — artifacts always hold ≥ 1 device.
    #[must_use]
    pub fn from_store(store: &FleetStore, cost: &FleetCostModel) -> PopulationSummary {
        let scalars: Vec<(u16, u16, u32, u64)> = (0..store.len())
            .map(|i| {
                (
                    store.v_min_mv(i),
                    store.crash_mv(i),
                    store.weak_pcs(i),
                    store.seed(i),
                )
            })
            .collect();
        Self::from_scalars(store.meta(), &scalars, cost)
    }

    /// Shared aggregation over per-device `(v_min, crash, weak_pcs, seed)`
    /// scalar tuples.
    fn from_scalars(
        meta: &ArtifactMeta,
        records: &[(u16, u16, u32, u64)],
        cost: &FleetCostModel,
    ) -> PopulationSummary {
        assert!(!records.is_empty(), "population of zero devices");
        let nominal = Millivolts(u32::from(meta.nominal_mv));
        let power = HbmPowerModel::date21();

        let mut v_mins: Vec<u16> = records
            .iter()
            .map(|&(v_min, ..)| v_min)
            .filter(|&v| v != NO_VMIN)
            .collect();
        v_mins.sort_unstable();
        let mut crashes: Vec<u16> = records.iter().map(|&(_, crash, ..)| crash).collect();
        crashes.sort_unstable();

        let guardbands: Vec<u16> = v_mins
            .iter()
            .map(|&v| (nominal.as_u32() as u16).saturating_sub(v))
            .collect();
        let (gb_min, gb_max, gb_mean) = if guardbands.is_empty() {
            (0, 0, 0.0)
        } else {
            (
                *guardbands.iter().min().expect("non-empty"),
                *guardbands.iter().max().expect("non-empty"),
                guardbands.iter().map(|&g| f64::from(g)).sum::<f64>() / guardbands.len() as f64,
            )
        };

        let mut weak_census = vec![0u32; meta.pc_count as usize];
        let mut devices_with_weak = 0u32;
        for &(_, _, weak_pcs, _) in records {
            if weak_pcs != 0 {
                devices_with_weak += 1;
            }
            for (pc, slot) in weak_census.iter_mut().enumerate() {
                if weak_pcs & (1u32 << pc) != 0 {
                    *slot += 1;
                }
            }
        }

        let nominal_device_w = cost.device_tdp_w();
        let nominal_fleet_w = nominal_device_w * records.len() as f64;
        let undervolted_fleet_w: f64 = records
            .iter()
            .map(|&(v_min_mv, ..)| {
                if v_min_mv == NO_VMIN {
                    nominal_device_w
                } else {
                    // The V² law of the fitted power model, applied to the
                    // reallm TDP base: fault-free at V_min, full utilization.
                    let setpoint = Millivolts(u32::from(v_min_mv));
                    nominal_device_w / power.saving_factor(setpoint, Ratio::ONE, Ratio::ZERO)
                }
            })
            .sum();

        // Delivered-bandwidth roll-up: each device's sustainable
        // sequential-stream rate at nominal and at its own V_min, with
        // the DATE'21 timing stretch seeded per device so process
        // variation shows up in throughput the same way it does in
        // fault behaviour.
        let timing = AccessTimingModel::vcu128();
        let stretch = TimingStretchModel::date21();
        let mut delivered_nominal_gbps = 0.0;
        let mut delivered_undervolted_gbps = 0.0;
        for &(v_min_mv, _, _, seed) in records {
            let at_nominal = timing.at_voltage(&stretch, seed, nominal);
            delivered_nominal_gbps += at_nominal.delivered_gbps(AccessPattern::SequentialStream);
            let setpoint = if v_min_mv == NO_VMIN {
                nominal
            } else {
                Millivolts(u32::from(v_min_mv))
            };
            let at_setpoint = timing.at_voltage(&stretch, seed, setpoint);
            delivered_undervolted_gbps +=
                at_setpoint.delivered_gbps(AccessPattern::SequentialStream);
        }
        // pJ per delivered bit = W / (GB/s × 8 Gbit/GB) × 10¹² pJ/J ÷ 10⁹.
        let pj_per_bit = |watts: f64, gbps: f64| watts * 1000.0 / (gbps * 8.0);

        let (p1, p50, p99) = if v_mins.is_empty() {
            (NO_VMIN, NO_VMIN, NO_VMIN)
        } else {
            (
                nearest_rank(&v_mins, 1.0),
                nearest_rank(&v_mins, 50.0),
                nearest_rank(&v_mins, 99.0),
            )
        };

        PopulationSummary {
            devices: records.len() as u32,
            devices_with_v_min: v_mins.len() as u32,
            v_min_p1_mv: p1,
            v_min_p50_mv: p50,
            v_min_p99_mv: p99,
            guardband_min_mv: gb_min,
            guardband_mean_mv: gb_mean,
            guardband_max_mv: gb_max,
            crash_p50_mv: nearest_rank(&crashes, 50.0),
            weak_census,
            devices_with_weak_pcs: devices_with_weak,
            fleet_cost_usd: cost.device_cost_usd() * records.len() as f64,
            fleet_power_nominal_w: nominal_fleet_w,
            fleet_power_undervolted_w: undervolted_fleet_w,
            fleet_power_saving: 1.0 - undervolted_fleet_w / nominal_fleet_w,
            fleet_delivered_nominal_gbps: delivered_nominal_gbps,
            fleet_delivered_undervolted_gbps: delivered_undervolted_gbps,
            energy_per_delivered_bit_nominal_pj: pj_per_bit(
                nominal_fleet_w,
                delivered_nominal_gbps,
            ),
            energy_per_delivered_bit_undervolted_pj: pj_per_bit(
                undervolted_fleet_w,
                delivered_undervolted_gbps,
            ),
        }
    }

    /// Renders the summary as aligned human-readable text.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("fleet devices        {}\n", self.devices));
        out.push_str(&format!(
            "v_min p1/p50/p99     {} / {} / {} mV  ({} devices measured)\n",
            self.v_min_p1_mv, self.v_min_p50_mv, self.v_min_p99_mv, self.devices_with_v_min
        ));
        out.push_str(&format!(
            "guardband min/mean/max {} / {:.1} / {} mV\n",
            self.guardband_min_mv, self.guardband_mean_mv, self.guardband_max_mv
        ));
        out.push_str(&format!("crash floor p50      {} mV\n", self.crash_p50_mv));
        let weak_total: u32 = self.weak_census.iter().sum();
        out.push_str(&format!(
            "weak PCs             {} flags across {} devices\n",
            weak_total, self.devices_with_weak_pcs
        ));
        out.push_str(&format!(
            "fleet cost           ${:.2}\n",
            self.fleet_cost_usd
        ));
        out.push_str(&format!(
            "fleet power          {:.1} W nominal -> {:.1} W undervolted ({:.1}% saved)\n",
            self.fleet_power_nominal_w,
            self.fleet_power_undervolted_w,
            self.fleet_power_saving * 100.0
        ));
        out.push_str(&format!(
            "delivered bandwidth  {:.1} GB/s nominal -> {:.1} GB/s undervolted\n",
            self.fleet_delivered_nominal_gbps, self.fleet_delivered_undervolted_gbps
        ));
        out.push_str(&format!(
            "energy/delivered bit {:.2} pJ nominal -> {:.2} pJ undervolted\n",
            self.energy_per_delivered_bit_nominal_pj, self.energy_per_delivered_bit_undervolted_pj
        ));
        out
    }

    /// Renders the summary as a two-line CSV (header plus one data row)
    /// of the scalar fields; the per-PC weak census collapses to its
    /// total flag count.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let weak_total: u32 = self.weak_census.iter().sum();
        let header = "devices,devices_with_v_min,v_min_p1_mv,v_min_p50_mv,v_min_p99_mv,\
                      guardband_min_mv,guardband_mean_mv,guardband_max_mv,crash_p50_mv,\
                      weak_pc_flags,devices_with_weak_pcs,fleet_cost_usd,\
                      fleet_power_nominal_w,fleet_power_undervolted_w,fleet_power_saving,\
                      fleet_delivered_nominal_gbps,fleet_delivered_undervolted_gbps,\
                      energy_per_delivered_bit_nominal_pj,energy_per_delivered_bit_undervolted_pj";
        format!(
            "{header}\n{},{},{},{},{},{},{:.3},{},{},{},{},{:.2},{:.3},{:.3},{:.6},{:.3},{:.3},{:.4},{:.4}\n",
            self.devices,
            self.devices_with_v_min,
            self.v_min_p1_mv,
            self.v_min_p50_mv,
            self.v_min_p99_mv,
            self.guardband_min_mv,
            self.guardband_mean_mv,
            self.guardband_max_mv,
            self.crash_p50_mv,
            weak_total,
            self.devices_with_weak_pcs,
            self.fleet_cost_usd,
            self.fleet_power_nominal_w,
            self.fleet_power_undervolted_w,
            self.fleet_power_saving,
            self.fleet_delivered_nominal_gbps,
            self.fleet_delivered_undervolted_gbps,
            self.energy_per_delivered_bit_nominal_pj,
            self.energy_per_delivered_bit_undervolted_pj,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FleetConfig;
    use crate::sweep;

    #[test]
    fn nearest_rank_percentiles() {
        let sorted = [10u16, 20, 30, 40, 50];
        assert_eq!(nearest_rank(&sorted, 1.0), 10);
        assert_eq!(nearest_rank(&sorted, 50.0), 30);
        assert_eq!(nearest_rank(&sorted, 99.0), 50);
        assert_eq!(nearest_rank(&[7], 50.0), 7);
    }

    #[test]
    fn summary_is_consistent_with_records() {
        let cfg = FleetConfig {
            devices: 12,
            workers: 2,
            words_per_pc: 8,
            from: Millivolts(1000),
            down_to: Millivolts(900),
            step: Millivolts(20),
            weak_reference: Millivolts(900),
            ..FleetConfig::default()
        };
        let records = sweep::run(&cfg).unwrap().records;
        let meta = crate::artifact::ArtifactMeta::from_config(&cfg);
        let summary = PopulationSummary::from_records(&meta, &records, &FleetCostModel::default());
        assert_eq!(summary.devices, 12);
        assert!(summary.v_min_p1_mv <= summary.v_min_p50_mv);
        assert!(summary.v_min_p50_mv <= summary.v_min_p99_mv || summary.devices_with_v_min == 0);
        assert!(summary.fleet_power_undervolted_w <= summary.fleet_power_nominal_w);
        assert!(summary.fleet_power_saving >= 0.0);
        assert!((summary.fleet_cost_usd - 12.0 * 60.0).abs() < 1e-9);
        assert!(summary.fleet_delivered_nominal_gbps > 0.0);
        assert!(
            summary.fleet_delivered_undervolted_gbps <= summary.fleet_delivered_nominal_gbps,
            "stretched timings cannot deliver more than nominal: {} vs {}",
            summary.fleet_delivered_undervolted_gbps,
            summary.fleet_delivered_nominal_gbps
        );
        assert!(summary.energy_per_delivered_bit_nominal_pj > 0.0);
        assert!(summary.energy_per_delivered_bit_undervolted_pj > 0.0);
        let text = summary.to_text();
        assert!(text.contains("fleet devices"), "{text}");
        assert!(text.contains("energy/delivered bit"), "{text}");
    }

    #[test]
    fn csv_rendering_matches_the_scalar_fields() {
        let cfg = FleetConfig {
            devices: 3,
            words_per_pc: 4,
            from: Millivolts(960),
            down_to: Millivolts(900),
            step: Millivolts(20),
            weak_reference: Millivolts(900),
            ..FleetConfig::default()
        };
        let records = sweep::run(&cfg).unwrap().records;
        let meta = crate::artifact::ArtifactMeta::from_config(&cfg);
        let summary = PopulationSummary::from_records(&meta, &records, &FleetCostModel::default());
        let csv = summary.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2, "{csv}");
        let header_cols = lines[0].split(',').count();
        let data_cols = lines[1].split(',').count();
        assert_eq!(header_cols, data_cols, "{csv}");
        assert!(
            lines[0].starts_with("devices,") && lines[0].contains("energy_per_delivered_bit"),
            "{csv}"
        );
        assert!(lines[1].starts_with("3,"), "{csv}");
    }
}
