//! The fault map: per-pseudo-channel fault rates across the voltage sweep,
//! the data structure behind the study's three-factor trade-off (Figs 5/6).

use hbm_device::{HbmGeometry, PcIndex, StackId};
use hbm_units::{Millivolts, Ratio};
use serde::{Deserialize, Serialize};

use crate::analytic::RatePredictor;

/// Fault rates of one pseudo channel at one supply voltage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PcRateEntry {
    /// Supply voltage of this entry.
    pub voltage: Millivolts,
    /// Fraction of bits flipped 1→0 under an all-ones pattern.
    pub rate_1to0: Ratio,
    /// Fraction of bits flipped 0→1 under an all-zeros pattern.
    pub rate_0to1: Ratio,
    /// Expected number of faulty bits in the pseudo channel (either
    /// polarity) at the map's geometry.
    pub expected_faulty_bits: f64,
}

impl PcRateEntry {
    /// Union fault rate across both polarities.
    #[must_use]
    pub fn union(&self) -> Ratio {
        Ratio(self.rate_1to0.as_f64() + self.rate_0to1.as_f64()).clamp_unit()
    }

    /// `true` if the pseudo channel is expected fault-free at this voltage
    /// (fewer than half an expected faulty bit).
    #[must_use]
    pub fn is_fault_free(&self) -> bool {
        self.expected_faulty_bits < 0.5
    }
}

/// The rate profile of one pseudo channel across the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PcRateProfile {
    /// Global pseudo-channel index.
    pub pc: u8,
    /// One entry per swept voltage, in sweep order (descending voltage).
    pub entries: Vec<PcRateEntry>,
}

impl PcRateProfile {
    /// The entry at an exact voltage, if it was swept.
    #[must_use]
    pub fn at(&self, voltage: Millivolts) -> Option<&PcRateEntry> {
        self.entries.iter().find(|e| e.voltage == voltage)
    }
}

/// A complete fault map of a device specimen.
///
/// # Examples
///
/// ```
/// use hbm_device::HbmGeometry;
/// use hbm_faults::{FaultMap, FaultModelParams, RatePredictor};
/// use hbm_units::{Millivolts, Ratio};
///
/// let predictor = RatePredictor::new(FaultModelParams::date21(), HbmGeometry::vcu128(), 7);
/// let map = FaultMap::from_predictor(&predictor, Millivolts(980), Millivolts(810), Millivolts(10));
///
/// // In the guardband every PC is usable at any tolerance.
/// assert_eq!(map.usable_pcs(Millivolts(980), Ratio::ZERO).len(), 32);
/// // Near total failure nothing tolerates a zero fault budget.
/// assert!(map.usable_pcs(Millivolts(820), Ratio::ZERO).is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultMap {
    /// Seed of the device specimen this map describes.
    pub seed: u64,
    /// The geometry rates were evaluated at.
    pub geometry: HbmGeometry,
    /// Swept voltages, descending.
    pub voltages: Vec<Millivolts>,
    /// One profile per pseudo channel, ordered by index.
    pub profiles: Vec<PcRateProfile>,
}

impl FaultMap {
    /// Builds a map by analytic evaluation over a descending sweep
    /// `from → down_to` (inclusive) in steps of `step`.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero or `from < down_to`.
    #[must_use]
    pub fn from_predictor(
        predictor: &RatePredictor,
        from: Millivolts,
        down_to: Millivolts,
        step: Millivolts,
    ) -> Self {
        assert!(step > Millivolts::ZERO, "step must be non-zero");
        assert!(from >= down_to, "sweep must descend: {from} < {down_to}");
        let mut voltages = Vec::new();
        let mut v = from;
        loop {
            voltages.push(v);
            if v < down_to + step {
                break;
            }
            v -= step;
        }
        let geometry = predictor.geometry();
        let profiles = PcIndex::all(geometry)
            .map(|pc| PcRateProfile {
                pc: pc.as_u8(),
                entries: voltages
                    .iter()
                    .map(|&voltage| {
                        let rates = predictor.pc_rates(pc, voltage);
                        PcRateEntry {
                            voltage,
                            rate_1to0: rates.rate_1to0,
                            rate_0to1: rates.rate_0to1,
                            expected_faulty_bits: rates.union().as_f64()
                                * geometry.bits_per_pc() as f64,
                        }
                    })
                    .collect(),
            })
            .collect();
        FaultMap {
            seed: predictor.seed(),
            geometry,
            voltages,
            profiles,
        }
    }

    /// The profile of one pseudo channel.
    ///
    /// # Panics
    ///
    /// Panics if `pc` exceeds the map's geometry.
    #[must_use]
    pub fn profile(&self, pc: PcIndex) -> &PcRateProfile {
        &self.profiles[pc.as_usize()]
    }

    /// Index of `voltage` in the descending sweep grid, by binary search;
    /// `None` for unswept voltages (including those between grid points).
    fn voltage_index(&self, voltage: Millivolts) -> Option<usize> {
        // `voltages` is sorted descending, so the strictly-greater prefix
        // found by `partition_point` ends where `voltage` would sit.
        let idx = self.voltages.partition_point(|&v| v > voltage);
        (self.voltages.get(idx) == Some(&voltage)).then_some(idx)
    }

    /// The pseudo channels whose fault rate at `voltage` is within
    /// `tolerable`. A zero tolerance means strictly fault-free (expected
    /// faulty bits below one half).
    ///
    /// The result is stably sorted by pseudo-channel index. Returns an
    /// empty vector for voltages outside the sweep (including voltages
    /// between grid points).
    ///
    /// The swept voltage is located by one binary search over the
    /// descending grid; each profile's entry is then a direct index
    /// (entries are parallel to the grid), so the query costs
    /// `O(log V + P)` instead of the per-profile linear scan's `O(P·V)`.
    #[must_use]
    pub fn usable_pcs(&self, voltage: Millivolts, tolerable: Ratio) -> Vec<PcIndex> {
        let Some(idx) = self.voltage_index(voltage) else {
            return Vec::new();
        };
        let mut pcs: Vec<PcIndex> = self
            .profiles
            .iter()
            .filter_map(|profile| {
                let entry = profile.entries.get(idx)?;
                debug_assert_eq!(entry.voltage, voltage, "entries parallel to grid");
                let ok = if tolerable == Ratio::ZERO {
                    entry.is_fault_free()
                } else {
                    entry.union().as_f64() <= tolerable.as_f64()
                };
                ok.then(|| PcIndex::new(profile.pc).expect("profile indices valid"))
            })
            .collect();
        // Profiles are ordered by index on construction, but a map built by
        // hand (e.g. deserialized) may not be; keep the contract explicit.
        pcs.sort_by_key(|pc| pc.as_u8());
        pcs
    }

    /// Number of usable pseudo channels (the y-axis of the study's Fig. 6).
    #[must_use]
    pub fn usable_pc_count(&self, voltage: Millivolts, tolerable: Ratio) -> usize {
        self.usable_pcs(voltage, tolerable).len()
    }

    /// Usable memory capacity in bytes at a voltage and tolerance.
    #[must_use]
    pub fn usable_bytes(&self, voltage: Millivolts, tolerable: Ratio) -> u64 {
        self.usable_pc_count(voltage, tolerable) as u64 * self.geometry.bytes_per_pc()
    }

    /// Mean union fault rate of one stack at a voltage, if swept.
    #[must_use]
    pub fn stack_mean_union(&self, stack: StackId, voltage: Millivolts) -> Option<Ratio> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for profile in &self.profiles {
            let pc = PcIndex::new(profile.pc).expect("profile indices valid");
            if pc.stack(self.geometry) != stack {
                continue;
            }
            sum += profile.at(voltage)?.union().as_f64();
            n += 1;
        }
        (n > 0).then(|| Ratio(sum / n as f64))
    }

    /// The lowest swept voltage at which at least `min_pcs` pseudo channels
    /// tolerate `tolerable` — the "how far can I undervolt" query behind the
    /// study's user-level trade-off examples.
    #[must_use]
    pub fn lowest_voltage_for(&self, min_pcs: usize, tolerable: Ratio) -> Option<Millivolts> {
        self.voltages
            .iter()
            .copied()
            .filter(|&v| self.usable_pc_count(v, tolerable) >= min_pcs)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::FaultModelParams;

    fn map() -> FaultMap {
        let predictor = RatePredictor::new(FaultModelParams::date21(), HbmGeometry::vcu128(), 7);
        FaultMap::from_predictor(&predictor, Millivolts(980), Millivolts(810), Millivolts(10))
    }

    #[test]
    fn sweep_covers_descending_range() {
        let m = map();
        assert_eq!(m.voltages.first(), Some(&Millivolts(980)));
        assert_eq!(m.voltages.last(), Some(&Millivolts(810)));
        assert_eq!(m.voltages.len(), 18);
        assert!(m.voltages.windows(2).all(|w| w[0] > w[1]));
        assert_eq!(m.profiles.len(), 32);
    }

    #[test]
    fn guardband_edge_is_fully_usable() {
        let m = map();
        assert_eq!(m.usable_pc_count(Millivolts(980), Ratio::ZERO), 32);
        assert_eq!(
            m.usable_bytes(Millivolts(980), Ratio::ZERO),
            HbmGeometry::vcu128().total_bytes()
        );
    }

    #[test]
    fn usable_count_monotone_in_tolerance() {
        let m = map();
        for &v in &m.voltages {
            let strict = m.usable_pc_count(v, Ratio::ZERO);
            let loose = m.usable_pc_count(v, Ratio(1e-6));
            let looser = m.usable_pc_count(v, Ratio(0.01));
            assert!(strict <= loose && loose <= looser, "at {v}");
        }
    }

    #[test]
    fn usable_count_monotone_in_voltage() {
        let m = map();
        for tol in [Ratio::ZERO, Ratio(1e-6), Ratio(1e-4), Ratio(0.01)] {
            let counts: Vec<usize> = m
                .voltages
                .iter()
                .map(|&v| m.usable_pc_count(v, tol))
                .collect();
            // Voltages descend, so counts must be non-increasing.
            assert!(
                counts.windows(2).all(|w| w[0] >= w[1]),
                "tolerance {tol:?}: {counts:?}"
            );
        }
    }

    #[test]
    fn some_pcs_survive_moderate_undervolting_fault_free() {
        let m = map();
        // The study reports 7 fault-free PCs at 0.95 V; the shape target is
        // "some but not all".
        let n = m.usable_pc_count(Millivolts(950), Ratio::ZERO);
        assert!((1..=20).contains(&n), "fault-free PCs at 0.95 V: {n}");
    }

    #[test]
    fn lowest_voltage_queries() {
        let m = map();
        // Full capacity, zero faults → at or just below the guardband edge
        // (the expected-count criterion may admit one 10 mV step where the
        // handful of device-wide first flips spreads thinner than half a
        // bit per PC).
        let full = m.lowest_voltage_for(32, Ratio::ZERO).unwrap();
        assert!(
            (Millivolts(960)..=Millivolts(980)).contains(&full),
            "full-capacity fault-free floor: {full}"
        );
        // Relaxing either capacity or tolerance reaches lower voltages.
        let half = m.lowest_voltage_for(16, Ratio(1e-6));
        assert!(half.is_some());
        assert!(half.unwrap() <= Millivolts(980));
        // Nothing tolerates total failure fault-free.
        assert!(m.lowest_voltage_for(1, Ratio::ZERO) >= Some(Millivolts(900)));
    }

    #[test]
    fn unswept_voltage_yields_empty() {
        let m = map();
        assert!(m.usable_pcs(Millivolts(985), Ratio::ONE).is_empty());
        assert!(m
            .profile(PcIndex::new(0).unwrap())
            .at(Millivolts(985))
            .is_none());
    }

    #[test]
    fn between_grid_points_yields_empty_and_grid_points_stay_sorted() {
        let m = map();
        // 975 mV sits strictly between the 980 and 970 grid points: the
        // binary search must not round to a neighbour.
        assert!(m.usable_pcs(Millivolts(975), Ratio::ONE).is_empty());
        assert_eq!(m.usable_bytes(Millivolts(975), Ratio::ONE), 0);
        // Off both ends of the grid.
        assert!(m.usable_pcs(Millivolts(1100), Ratio::ONE).is_empty());
        assert!(m.usable_pcs(Millivolts(805), Ratio::ONE).is_empty());
        // Exact grid points keep working and come back stably sorted by
        // pseudo-channel index.
        for &v in &m.voltages {
            let pcs = m.usable_pcs(v, Ratio(0.01));
            assert!(
                pcs.windows(2).all(|w| w[0].as_u8() < w[1].as_u8()),
                "unsorted usable set at {v}"
            );
        }
        assert_eq!(m.usable_pc_count(Millivolts(980), Ratio::ZERO), 32);
    }

    #[test]
    fn stack_means_reflect_skew() {
        let m = map();
        let v = Millivolts(880);
        let r0 = m.stack_mean_union(StackId(0), v).unwrap().as_f64();
        let r1 = m.stack_mean_union(StackId(1), v).unwrap().as_f64();
        assert!(r0 > 0.0 && r1 > 0.0);
        assert!(r1 > r0 * 0.8, "sanity: rates comparable, {r0} vs {r1}");
    }

    #[test]
    fn serde_json_round_trip() {
        let m = map();
        let json = serde_json::to_string(&m).unwrap();
        let back: FaultMap = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
