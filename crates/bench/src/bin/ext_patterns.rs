//! Extension experiment: data-pattern sensitivity.
//!
//! The study tests all-ones and all-zeros (isolating the two stuck-at
//! polarities). This extension adds checkerboard, walking-ones and PRBS
//! backgrounds: under the stuck-at fault mechanism, every pattern's
//! observed rate is predicted by how many of its bits oppose each stuck
//! polarity — e.g. a checkerboard sees half of each population.

use hbm_device::PcIndex;
use hbm_traffic::DataPattern;
use hbm_undervolt::{
    ExecutionMode, FaultFieldMode, KernelBackend, Platform, ReliabilityConfig, ReliabilityTester,
    TestScope, VoltageSweep,
};
use hbm_units::Millivolts;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(hbm_bench::DEFAULT_SEED);

    let patterns = vec![
        DataPattern::AllOnes,
        DataPattern::AllZeros,
        DataPattern::Checkerboard,
        DataPattern::WalkingOnes,
        DataPattern::Prbs { seed: 99 },
    ];
    let config = ReliabilityConfig {
        sweep: VoltageSweep::new(Millivolts(900), Millivolts(850), Millivolts(10))
            .expect("static sweep"),
        batch_size: 1,
        patterns: patterns.clone(),
        scope: TestScope::SinglePc(PcIndex::new(4).expect("pc4")),
        words_per_pc: Some(4096),
        sample_words: None,
        mode: ExecutionMode::CachedMasks,
        fault_field: FaultFieldMode::PerVoltage,
        kernel: KernelBackend::Auto,
        carry_forward: true,
    };
    let tester = ReliabilityTester::new(config).expect("config valid");
    let mut platform = Platform::builder().seed(seed).build();
    let report = tester.run(&mut platform).expect("sweep");

    println!(
        "Pattern sensitivity on PC4, {} bits per run (seed {seed})\n",
        report.checked_bits_per_run
    );
    print!("{:>8}", "V");
    for p in &patterns {
        print!("{:>22}", p.to_string());
    }
    println!();
    for point in &report.points {
        print!(
            "{:>8}",
            format!("{:.2}", f64::from(point.voltage.as_u32()) / 1000.0)
        );
        for p in &patterns {
            let rate = report.fault_rate(point.voltage, *p).unwrap();
            print!("{:>22.3e}", rate.as_f64());
        }
        println!();
    }
    println!("\nall-1s tracks the stuck-at-0 population, all-0s the stuck-at-1 one;");
    println!("a checkerboard sees half of each, PRBS about the same; walking-1s is");
    println!("nearly all zeros and so tracks the all-0s rate closely.");
}
