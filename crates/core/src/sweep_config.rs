//! One builder for every knob of a sweep campaign.
//!
//! Historically a campaign was assembled from three places: the
//! [`PlatformBuilder`](crate::PlatformBuilder) (seed, workers, crash
//! behaviour), the [`ReliabilityConfig`] struct (sweep, batch, patterns,
//! scope) and — since the resilient runtime — the [`SweepSupervisor`]
//! builder (retries, deadline, checkpoint). [`SweepConfig`] consolidates
//! all of them behind one fluent builder, so `hbmctl`, the examples and
//! the tests configure a whole campaign in one expression and the pieces
//! can never drift apart.

use hbm_device::TransientCrashModel;
use hbm_faults::FaultFieldMode;
use hbm_traffic::DataPattern;
use hbm_units::Millivolts;

use crate::error::ExperimentError;
use crate::platform::Platform;
use crate::reliability::{ExecutionMode, ReliabilityConfig, ReliabilityTester, TestScope};
use crate::supervisor::{RetryPolicy, SupervisedReport, SweepSupervisor, SystemClock};
use crate::sweep::VoltageSweep;
use crate::telemetry::Telemetry;

/// Every knob of a sweep campaign — platform, measurement and resilience —
/// in one builder.
///
/// # Examples
///
/// ```
/// use hbm_undervolt::SweepConfig;
///
/// # fn main() -> Result<(), hbm_undervolt::ExperimentError> {
/// let report = SweepConfig::quick()
///     .seed(7)
///     .retries(2)
///     .run()?;
/// assert!(report.skipped_points().next().is_none());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SweepConfig {
    seed: u64,
    workers: usize,
    v_crash: Option<Millivolts>,
    transient: Option<TransientCrashModel>,
    reliability: ReliabilityConfig,
    retry: RetryPolicy,
    point_deadline_ms: Option<u64>,
    checkpoint: Option<String>,
    resume: bool,
}

impl SweepConfig {
    /// The paper's full campaign ([`ReliabilityConfig::date21`]) with the
    /// default platform (seed 7, one worker) and resilience defaults.
    #[must_use]
    pub fn date21() -> Self {
        SweepConfig::from_reliability(ReliabilityConfig::date21())
    }

    /// The fast test campaign ([`ReliabilityConfig::quick`]).
    #[must_use]
    pub fn quick() -> Self {
        SweepConfig::from_reliability(ReliabilityConfig::quick())
    }

    /// Wraps an existing measurement configuration with default platform
    /// and resilience knobs.
    #[must_use]
    pub fn from_reliability(reliability: ReliabilityConfig) -> Self {
        SweepConfig {
            seed: 7,
            workers: 1,
            v_crash: None,
            transient: None,
            reliability,
            retry: RetryPolicy::default(),
            point_deadline_ms: None,
            checkpoint: None,
            resume: false,
        }
    }

    // ---- platform knobs -------------------------------------------------

    /// Device specimen seed (also keys all sampled-mode randomness).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Engine worker threads per voltage point.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// The crash floor: supplies below this crash the platform (default:
    /// the device's [`hbm_device::CRASH_FLOOR`]).
    #[must_use]
    pub fn v_crash(mut self, v_crash: Millivolts) -> Self {
        self.v_crash = Some(v_crash);
        self
    }

    /// Stochastic transient crashes near the cliff (off by default).
    #[must_use]
    pub fn transient_crashes(mut self, model: TransientCrashModel) -> Self {
        self.transient = Some(model);
        self
    }

    // ---- measurement knobs ----------------------------------------------

    /// The voltage sweep.
    #[must_use]
    pub fn sweep(mut self, sweep: VoltageSweep) -> Self {
        self.reliability.sweep = sweep;
        self
    }

    /// Write/read-back passes per (voltage, pattern).
    #[must_use]
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.reliability.batch_size = batch_size;
        self
    }

    /// The data patterns to test.
    #[must_use]
    pub fn patterns(mut self, patterns: Vec<DataPattern>) -> Self {
        self.reliability.patterns = patterns;
        self
    }

    /// The memory scope.
    #[must_use]
    pub fn scope(mut self, scope: TestScope) -> Self {
        self.reliability.scope = scope;
        self
    }

    /// Cap on words tested per pseudo channel (`None` = full array).
    #[must_use]
    pub fn words_per_pc(mut self, words: Option<u64>) -> Self {
        self.reliability.words_per_pc = words;
        self
    }

    /// Sampled mode: randomly drawn offsets per pseudo channel.
    #[must_use]
    pub fn sample_words(mut self, samples: Option<u64>) -> Self {
        self.reliability.sample_words = samples;
        self
    }

    /// The execution kernel per voltage point.
    #[must_use]
    pub fn mode(mut self, mode: ExecutionMode) -> Self {
        self.reliability.mode = mode;
        self
    }

    /// How the fault injector keys per-bit randomness across the sweep.
    #[must_use]
    pub fn fault_field(mut self, field: FaultFieldMode) -> Self {
        self.reliability.fault_field = field;
        self
    }

    /// Whether coupled-field sweeps carry their faulty-word working set
    /// from point to point (a pure performance knob; see
    /// [`ReliabilityConfig::carry_forward`]).
    #[must_use]
    pub fn carry_forward(mut self, carry: bool) -> Self {
        self.reliability.carry_forward = carry;
        self
    }

    /// Which mask-kernel backend generates stuck-at masks (a pure
    /// performance knob; see [`ReliabilityConfig::kernel`]).
    #[must_use]
    pub fn kernel(mut self, kernel: hbm_faults::KernelBackend) -> Self {
        self.reliability.kernel = kernel;
        self
    }

    // ---- resilience knobs -----------------------------------------------

    /// The full transient-failure retry policy.
    #[must_use]
    pub fn retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Shorthand: `retries` re-attempts with the default backoff window.
    #[must_use]
    pub fn retries(mut self, retries: u32) -> Self {
        self.retry = RetryPolicy {
            max_retries: retries,
            ..self.retry
        };
        self
    }

    /// Per-point deadline in milliseconds (overruns count as transient
    /// failures).
    #[must_use]
    pub fn point_deadline_ms(mut self, deadline_ms: u64) -> Self {
        self.point_deadline_ms = Some(deadline_ms);
        self
    }

    /// Checkpoint file for the supervisor.
    #[must_use]
    pub fn checkpoint(mut self, path: impl Into<String>) -> Self {
        self.checkpoint = Some(path.into());
        self
    }

    /// Resume from the checkpoint file if it exists.
    #[must_use]
    pub fn resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    // ---- assembly --------------------------------------------------------

    /// The measurement part of the configuration.
    #[must_use]
    pub fn reliability(&self) -> &ReliabilityConfig {
        &self.reliability
    }

    /// Builds the platform this configuration describes.
    #[must_use]
    pub fn build_platform(&self) -> Platform {
        let mut builder = Platform::builder().seed(self.seed).workers(self.workers);
        if let Some(v_crash) = self.v_crash {
            builder = builder.v_crash(v_crash);
        }
        if let Some(transient) = self.transient {
            builder = builder.transient_crashes(transient);
        }
        builder.build()
    }

    /// Builds the bare (unsupervised) tester.
    ///
    /// # Errors
    ///
    /// Configuration errors from [`ReliabilityConfig::validate`].
    pub fn build_tester(&self) -> Result<ReliabilityTester, ExperimentError> {
        ReliabilityTester::new(self.reliability.clone())
    }

    /// Builds the supervised sweep with this configuration's resilience
    /// knobs applied.
    ///
    /// # Errors
    ///
    /// Configuration errors from [`ReliabilityConfig::validate`].
    pub fn build_supervisor(&self) -> Result<SweepSupervisor, ExperimentError> {
        let mut supervisor = SweepSupervisor::new(self.build_tester()?).retry_policy(self.retry);
        if let Some(deadline) = self.point_deadline_ms {
            supervisor = supervisor.point_deadline_ms(deadline);
        }
        if let Some(path) = &self.checkpoint {
            supervisor = supervisor.checkpoint(path.clone());
        }
        Ok(supervisor.resume(self.resume))
    }

    /// Builds the platform and runs the supervised sweep on it — the
    /// one-expression campaign.
    ///
    /// # Errors
    ///
    /// See [`SweepSupervisor::run`].
    pub fn run(&self) -> Result<SupervisedReport, ExperimentError> {
        let mut platform = self.build_platform();
        self.build_supervisor()?.run(&mut platform)
    }

    /// Like [`SweepConfig::run`], but publishing lifecycle events and
    /// counters to `telemetry` as the sweep executes (wall-clock
    /// timestamps from [`SystemClock`]).
    ///
    /// # Errors
    ///
    /// See [`SweepSupervisor::run`].
    pub fn run_observed(&self, telemetry: &Telemetry) -> Result<SupervisedReport, ExperimentError> {
        let mut platform = self.build_platform();
        self.build_supervisor()?
            .run_observed(&mut platform, &mut SystemClock::new(), telemetry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consolidated_builder_matches_manual_assembly() {
        let config = SweepConfig::quick().seed(11).retries(1);
        let mut manual_platform = Platform::builder().seed(11).build();
        let manual = SweepSupervisor::from_config(ReliabilityConfig::quick())
            .unwrap()
            .retry_policy(RetryPolicy::new(1))
            .run(&mut manual_platform)
            .unwrap();
        assert_eq!(config.run().unwrap(), manual);
    }

    #[test]
    fn platform_knobs_reach_the_platform() {
        let config = SweepConfig::quick()
            .seed(3)
            .workers(2)
            .v_crash(Millivolts(900))
            .transient_crashes(TransientCrashModel::new(0.5, Millivolts(40)));
        let platform = config.build_platform();
        assert_eq!(platform.seed(), 3);
        assert_eq!(platform.workers(), 2);
        assert_eq!(platform.v_crash(), Millivolts(900));
    }

    #[test]
    fn resilience_knobs_reach_the_supervisor() {
        let config = SweepConfig::quick()
            .retry_policy(RetryPolicy {
                max_retries: 5,
                base_delay_ms: 1,
                max_delay_ms: 4,
            })
            .point_deadline_ms(250)
            .checkpoint("/tmp/unused.json")
            .resume(true);
        // Building must accept all knobs; the run paths are covered by the
        // supervisor tests.
        config.build_supervisor().unwrap();
        assert_eq!(config.reliability().batch_size, 3);
    }

    #[test]
    fn invalid_measurement_knobs_surface_as_config_errors() {
        let err = SweepConfig::quick()
            .batch_size(0)
            .build_tester()
            .unwrap_err();
        assert!(matches!(err, ExperimentError::Config { .. }));
    }
}
