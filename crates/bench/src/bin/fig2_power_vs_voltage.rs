//! Regenerates Fig. 2: normalized HBM power vs supply voltage at
//! 0/25/50/75/100 % bandwidth utilization, normalized to 1.20 V / 310 GB/s.

fn main() {
    let seed = seed_from_args();
    let (report, rendered) = hbm_bench::fig2(seed).expect("fig2 pipeline");
    println!("Fig. 2 — normalized HBM power by undervolting (seed {seed})");
    println!(
        "reference: {:.3} at 1.20 V, 100% utilization\n",
        report.reference
    );
    print!("{rendered}");
    println!(
        "\nsavings: 1.5x target at 0.98 V -> {:.2}x ; 2.3x target at 0.85 V -> {:.2}x",
        report
            .saving(hbm_units::Millivolts(980), 32)
            .expect("0.98 V swept"),
        report
            .saving(hbm_units::Millivolts(850), 32)
            .expect("0.85 V swept"),
    );
}

fn seed_from_args() -> u64 {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(hbm_bench::DEFAULT_SEED)
}
