//! Sparse, page-allocated storage for one pseudo channel's memory array.

use std::collections::HashMap;

use crate::address::WordOffset;
use crate::error::DeviceError;
use crate::word::Word256;

/// Number of 256-bit words per allocation page (64 words = 2 KB).
const PAGE_WORDS: u64 = 64;

type Page = Box<[Word256]>;

/// A sparse memory array addressed in 256-bit AXI words.
///
/// Pages (2 KB) are allocated on first write, so modelling a full-scale
/// 256 MB pseudo channel costs memory proportional to the footprint actually
/// touched. Unwritten words read as the array's *background* word — all
/// zeros at construction, or whatever [`MemoryArray::clear_to`] installed
/// after the last power cycle (the model's deterministic power-up state).
///
/// # Examples
///
/// ```
/// use hbm_device::{MemoryArray, Word256, WordOffset};
///
/// # fn main() -> Result<(), hbm_device::DeviceError> {
/// let mut array = MemoryArray::new(1024);
/// array.write(WordOffset(3), Word256::ONES)?;
/// assert_eq!(array.read(WordOffset(3))?, Word256::ONES);
/// assert_eq!(array.read(WordOffset(4))?, Word256::ZERO);
/// assert!(array.read(WordOffset(1024)).is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct MemoryArray {
    capacity_words: u64,
    pages: HashMap<u64, Page>,
    words_written: u64,
    background: Word256,
}

impl MemoryArray {
    /// Creates an array of `capacity_words` 256-bit words, initially all
    /// zeros and occupying no page storage.
    #[must_use]
    pub fn new(capacity_words: u64) -> Self {
        MemoryArray {
            capacity_words,
            pages: HashMap::new(),
            words_written: 0,
            background: Word256::ZERO,
        }
    }

    /// Capacity in 256-bit words.
    #[must_use]
    pub fn capacity_words(&self) -> u64 {
        self.capacity_words
    }

    /// Reads the word at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::AddressOutOfRange`] if `offset` exceeds the
    /// capacity.
    pub fn read(&self, offset: WordOffset) -> Result<Word256, DeviceError> {
        self.check(offset)?;
        let (page, slot) = (offset.0 / PAGE_WORDS, (offset.0 % PAGE_WORDS) as usize);
        Ok(self.pages.get(&page).map_or(self.background, |p| p[slot]))
    }

    /// Writes `word` at `offset`, allocating its page if needed.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::AddressOutOfRange`] if `offset` exceeds the
    /// capacity.
    pub fn write(&mut self, offset: WordOffset, word: Word256) -> Result<(), DeviceError> {
        self.check(offset)?;
        let (page, slot) = (offset.0 / PAGE_WORDS, (offset.0 % PAGE_WORDS) as usize);
        let background = self.background;
        let page = self
            .pages
            .entry(page)
            .or_insert_with(|| vec![background; PAGE_WORDS as usize].into_boxed_slice());
        page[slot] = word;
        self.words_written += 1;
        Ok(())
    }

    /// Total number of write operations performed (activity accounting).
    #[must_use]
    pub fn words_written(&self) -> u64 {
        self.words_written
    }

    /// Number of pages currently allocated.
    #[must_use]
    pub fn allocated_pages(&self) -> usize {
        self.pages.len()
    }

    /// Resident model memory in bytes (diagnostics for large sweeps).
    #[must_use]
    pub fn resident_bytes(&self) -> u64 {
        self.pages.len() as u64 * PAGE_WORDS * 32
    }

    /// Discards all contents, returning the array to its power-up (all
    /// zeros) state and releasing page storage.
    pub fn clear(&mut self) {
        self.clear_to(Word256::ZERO);
    }

    /// Discards all contents and installs `background` as the word every
    /// uninitialized offset reads afterwards — how a power cycle
    /// re-randomizes DRAM content without allocating any pages.
    pub fn clear_to(&mut self, background: Word256) {
        self.pages.clear();
        self.words_written = 0;
        self.background = background;
    }

    /// The word uninitialized offsets currently read as.
    #[must_use]
    pub fn background(&self) -> Word256 {
        self.background
    }

    fn check(&self, offset: WordOffset) -> Result<(), DeviceError> {
        if offset.0 < self.capacity_words {
            Ok(())
        } else {
            Err(DeviceError::AddressOutOfRange {
                offset: offset.0,
                capacity_words: self.capacity_words,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_reads_zero_without_allocating() {
        let array = MemoryArray::new(4096);
        assert_eq!(array.read(WordOffset(0)).unwrap(), Word256::ZERO);
        assert_eq!(array.read(WordOffset(4095)).unwrap(), Word256::ZERO);
        assert_eq!(array.allocated_pages(), 0);
    }

    #[test]
    fn read_your_writes() {
        let mut array = MemoryArray::new(4096);
        let w = Word256::splat(0xDEAD_BEEF_CAFE_F00D);
        array.write(WordOffset(100), w).unwrap();
        assert_eq!(array.read(WordOffset(100)).unwrap(), w);
        // Neighbors in the same page stay zero.
        assert_eq!(array.read(WordOffset(99)).unwrap(), Word256::ZERO);
        assert_eq!(array.read(WordOffset(101)).unwrap(), Word256::ZERO);
        assert_eq!(array.allocated_pages(), 1);
    }

    #[test]
    fn overwrite_takes_latest_value() {
        let mut array = MemoryArray::new(64);
        array.write(WordOffset(0), Word256::ONES).unwrap();
        array.write(WordOffset(0), Word256::ZERO).unwrap();
        assert_eq!(array.read(WordOffset(0)).unwrap(), Word256::ZERO);
        assert_eq!(array.words_written(), 2);
    }

    #[test]
    fn bounds_checked() {
        let mut array = MemoryArray::new(64);
        assert_eq!(
            array.read(WordOffset(64)).unwrap_err(),
            DeviceError::AddressOutOfRange {
                offset: 64,
                capacity_words: 64
            }
        );
        assert!(array.write(WordOffset(u64::MAX), Word256::ZERO).is_err());
    }

    #[test]
    fn clear_releases_storage() {
        let mut array = MemoryArray::new(4096);
        for i in 0..512 {
            array.write(WordOffset(i), Word256::ONES).unwrap();
        }
        assert!(array.allocated_pages() > 0);
        assert!(array.resident_bytes() > 0);
        array.clear();
        assert_eq!(array.allocated_pages(), 0);
        assert_eq!(array.words_written(), 0);
        assert_eq!(array.read(WordOffset(0)).unwrap(), Word256::ZERO);
    }

    #[test]
    fn clear_to_installs_a_background_word() {
        let mut array = MemoryArray::new(4096);
        array.write(WordOffset(0), Word256::ONES).unwrap();
        let noise = Word256::splat(0xA5A5_5A5A_A5A5_5A5A);
        array.clear_to(noise);
        assert_eq!(array.background(), noise);
        // Written content is gone; every offset reads the background.
        assert_eq!(array.read(WordOffset(0)).unwrap(), noise);
        assert_eq!(array.read(WordOffset(4095)).unwrap(), noise);
        assert_eq!(array.allocated_pages(), 0);
        // A write only replaces its own word: page neighbours keep the
        // background, not zero.
        array.write(WordOffset(10), Word256::ZERO).unwrap();
        assert_eq!(array.read(WordOffset(10)).unwrap(), Word256::ZERO);
        assert_eq!(array.read(WordOffset(11)).unwrap(), noise);
        // A plain clear restores the all-zeros power-up state.
        array.clear();
        assert_eq!(array.read(WordOffset(10)).unwrap(), Word256::ZERO);
        assert_eq!(array.background(), Word256::ZERO);
    }

    #[test]
    fn sparse_writes_allocate_sparse_pages() {
        let mut array = MemoryArray::new(1 << 23); // full-scale PC: 8M words
        array.write(WordOffset(0), Word256::ONES).unwrap();
        array.write(WordOffset(1 << 22), Word256::ONES).unwrap();
        array
            .write(WordOffset((1 << 23) - 1), Word256::ONES)
            .unwrap();
        assert_eq!(array.allocated_pages(), 3);
        assert_eq!(array.resident_bytes(), 3 * 64 * 32);
    }
}
