//! Voltage-dependent fault model for HBM undervolting.
//!
//! This crate is the synthetic stand-in for the physical fault behaviour the
//! DATE 2021 study measures on real HBM silicon. It reproduces the
//! phenomenology the paper characterizes:
//!
//! - **a guardband**: zero faults at or above V_min = 0.98 V;
//! - **exponential onset**: below V_min the per-bit fault probability grows
//!   exponentially (linearly in decades per volt) until essentially every
//!   bit is faulty by ≈0.84 V;
//! - **polarity asymmetry**: the first 1→0 flips appear at 0.97 V, the first
//!   0→1 flips at 0.96 V, and averaged over the unsafe region the 0→1 rate
//!   is ≈21 % higher;
//! - **process variation**: HBM1 is ≈13 % more fault-prone than HBM0, some
//!   pseudo channels (PC4, PC5, PC18–PC20) are distinctly weaker, and banks
//!   vary mildly;
//! - **clustering**: faults concentrate in small "weak" row regions;
//! - **determinism**: every bit's failure voltage is a pure function of the
//!   device seed and the bit's address, so fault maps are stable and the
//!   faulty-bit set grows monotonically as the voltage drops.
//!
//! The model works in the *voltage domain*: every source of variation is a
//! shift of the bit's local effective voltage, so all variation composes
//! cleanly and saturation (all bits faulty) is preserved.
//!
//! # Model summary
//!
//! Each bit belongs to a fixed polarity class (stuck-at-0 with probability
//! `stuck0_share`, else stuck-at-1). Its class has a response curve
//! `c(v) = min(1, 10^(−D·(v − v_sat)))` giving the probability that a bit of
//! that class is faulty at effective voltage `v`. A deterministic hash of
//! `(seed, address)` supplies the bit's uniform draw; the bit is faulty at
//! `v` iff the draw is below `c(v − shift(address))`, which is equivalent to
//! assigning each bit a fixed failure voltage.
//!
//! # Examples
//!
//! ```
//! use hbm_device::{HbmGeometry, PcIndex, Word256, WordOffset};
//! use hbm_faults::{FaultInjector, FaultModelParams};
//! use hbm_units::Millivolts;
//!
//! # fn main() -> Result<(), hbm_device::DeviceError> {
//! let injector = FaultInjector::new(FaultModelParams::date21(), HbmGeometry::vcu128(), 7);
//! let pc = PcIndex::new(0)?;
//!
//! // In the guardband, reads are exact.
//! let safe = injector.observe(Word256::ONES, pc, WordOffset(0), Millivolts(980));
//! assert_eq!(safe, Word256::ONES);
//!
//! // Near total failure, almost everything flips.
//! let broken = injector.observe(Word256::ONES, pc, WordOffset(0), Millivolts(820));
//! assert!(broken.diff_bits(Word256::ONES) > 0);
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: the AVX2 tier of the bit-sliced kernel needs
// `std::arch` intrinsics, and `kernel::simd` is the one module allowed to
// use them (behind a runtime feature probe). Everything else stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod analytic;
mod error;
mod fault_map;
mod field;
pub mod hash;
mod injector;
mod kernel;
mod landmarks;
pub mod math;
mod params;
mod response;
pub mod stream;
mod variation;

pub use analytic::RatePredictor;
pub use error::FaultModelError;
pub use fault_map::{FaultMap, PcRateEntry, PcRateProfile};
pub use field::{CarryStats, FaultFieldMode, PcSweepCarry};
pub use injector::{FaultInjector, FaultPolarity};
pub use kernel::{FieldKernel, InstructionSet, KernelBackend, MaskKernel};
pub use landmarks::VoltageLandmarks;
pub use params::FaultModelParams;
pub use response::ResponseCurve;
pub use stream::pc_stream;
pub use variation::{ShiftTable, VariationModel};
