//! Serve-throughput bench: replays a mixed LDJSON workload (recommends
//! across the rate spectrum, summaries, parse errors, and a rescan-heavy
//! repeated-miss segment) through the concurrent serving pipeline at 1
//! worker and at the host's full parallelism, recording queries/sec to
//! `BENCH_serve_throughput.json`.
//!
//! Two acceptance properties are asserted, not just recorded: the
//! response byte stream at every measured worker count is identical to
//! sequential serving (the pipeline's in-order emitter is
//! throughput-only), and the single-flight rescan cache performs at
//! least 2× fewer kernel rescans than an uncached (zero-budget) service
//! on the repeated-miss segment. Throughput at >1 workers is recorded
//! honestly — on a 1-core host the speedup is ≈1× and that is the
//! expected result, not a failure.
//!
//! This is a plain `harness = false` binary (not Criterion) because the
//! deliverable is a machine-readable throughput/correctness record, not
//! a statistical distribution. Run with:
//! `cargo bench -p hbm-bench --bench serve_throughput`.

use std::time::Instant;

use hbm_fleet::{
    artifact, model, sweep, FleetConfig, FleetRequest, FleetResponse, FleetService, FleetStore,
    PipelineOptions,
};
use serde::Serialize;

const SEED: u64 = 7;
const DEVICES: u32 = 24;
const REPEATS: u32 = 4;
const ITERATIONS: u32 = 3;

#[derive(Serialize)]
struct Record {
    bench: &'static str,
    seed: u64,
    iterations: u32,
    devices: u32,
    host_parallelism: usize,
    note: &'static str,
    requests_total: usize,
    rescan_requests: usize,
    abstaining_devices: usize,
    qps_sequential: f64,
    qps_workers_1: f64,
    qps_workers_max: f64,
    speedup_max_vs_1: f64,
    byte_identical_across_workers: bool,
    kernel_rescans_cached: u64,
    kernel_rescans_uncached: u64,
    rescan_reduction: f64,
    rescan_cache_hits: u64,
    queue_depth_max_at_max_workers: u64,
    latency_p_max_us: u64,
}

/// The fault-onset grid of the `fleet_compress` bench: every device
/// faults mid-grid, which is exactly where a sound fidelity envelope
/// abstains and recommends fall back to the kernel-rescan path the
/// single-flight cache exists for.
fn config() -> FleetConfig {
    FleetConfig {
        devices: DEVICES,
        base_seed: SEED,
        workers: 0,
        from: hbm_units::Millivolts(900),
        down_to: hbm_units::Millivolts(820),
        step: hbm_units::Millivolts(5),
        weak_reference: hbm_units::Millivolts(900),
        ..FleetConfig::default()
    }
}

fn main() {
    println!("serve_throughput: {DEVICES} devices, seed {SEED}, best of {ITERATIONS} runs");

    let cfg = config();
    let records = sweep::run(&cfg).expect("fleet sweep").records;
    let exact = FleetStore::from_bytes(artifact::encode(&cfg, &records)).expect("exact store");
    let store = FleetStore::from_bytes(model::compress_store(&exact, false).expect("compress"))
        .expect("model-only store");
    let min_pcs = u32::from(cfg.geometry.total_pcs()).div_ceil(2);

    // Find the devices whose operating-point query misses the model
    // envelope: each probe uses a fresh service so its counters isolate
    // one request.
    let mut abstaining = Vec::new();
    for device_id in 0..DEVICES {
        let service = FleetService::new(store.clone());
        let request = FleetRequest::Recommend {
            device_id,
            target_rate: model::OPERATING_TARGET_RATE,
            min_pcs,
        };
        if let FleetResponse::Error(err) = service.handle(&request) {
            panic!("probe request failed: {}", err.message);
        }
        if service.stats().kernel_rescans > 0 {
            abstaining.push(device_id);
        }
    }
    assert!(
        !abstaining.is_empty(),
        "the mid-grid onset workload must produce envelope misses"
    );
    println!(
        "  workload : {}/{DEVICES} devices abstain to the rescan path",
        abstaining.len()
    );

    // Mixed segment: model-decided recommends, summaries, and in-band
    // errors. Rescan-heavy segment: the abstaining queries repeated
    // REPEATS times each — the cache answers every repeat after the first.
    let mut lines: Vec<String> = Vec::new();
    for device_id in 0..DEVICES {
        lines.push(format!(
            "{{\"Recommend\":{{\"device_id\":{device_id},\"target_rate\":0.01,\"min_pcs\":16}}}}"
        ));
        if device_id % 4 == 0 {
            lines.push("\"Summary\"".to_owned());
        }
        if device_id % 8 == 0 {
            lines.push("not json".to_owned());
        }
    }
    let mut rescan_lines: Vec<String> = Vec::new();
    for _ in 0..REPEATS {
        for &device_id in &abstaining {
            rescan_lines.push(format!(
                "{{\"Recommend\":{{\"device_id\":{device_id},\"target_rate\":{},\"min_pcs\":{min_pcs}}}}}",
                model::OPERATING_TARGET_RATE
            ));
        }
    }
    lines.extend(rescan_lines.iter().cloned());
    let input = lines.join("\n") + "\n";
    let requests_total = lines.len();

    // Sequential reference: the byte stream every pipeline run must equal.
    let sequential_service = FleetService::new(store.clone());
    let mut reference = Vec::new();
    let seq_start = Instant::now();
    hbm_fleet::serve::serve(&sequential_service, input.as_bytes(), &mut reference)
        .expect("sequential serve");
    let seq_secs = seq_start.elapsed().as_secs_f64();
    let qps_sequential = requests_total as f64 / seq_secs;
    println!("  sequential: {qps_sequential:.0} qps ({seq_secs:.3}s)");

    let host_parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let qps_at = |workers: usize| -> (f64, u64, u64) {
        let mut best = f64::INFINITY;
        let mut queue_depth = 0;
        let mut latency_max = 0;
        for _ in 0..ITERATIONS {
            let service = FleetService::new(store.clone());
            let mut out = Vec::new();
            let options = PipelineOptions {
                workers,
                completion_jitter: None,
            };
            let start = Instant::now();
            let stats = hbm_fleet::serve_concurrent(&service, input.as_bytes(), &mut out, &options)
                .expect("concurrent serve");
            best = best.min(start.elapsed().as_secs_f64());
            assert_eq!(
                out, reference,
                "serve output diverged from sequential at {workers} workers"
            );
            queue_depth = stats.queue_depth_max;
            latency_max = stats.latency.max_us;
        }
        (requests_total as f64 / best, queue_depth, latency_max)
    };
    let (qps_workers_1, _, _) = qps_at(1);
    println!("  1 worker  : {qps_workers_1:.0} qps");
    let (qps_workers_max, queue_depth_max, latency_p_max_us) = qps_at(host_parallelism);
    println!(
        "  {host_parallelism} worker(s): {qps_workers_max:.0} qps \
         (queue depth max {queue_depth_max})"
    );

    // Cache effectiveness on the repeated-miss segment alone: a default
    // cache rescans each abstaining device once; a zero-budget service
    // rescans every repeat.
    let rescan_input = rescan_lines.join("\n") + "\n";
    let cached = FleetService::new(store.clone());
    hbm_fleet::serve::serve(&cached, rescan_input.as_bytes(), &mut Vec::new())
        .expect("cached serve");
    let cached_stats = cached.stats();
    let uncached = FleetService::with_rescan_cache(store, 0);
    hbm_fleet::serve::serve(&uncached, rescan_input.as_bytes(), &mut Vec::new())
        .expect("uncached serve");
    let uncached_stats = uncached.stats();
    let reduction = uncached_stats.kernel_rescans as f64 / cached_stats.kernel_rescans as f64;
    println!(
        "  rescans   : {} cached vs {} uncached ({reduction:.1}x fewer)",
        cached_stats.kernel_rescans, uncached_stats.kernel_rescans
    );
    assert!(
        uncached_stats.kernel_rescans >= 2 * cached_stats.kernel_rescans,
        "the rescan cache must cut kernel rescans >= 2x on the repeated-miss \
         segment ({} cached vs {} uncached)",
        cached_stats.kernel_rescans,
        uncached_stats.kernel_rescans
    );

    let record = Record {
        bench: "serve_throughput",
        seed: SEED,
        iterations: ITERATIONS,
        devices: DEVICES,
        host_parallelism,
        note: "response byte stream asserted identical to sequential serving \
               at 1 and max workers; single-flight rescan cache asserted to \
               perform >= 2x fewer kernel rescans than a zero-budget service \
               on the repeated-miss segment; worker speedup is recorded \
               honestly and is ~1x on a 1-core host",
        requests_total,
        rescan_requests: rescan_lines.len(),
        abstaining_devices: abstaining.len(),
        qps_sequential,
        qps_workers_1,
        qps_workers_max,
        speedup_max_vs_1: qps_workers_max / qps_workers_1,
        byte_identical_across_workers: true,
        kernel_rescans_cached: cached_stats.kernel_rescans,
        kernel_rescans_uncached: uncached_stats.kernel_rescans,
        rescan_reduction: reduction,
        rescan_cache_hits: cached_stats.rescan_cache_hits,
        queue_depth_max_at_max_workers: queue_depth_max,
        latency_p_max_us,
    };

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_serve_throughput.json"
    );
    let body = serde_json::to_string_pretty(&record).expect("serialize record");
    std::fs::write(path, body + "\n").expect("write BENCH_serve_throughput.json");
    println!("wrote {path}");
}
