//! Fault-field regimes: how per-bit randomness is keyed across a voltage
//! sweep, and the carry state that makes descending sweeps incremental.
//!
//! The legacy regime ([`FaultFieldMode::PerVoltage`]) derives every draw
//! from `(seed, pc, word, bit)` through voltage-free hashes but rebuilds
//! each point's working set from scratch. The coupled regime
//! ([`FaultFieldMode::MonotoneCoupled`]) gives each bit one persistent
//! threshold in `[0, 1)`; the bit is faulty at supply `v` exactly when its
//! class-conditional fault probability `c(v)` exceeds that threshold. Fault
//! sets are then inclusion-monotone across descending voltage *by
//! construction*, and a sweep can carry its faulty-word working set from
//! point to point, re-enumerating only the words whose masks change.

use std::ops::Range;

use hbm_device::{PcIndex, Word256, WordOffset};
use hbm_units::{Celsius, Millivolts};
use serde::{Deserialize, Serialize};

/// How the fault injector keys per-bit randomness across a sweep.
///
/// Both regimes share the same analytic model (response curves, variation
/// shifts, polarity shares), so their *expected* fault rates are identical;
/// they differ only in which concrete bits fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FaultFieldMode {
    /// The legacy field: per-bit draws hashed from `(seed, pc, word, bit)`
    /// behind per-word gate draws. The default, bit-compatible with every
    /// existing fault map and determinism test.
    #[default]
    PerVoltage,
    /// The coupled field: each `(pc, word, bit)` owns a persistent threshold
    /// drawn once from a counter-based hash; the bit is faulty at voltage
    /// `v` iff its class's fault probability `c(v)` crosses the threshold.
    /// Fault sets grow monotonically as voltage descends, which enables the
    /// incremental sweep kernel ([`crate::FaultInjector::coupled_carry_advance`]).
    MonotoneCoupled,
}

impl FaultFieldMode {
    /// Stable CLI/config token for this mode (`per-voltage` / `coupled`).
    #[must_use]
    pub fn as_token(self) -> &'static str {
        match self {
            FaultFieldMode::PerVoltage => "per-voltage",
            FaultFieldMode::MonotoneCoupled => "coupled",
        }
    }

    /// Parses the stable token produced by [`FaultFieldMode::as_token`].
    #[must_use]
    pub fn from_token(token: &str) -> Option<Self> {
        match token {
            "per-voltage" => Some(FaultFieldMode::PerVoltage),
            "coupled" => Some(FaultFieldMode::MonotoneCoupled),
            _ => None,
        }
    }
}

/// One carried faulty word of a [`PcSweepCarry`]: its current masks plus the
/// smallest still-clean per-bit threshold of each class, which is the next
/// probability level at which the word's mask will change.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CarryEntry {
    /// Word offset within the pseudo channel.
    pub(crate) offset: u32,
    /// Current stuck-at-0 mask.
    pub(crate) stuck0: Word256,
    /// Current stuck-at-1 mask.
    pub(crate) stuck1: Word256,
    /// Minimum threshold among still-clean stuck-at-0-class bits
    /// (`f64::INFINITY` when the class is exhausted). Only meaningful on
    /// the word-granular carry tier.
    pub(crate) next0: f64,
    /// Minimum threshold among still-clean stuck-at-1-class bits.
    pub(crate) next1: f64,
    /// Advance sequence number of the last change (bit-granular tier's
    /// touched-word accounting).
    pub(crate) touch: u32,
}

/// The still-clean bit thresholds of a bit-granular carry, per tile and
/// polarity class, each list ascending by threshold so the bits crossing
/// in one descent step form a drained prefix. This is what makes a sweep
/// advance scale with *bit deltas*: every `(word, bit)` is hashed exactly
/// once (at carry start) and thereafter consumed exactly once, at the
/// point where its threshold is crossed.
#[derive(Debug, Clone)]
pub(crate) struct PendingBits {
    /// Per-tile pending stuck-at-0-class bits.
    pub(crate) class0: Vec<PendingClass>,
    /// Per-tile pending stuck-at-1-class bits.
    pub(crate) class1: Vec<PendingClass>,
    /// Map from `offset − words.start` to the word's index in `entries`
    /// (`u32::MAX` when the word has no faulty bits yet).
    pub(crate) entry_of: Vec<u32>,
    /// Advance sequence number backing the touched-word accounting.
    pub(crate) seq: u32,
}

/// One tile's pending bits of one class.
#[derive(Debug, Clone, Default)]
pub(crate) struct PendingClass {
    /// `(raw 32-bit threshold, slot << 8 | bit)`, ascending by threshold.
    pub(crate) bits: Vec<(u32, u32)>,
    /// Length of the consumed (already-faulty) prefix.
    pub(crate) cursor: usize,
}

/// The carried working set of one pseudo channel's descending sweep under
/// [`FaultFieldMode::MonotoneCoupled`]: every faulty word of the range at
/// the carry's voltage, with enough per-word state to advance to a lower
/// voltage without re-hashing unchanged words.
///
/// Built by [`crate::FaultInjector::coupled_carry_start`] and advanced by
/// [`crate::FaultInjector::coupled_carry_advance`]; the masks it holds are
/// bit-identical to a from-scratch enumeration at the same voltage.
#[derive(Debug, Clone)]
pub struct PcSweepCarry {
    pub(crate) pc: PcIndex,
    pub(crate) words: Range<u64>,
    pub(crate) voltage: Millivolts,
    pub(crate) temperature: Celsius,
    /// Faulty words, ascending by offset.
    pub(crate) entries: Vec<CarryEntry>,
    /// Bit-granular pending thresholds; `None` on the word-granular tier
    /// (ranges above the bit-carry capacity).
    pub(crate) pending: Option<PendingBits>,
}

impl PcSweepCarry {
    /// The pseudo channel this carry tracks.
    #[must_use]
    pub fn pc(&self) -> PcIndex {
        self.pc
    }

    /// The word range this carry tracks.
    #[must_use]
    pub fn words(&self) -> Range<u64> {
        self.words.clone()
    }

    /// The voltage the carried masks are valid at.
    #[must_use]
    pub fn voltage(&self) -> Millivolts {
        self.voltage
    }

    /// Number of faulty words currently carried.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no word of the range is faulty at the carry's voltage.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Runs `f` over every carried faulty word in ascending offset order,
    /// without materializing a mask vector.
    pub fn for_each_mask<F: FnMut(WordOffset, Word256, Word256)>(&self, mut f: F) {
        for entry in &self.entries {
            f(
                WordOffset(u64::from(entry.offset)),
                entry.stuck0,
                entry.stuck1,
            );
        }
    }

    /// The carried masks as a sorted `(offset, stuck0, stuck1)` vector —
    /// the same shape [`crate::FaultInjector::coupled_faulty_words`]
    /// returns.
    #[must_use]
    pub fn masks(&self) -> Vec<(WordOffset, Word256, Word256)> {
        self.entries
            .iter()
            .map(|e| (WordOffset(u64::from(e.offset)), e.stuck0, e.stuck1))
            .collect()
    }
}

/// Per-point accounting of a carry start or advance: how much of the
/// working set was reused versus re-enumerated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CarryStats {
    /// Carried words whose masks were reused without re-hashing any bit.
    pub carried: u64,
    /// Carried words re-enumerated because a bit threshold was crossed.
    pub refreshed: u64,
    /// Words newly activated (first faulty bit) at the new voltage.
    pub activated: u64,
}

impl CarryStats {
    /// Words whose bits were (re-)enumerated this point — the incremental
    /// kernel's actual hashing work.
    #[must_use]
    pub fn delta_words(&self) -> u64 {
        self.refreshed + self.activated
    }

    /// Fraction of the resulting working set served from the carry,
    /// `carried / (carried + refreshed + activated)`; `1.0` for an empty
    /// set (nothing needed recomputing).
    #[must_use]
    pub fn reuse_ratio(&self) -> f64 {
        let total = self.carried + self.refreshed + self.activated;
        if total == 0 {
            1.0
        } else {
            self.carried as f64 / total as f64
        }
    }

    /// Accumulates another point's stats into this one.
    pub fn absorb(&mut self, other: CarryStats) {
        self.carried += other.carried;
        self.refreshed += other.refreshed;
        self.activated += other.activated;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_tokens_round_trip() {
        for mode in [FaultFieldMode::PerVoltage, FaultFieldMode::MonotoneCoupled] {
            assert_eq!(FaultFieldMode::from_token(mode.as_token()), Some(mode));
        }
        assert_eq!(FaultFieldMode::from_token("bogus"), None);
        assert_eq!(FaultFieldMode::default(), FaultFieldMode::PerVoltage);
    }

    #[test]
    fn mode_serde_round_trip() {
        for mode in [FaultFieldMode::PerVoltage, FaultFieldMode::MonotoneCoupled] {
            let json = serde_json::to_string(&mode).unwrap();
            let back: FaultFieldMode = serde_json::from_str(&json).unwrap();
            assert_eq!(back, mode);
        }
    }

    #[test]
    fn carry_stats_ratios() {
        let mut s = CarryStats {
            carried: 6,
            refreshed: 1,
            activated: 1,
        };
        assert_eq!(s.delta_words(), 2);
        assert!((s.reuse_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(CarryStats::default().reuse_ratio(), 1.0);
        s.absorb(CarryStats {
            carried: 2,
            refreshed: 0,
            activated: 0,
        });
        assert_eq!(s.carried, 8);
    }
}
