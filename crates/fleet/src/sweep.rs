//! The work-stealing multi-device sweep engine.
//!
//! Device IDs are split into one contiguous range per worker; each worker
//! drains its own range front-to-back and, when empty, steals the upper
//! half of the fattest remaining victim range. Ranges live in packed
//! `AtomicU64` cells (`hi << 32 | lo`), so owner pops and thief splits are
//! single CAS operations — no locks, no channels.
//!
//! Determinism: a [`DeviceRecord`] is a pure function of
//! `(FleetConfig, device_id)`, workers only ever *partition* the ID space,
//! and the merge sorts by device ID. The result is bit-identical for any
//! worker count and any steal interleaving; only the run *stats* (steal
//! counts, wall time) are scheduling-dependent.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use hbm_faults::{FaultFieldMode, FaultInjector, MaskKernel};

use crate::config::{DeviceSpec, FleetConfig, FleetError};
use crate::record::{DeviceRecord, CRASHED_KNOT};

/// A work range `[lo, hi)` of schedule slots, packed into one atomic so
/// owner pops and thief splits are single compare-exchanges.
struct RangeCell(AtomicU64);

impl RangeCell {
    fn new(lo: u32, hi: u32) -> Self {
        RangeCell(AtomicU64::new(Self::pack(lo, hi)))
    }

    fn pack(lo: u32, hi: u32) -> u64 {
        (u64::from(hi) << 32) | u64::from(lo)
    }

    fn unpack(v: u64) -> (u32, u32) {
        ((v & 0xffff_ffff) as u32, (v >> 32) as u32)
    }

    /// Owner side: claims the next slot from the front.
    fn pop(&self) -> Option<u32> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (lo, hi) = Self::unpack(cur);
            if lo >= hi {
                return None;
            }
            match self.0.compare_exchange_weak(
                cur,
                Self::pack(lo + 1, hi),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(lo),
                Err(now) => cur = now,
            }
        }
    }

    /// Thief side: splits off the upper half of the remaining range.
    /// Leaves single-slot ranges to their owner to avoid duelling over
    /// the last item.
    fn steal_half(&self) -> Option<(u32, u32)> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (lo, hi) = Self::unpack(cur);
            let len = hi.saturating_sub(lo);
            if len < 2 {
                return None;
            }
            let mid = hi - len / 2;
            match self.0.compare_exchange_weak(
                cur,
                Self::pack(lo, mid),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((mid, hi)),
                Err(now) => cur = now,
            }
        }
    }

    /// Owner side: replaces an empty range with freshly stolen work.
    fn refill(&self, lo: u32, hi: u32) {
        self.0.store(Self::pack(lo, hi), Ordering::Release);
    }

    fn remaining(&self) -> u32 {
        let (lo, hi) = Self::unpack(self.0.load(Ordering::Acquire));
        hi.saturating_sub(lo)
    }
}

/// Scheduling-dependent accounting of one fleet run. Never part of the
/// deterministic result; surfaced through telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetRunStats {
    /// Workers the run actually used.
    pub workers: usize,
    /// Devices characterized (always the full fleet on success).
    pub devices_swept: u64,
    /// Devices that migrated to another worker via a successful steal
    /// (a device re-stolen later counts once per migration).
    pub devices_stolen: u64,
    /// Successful steal operations.
    pub steals: u64,
    /// Wall time of the sweep in milliseconds.
    pub wall_ms: u64,
}

/// A finished fleet sweep: records sorted by device ID plus run stats.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// One record per device, ascending by `device_id`.
    pub records: Vec<DeviceRecord>,
    /// Scheduling-dependent accounting.
    pub stats: FleetRunStats,
}

/// Characterizes one device with the coupled-carry kernel descent.
///
/// Per pseudo channel, the descent starts a carry at the top knot and
/// advances it downward, so the incremental-sweep and bit-sliced kernel
/// wins compound per device. Knots below the device's crash floor are
/// marked [`CRASHED_KNOT`] — the same cliff the supervised platform sweep
/// reports as crashed points.
#[must_use]
pub fn characterize_device(cfg: &FleetConfig, spec: DeviceSpec) -> DeviceRecord {
    let injector = FaultInjector::new(cfg.params.clone(), cfg.geometry, spec.seed);
    let kernel = injector.kernel(FaultFieldMode::MonotoneCoupled, cfg.backend);
    let knots = cfg.knots();
    let words = 0..cfg.words_per_pc;
    let pcs = cfg.geometry.total_pcs();

    // Knots only descend: everything below the crash floor stays crashed.
    let live: Vec<_> = knots
        .iter()
        .copied()
        .take_while(|&v| v >= spec.crash_floor)
        .collect();
    let mut faults = vec![CRASHED_KNOT; usize::from(pcs) * knots.len()];
    for pc in 0..pcs {
        let pc_index = hbm_device::PcIndex::new(pc).expect("geometry PC in range");
        let row = usize::from(pc) * knots.len();
        for (k, count) in kernel
            .count_descent(pc_index, words.clone(), &live)
            .into_iter()
            .enumerate()
        {
            faults[row + k] = u16::try_from(count).expect("counts bounded by words*256 <= 65280");
        }
    }
    DeviceRecord::assemble(cfg, spec, faults)
}

/// Runs a fleet sweep with the built-in kernel runner.
///
/// # Errors
///
/// Returns [`FleetError::Config`] when the configuration is invalid.
pub fn run(cfg: &FleetConfig) -> Result<FleetReport, FleetError> {
    run_with(cfg, characterize_device)
}

/// Runs a fleet sweep with a caller-supplied per-device runner (core's
/// supervised platform path plugs in here).
///
/// # Errors
///
/// Returns [`FleetError::Config`] when the configuration is invalid.
pub fn run_with<F>(cfg: &FleetConfig, runner: F) -> Result<FleetReport, FleetError>
where
    F: Fn(&FleetConfig, DeviceSpec) -> DeviceRecord + Sync,
{
    let schedule: Vec<u32> = (0..cfg.devices).collect();
    run_scheduled(cfg, &schedule, runner)
}

/// Runs a fleet sweep over an explicit schedule order — a permutation of
/// `0..devices` — so tests can prove the merged result is independent of
/// the order workers encounter devices in.
///
/// # Errors
///
/// Returns [`FleetError::Config`] for an invalid config or a schedule
/// that is not a permutation of the fleet's device IDs.
pub fn run_scheduled<F>(
    cfg: &FleetConfig,
    schedule: &[u32],
    runner: F,
) -> Result<FleetReport, FleetError>
where
    F: Fn(&FleetConfig, DeviceSpec) -> DeviceRecord + Sync,
{
    cfg.validate()?;
    if schedule.len() != cfg.devices as usize {
        return Err(FleetError::Config(format!(
            "schedule lists {} devices, fleet has {}",
            schedule.len(),
            cfg.devices
        )));
    }
    let mut seen = vec![false; cfg.devices as usize];
    for &id in schedule {
        if id >= cfg.devices || std::mem::replace(&mut seen[id as usize], true) {
            return Err(FleetError::Config(format!(
                "schedule is not a permutation of 0..{} (device {id})",
                cfg.devices
            )));
        }
    }

    let workers = cfg.effective_workers();
    let n = schedule.len() as u32;
    let start = Instant::now();

    // One contiguous slot range per worker, balanced to within one slot.
    let cells: Vec<RangeCell> = (0..workers as u32)
        .map(|w| {
            let lo = w * n / workers as u32;
            let hi = (w + 1) * n / workers as u32;
            RangeCell::new(lo, hi)
        })
        .collect();
    let stolen = AtomicU64::new(0);
    let steals = AtomicU64::new(0);

    let mut per_worker: Vec<Vec<DeviceRecord>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|me| {
                let cells = &cells;
                let stolen = &stolen;
                let steals = &steals;
                let runner = &runner;
                scope.spawn(move || {
                    let mut records = Vec::new();
                    loop {
                        if let Some(slot) = cells[me].pop() {
                            let spec = cfg.device_spec(schedule[slot as usize]);
                            records.push(runner(cfg, spec));
                            continue;
                        }
                        // Own range drained: steal the upper half of the
                        // fattest victim so stolen batches stay chunky.
                        let victim = (0..workers)
                            .filter(|&w| w != me)
                            .max_by_key(|&w| cells[w].remaining())
                            .filter(|&w| cells[w].remaining() >= 2);
                        let Some(victim) = victim else { break };
                        if let Some((lo, hi)) = cells[victim].steal_half() {
                            steals.fetch_add(1, Ordering::Relaxed);
                            stolen.fetch_add(u64::from(hi - lo), Ordering::Relaxed);
                            cells[me].refill(lo, hi);
                        }
                    }
                    records
                })
            })
            .collect();
        for handle in handles {
            per_worker.push(handle.join().expect("fleet worker panicked"));
        }
    });

    let mut records: Vec<DeviceRecord> = per_worker.into_iter().flatten().collect();
    records.sort_by_key(|r| r.device_id);
    debug_assert_eq!(records.len(), cfg.devices as usize);

    let stats = FleetRunStats {
        workers,
        devices_swept: u64::from(cfg.devices),
        devices_stolen: stolen.load(Ordering::Relaxed),
        steals: steals.load(Ordering::Relaxed),
        wall_ms: u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX),
    };
    Ok(FleetReport { records, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbm_units::Millivolts;

    fn small_cfg(devices: u32, workers: usize) -> FleetConfig {
        FleetConfig {
            devices,
            workers,
            words_per_pc: 8,
            from: Millivolts(980),
            down_to: Millivolts(900),
            step: Millivolts(20),
            weak_reference: Millivolts(900),
            ..FleetConfig::default()
        }
    }

    #[test]
    fn range_cell_pop_and_steal() {
        let cell = RangeCell::new(0, 10);
        assert_eq!(cell.pop(), Some(0));
        let (lo, hi) = cell.steal_half().unwrap();
        assert_eq!((lo, hi), (6, 10)); // 9 remaining, upper 4 stolen
        assert_eq!(cell.remaining(), 5);
        let single = RangeCell::new(3, 4);
        assert_eq!(single.steal_half(), None, "last slot stays with owner");
        assert_eq!(single.pop(), Some(3));
        assert_eq!(single.pop(), None);
    }

    #[test]
    fn worker_counts_agree_bit_for_bit() {
        let base = run(&small_cfg(9, 1)).unwrap();
        for workers in [2, 4, 8] {
            let multi = run(&small_cfg(9, workers)).unwrap();
            assert_eq!(base.records, multi.records, "{workers} workers diverged");
        }
    }

    #[test]
    fn schedule_order_does_not_matter() {
        let cfg = small_cfg(7, 3);
        let forward = run(&cfg).unwrap();
        let reversed: Vec<u32> = (0..7).rev().collect();
        let shuffled = run_scheduled(&cfg, &reversed, characterize_device).unwrap();
        assert_eq!(forward.records, shuffled.records);
    }

    #[test]
    fn bad_schedules_are_rejected() {
        let cfg = small_cfg(3, 1);
        assert!(run_scheduled(&cfg, &[0, 1], characterize_device).is_err());
        assert!(run_scheduled(&cfg, &[0, 1, 1], characterize_device).is_err());
        assert!(run_scheduled(&cfg, &[0, 1, 3], characterize_device).is_err());
    }

    #[test]
    fn crash_floor_marks_low_knots_crashed() {
        let mut cfg = small_cfg(2, 1);
        cfg.down_to = Millivolts(780);
        cfg.weak_reference = Millivolts(980);
        let report = run(&cfg).unwrap();
        let knots = cfg.knots();
        for rec in &report.records {
            let crashed: Vec<bool> = knots
                .iter()
                .map(|&v| v < Millivolts(u32::from(rec.crash_mv)))
                .collect();
            for (k, &is_crashed) in crashed.iter().enumerate() {
                for pc in 0..usize::from(cfg.geometry.total_pcs()) {
                    let count = rec.faults[pc * knots.len() + k];
                    assert_eq!(count == CRASHED_KNOT, is_crashed, "pc {pc} knot {k}");
                }
            }
        }
    }
}
