//! Clocking and bandwidth model.
//!
//! The study's platform clocks the memory arrays at 900 MHz; as double data
//! rate memory that is 1800 mega-transfers per second on each 64-bit pseudo
//! channel. The 256-bit AXI ports run at a quarter of the transfer rate
//! (450 MHz) thanks to the 4:1 width ratio and still saturate the memory.
//!
//! Three bandwidth figures matter and all appear in the paper:
//!
//! - the raw pin bandwidth, 32 PCs × 8 B × 1800 MT/s = 460.8 GB/s;
//! - the datasheet combined peak of the VCU128, 429 GB/s (refresh and
//!   protocol overhead);
//! - the 310 GB/s the authors actually reach with their traffic generators.

use hbm_units::{GigabytesPerSecond, Megahertz, Ratio};
use serde::{Deserialize, Serialize};

use crate::geometry::HbmGeometry;

/// Memory and fabric clocking of the platform.
///
/// # Examples
///
/// ```
/// use hbm_device::ClockConfig;
///
/// let clock = ClockConfig::vcu128();
/// assert_eq!(clock.memory_clock().0, 900.0);
/// assert_eq!(clock.data_rate_mts(), 1800.0);
/// assert_eq!(clock.axi_clock().0, 450.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClockConfig {
    memory_clock: Megahertz,
}

impl ClockConfig {
    /// The study's configuration: 900 MHz memory clock.
    #[must_use]
    pub fn vcu128() -> Self {
        ClockConfig {
            memory_clock: Megahertz(900.0),
        }
    }

    /// Creates a custom memory clock.
    ///
    /// # Panics
    ///
    /// Panics if the clock is not positive and finite.
    #[must_use]
    pub fn new(memory_clock: Megahertz) -> Self {
        assert!(
            memory_clock.is_finite() && memory_clock.0 > 0.0,
            "memory clock must be positive, got {memory_clock}"
        );
        ClockConfig { memory_clock }
    }

    /// The memory array clock.
    #[must_use]
    pub fn memory_clock(self) -> Megahertz {
        self.memory_clock
    }

    /// Data transfer rate in mega-transfers per second (double data rate).
    #[must_use]
    pub fn data_rate_mts(self) -> f64 {
        self.memory_clock.0 * 2.0
    }

    /// The AXI port clock: a quarter of the data rate, exploiting the 4:1
    /// port-to-PC width ratio.
    #[must_use]
    pub fn axi_clock(self) -> Megahertz {
        Megahertz(self.data_rate_mts() / 4.0)
    }
}

impl Default for ClockConfig {
    fn default() -> Self {
        ClockConfig::vcu128()
    }
}

/// Datasheet derate from raw pin bandwidth: 429 GB/s combined peak quoted
/// for the VCU128 out of 460.8 GB/s raw.
const DATASHEET_DERATE: f64 = 429.0 / 460.8;

/// Traffic-generator efficiency the study achieves: 310 GB/s of the
/// 429 GB/s datasheet peak.
const TG_EFFICIENCY: f64 = 310.0 / 429.0;

/// Analytic bandwidth model of the platform.
///
/// # Examples
///
/// ```
/// use hbm_device::{BandwidthModel, ClockConfig, HbmGeometry};
///
/// let bw = BandwidthModel::vcu128();
/// assert!((bw.raw_peak().0 - 460.8).abs() < 1e-9);
/// assert!((bw.datasheet_peak().0 - 429.0).abs() < 1e-9);
/// assert!((bw.achieved_peak().0 - 310.0).abs() < 1e-9);
///
/// // Half the ports give half the bandwidth; undervolting does not change it.
/// assert!((bw.achieved(16, 1.0).0 - 155.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandwidthModel {
    geometry: HbmGeometry,
    clock: ClockConfig,
    datasheet_derate: f64,
    tg_efficiency: f64,
}

impl BandwidthModel {
    /// The study's platform model (full-scale VCU128 geometry and clocks).
    #[must_use]
    pub fn vcu128() -> Self {
        BandwidthModel::new(HbmGeometry::vcu128(), ClockConfig::vcu128())
    }

    /// Creates a bandwidth model for a geometry and clock configuration with
    /// the study's derate/efficiency figures.
    #[must_use]
    pub fn new(geometry: HbmGeometry, clock: ClockConfig) -> Self {
        BandwidthModel {
            geometry,
            clock,
            datasheet_derate: DATASHEET_DERATE,
            tg_efficiency: TG_EFFICIENCY,
        }
    }

    /// Overrides the traffic-generator efficiency (achieved / datasheet).
    ///
    /// # Panics
    ///
    /// Panics unless `efficiency` is in `(0, 1]`.
    #[must_use]
    pub fn with_tg_efficiency(mut self, efficiency: f64) -> Self {
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "efficiency must be in (0, 1], got {efficiency}"
        );
        self.tg_efficiency = efficiency;
        self
    }

    /// Raw pin bandwidth: every pseudo channel moving 8 bytes per transfer.
    #[must_use]
    pub fn raw_peak(&self) -> GigabytesPerSecond {
        let bytes_per_sec =
            f64::from(self.geometry.total_pcs()) * 8.0 * self.clock.data_rate_mts() * 1.0e6;
        GigabytesPerSecond(bytes_per_sec / 1.0e9)
    }

    /// Combined theoretical peak after refresh/protocol overhead
    /// (429 GB/s on the study platform).
    #[must_use]
    pub fn datasheet_peak(&self) -> GigabytesPerSecond {
        self.raw_peak() * self.datasheet_derate
    }

    /// Peak bandwidth the traffic generators actually achieve with all
    /// ports enabled (310 GB/s in the study).
    #[must_use]
    pub fn achieved_peak(&self) -> GigabytesPerSecond {
        self.datasheet_peak() * self.tg_efficiency
    }

    /// Achieved bandwidth with `enabled_ports` ports running flat out and a
    /// switching-network derate factor (1.0 when the switch is disabled).
    ///
    /// # Panics
    ///
    /// Panics if `enabled_ports` exceeds the geometry's port count.
    #[must_use]
    pub fn achieved(&self, enabled_ports: usize, switch_derate: f64) -> GigabytesPerSecond {
        let total = usize::from(self.geometry.total_pcs());
        assert!(
            enabled_ports <= total,
            "enabled_ports {enabled_ports} exceeds total ports {total}"
        );
        self.achieved_peak() * (enabled_ports as f64 / total as f64) * switch_derate
    }

    /// Bandwidth utilization ratio for a port count (8 ports → 25 %).
    ///
    /// # Panics
    ///
    /// Panics if `enabled_ports` exceeds the geometry's port count.
    #[must_use]
    pub fn utilization(&self, enabled_ports: usize) -> Ratio {
        let total = usize::from(self.geometry.total_pcs());
        assert!(
            enabled_ports <= total,
            "enabled_ports {enabled_ports} exceeds total ports {total}"
        );
        Ratio(enabled_ports as f64 / total as f64)
    }
}

impl Default for BandwidthModel {
    fn default() -> Self {
        BandwidthModel::vcu128()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_figures_match_paper() {
        let clock = ClockConfig::vcu128();
        assert_eq!(clock.memory_clock(), Megahertz(900.0));
        assert_eq!(clock.data_rate_mts(), 1800.0);
        assert_eq!(clock.axi_clock(), Megahertz(450.0));
    }

    #[test]
    fn bandwidth_figures_match_paper() {
        let bw = BandwidthModel::vcu128();
        assert!((bw.raw_peak().0 - 460.8).abs() < 1e-9);
        assert!((bw.datasheet_peak().0 - 429.0).abs() < 1e-9);
        assert!((bw.achieved_peak().0 - 310.0).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_scales_with_ports() {
        let bw = BandwidthModel::vcu128();
        assert!((bw.achieved(8, 1.0).0 - 77.5).abs() < 1e-9);
        assert!((bw.achieved(16, 1.0).0 - 155.0).abs() < 1e-9);
        assert!((bw.achieved(24, 1.0).0 - 232.5).abs() < 1e-9);
        assert_eq!(bw.achieved(0, 1.0), GigabytesPerSecond::ZERO);
    }

    #[test]
    fn switch_derate_reduces_bandwidth() {
        let bw = BandwidthModel::vcu128();
        let direct = bw.achieved(32, 1.0);
        let switched = bw.achieved(32, 0.8);
        assert!((switched.0 - direct.0 * 0.8).abs() < 1e-9);
    }

    #[test]
    fn utilization_steps() {
        let bw = BandwidthModel::vcu128();
        assert_eq!(bw.utilization(0), Ratio(0.0));
        assert_eq!(bw.utilization(8), Ratio(0.25));
        assert_eq!(bw.utilization(16), Ratio(0.5));
        assert_eq!(bw.utilization(24), Ratio(0.75));
        assert_eq!(bw.utilization(32), Ratio(1.0));
    }

    #[test]
    #[should_panic(expected = "exceeds total ports")]
    fn too_many_ports_rejected() {
        let _ = BandwidthModel::vcu128().achieved(33, 1.0);
    }

    #[test]
    fn efficiency_override() {
        let bw = BandwidthModel::vcu128().with_tg_efficiency(1.0);
        assert!((bw.achieved_peak().0 - 429.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1]")]
    fn bad_efficiency_rejected() {
        let _ = BandwidthModel::vcu128().with_tg_efficiency(0.0);
    }

    #[test]
    fn reduced_geometry_same_bandwidth() {
        // Bandwidth depends on organization (PC count), not capacity.
        let reduced = BandwidthModel::new(HbmGeometry::vcu128_reduced(), ClockConfig::vcu128());
        assert_eq!(
            reduced.achieved_peak(),
            BandwidthModel::vcu128().achieved_peak()
        );
    }
}
