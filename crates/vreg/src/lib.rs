//! Voltage-regulation substrate of the HBM undervolting reproduction.
//!
//! The DATE 2021 study tunes the HBM supply rail of a Xilinx VCU128 board by
//! talking PMBus to an Intersil **ISL68301** regulator and reads power from a
//! Texas Instruments **INA226** monitor. This crate models that board-level
//! plumbing so the measurement harness exercises the same code paths a real
//! host would:
//!
//! - [`pmbus`]: the PMBus data formats (LINEAR11, VOUT-mode LINEAR16) and
//!   command set, plus a [`PmbusDevice`] transaction trait;
//! - [`Isl68301`]: a register-level regulator model with output clamping,
//!   over/under-voltage protection latches and telemetry;
//! - [`Ina226`]: a register-level power monitor with the real part's LSB
//!   quantization, calibration register and averaging;
//! - [`PowerRail`]: the composition — regulator, shunt, monitor and an
//!   externally supplied load — standing in for the `VCC_HBM` rail.
//!
//! The electrical *load* on the rail (how much power the HBM draws at a
//! given voltage and bandwidth) is deliberately not modelled here; the
//! `hbm-power` crate owns that physics and the platform layer feeds it in
//! through [`PowerRail::apply_load`].
//!
//! # Examples
//!
//! ```
//! use hbm_units::{Millivolts, Watts};
//! use hbm_vreg::{HostInterface, PowerRail};
//!
//! # fn main() -> Result<(), hbm_vreg::PmbusError> {
//! let mut rail = PowerRail::vcc_hbm(7);
//! // Undervolt by two 10 mV steps from nominal, as the host tool would.
//! let mut host = HostInterface::new(rail.regulator_mut());
//! host.set_vout(Millivolts(1180))?;
//! rail.apply_load(Watts(5.0));
//! let sample = rail.sample()?;
//! assert_eq!(sample.requested, Millivolts(1180));
//! assert!((sample.power.0 - 5.0).abs() < 0.1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod ina226;
mod isl68301;
pub mod pmbus;
mod rail;

pub use error::PmbusError;
pub use ina226::{
    AveragingMode, Ina226, Ina226Config, Ina226Register, ALERT_FUNCTION_FLAG,
    CONVERSION_READY_FLAG, MASK_BUS_UNDER_VOLTAGE, MASK_POWER_OVER_LIMIT,
};
pub use isl68301::{Isl68301, MarginState, OperationState, RegulatorLimits};
pub use pmbus::{HostInterface, PmbusCommand, PmbusDevice};
pub use rail::{PowerRail, RailSample};
