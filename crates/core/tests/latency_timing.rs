//! Property tests for the voltage–latency coupling: the timing stretch is
//! monotone in the rail, a pure function of `(seed, voltage)` (so worker
//! counts cannot perturb it), and the governor's closed-loop use of it is
//! bit-identical per `(seed, config)`.

use hbm_device::{AccessPattern, AccessTimingModel, TimingStretchModel};
use hbm_undervolt::{GovernorConfig, GovernorScenario, Platform, UndervoltGovernor, WorkloadMode};
use hbm_units::Millivolts;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// As the rail descends from nominal to the deep-undervolt band, every
    /// access pattern's latency is non-decreasing and its delivered
    /// bandwidth non-increasing — for any device specimen, including its
    /// ±10 % hashed slope variation.
    #[test]
    fn timing_stretch_is_monotone_in_voltage(seed in any::<u64>()) {
        let model = AccessTimingModel::vcu128();
        let stretch = TimingStretchModel::date21();
        for pattern in [
            AccessPattern::SequentialStream,
            AccessPattern::StridedSingleWord,
            AccessPattern::RandomWord,
        ] {
            let mut last_latency = 0.0f64;
            let mut last_bandwidth = f64::INFINITY;
            let mut v = Millivolts(1200);
            while v >= Millivolts(810) {
                let at = model.at_voltage(&stretch, seed, v);
                let latency = at.access_latency_ns(pattern);
                let bandwidth = at.delivered_gbps(pattern);
                prop_assert!(
                    latency >= last_latency,
                    "{pattern:?} latency shrank at {v}: {latency} < {last_latency}"
                );
                prop_assert!(
                    bandwidth <= last_bandwidth,
                    "{pattern:?} bandwidth grew at {v}: {bandwidth} > {last_bandwidth}"
                );
                prop_assert!(bandwidth > 0.0, "{pattern:?} delivers nothing at {v}");
                last_latency = latency;
                last_bandwidth = bandwidth;
                v = v.saturating_sub(Millivolts(10));
            }
        }
    }

    /// The platform's effective timings are a pure function of the seed
    /// and the rail the device sees: the engine's worker count cannot
    /// perturb them at any set-point.
    #[test]
    fn effective_timings_ignore_worker_count(seed in any::<u64>(), dv in 0u32..36) {
        let v = Millivolts(1200 - dv * 10);
        let mut sequential = Platform::builder().seed(seed).workers(1).build();
        let mut parallel = Platform::builder().seed(seed).workers(4).build();
        sequential.set_voltage(v).unwrap();
        parallel.set_voltage(v).unwrap();
        prop_assert_eq!(
            sequential.effective_timings(),
            parallel.effective_timings()
        );
        prop_assert_eq!(
            sequential.delivered_bandwidth(AccessPattern::RandomWord),
            parallel.delivered_bandwidth(AccessPattern::RandomWord)
        );
    }

    /// Governor outcomes are bit-identical per `(seed, config)`: a fresh
    /// platform at any worker count reproduces the descent exactly —
    /// settled point, trip reason, flip count, and the measured timing
    /// figures.
    #[test]
    fn governor_outcome_is_deterministic(seed in any::<u64>(), budget in 31.0f64..40.0) {
        let config = GovernorConfig {
            workload: WorkloadMode::Latency,
            latency_budget_ns: Some(budget),
            canary_words: 64,
            ..GovernorConfig::default()
        };
        let governor = UndervoltGovernor::new(config);
        let mut first = Platform::builder().seed(seed).workers(1).build();
        let mut again = Platform::builder().seed(seed).workers(4).build();
        prop_assert_eq!(
            governor.run(&mut first).unwrap(),
            governor.run(&mut again).unwrap()
        );
    }

    /// The headline trade-off holds across specimens: with a tight latency
    /// budget the latency descent never settles below the flip-only
    /// throughput descent on the same seed.
    #[test]
    fn latency_budget_never_settles_below_throughput(seed in 0u64..1024) {
        let base = GovernorConfig {
            canary_words: 64,
            ..GovernorConfig::default()
        };
        let mut platform = Platform::builder().seed(seed).build();
        let report = GovernorScenario::latency_vs_throughput(base, 33.0)
            .run(&mut platform)
            .unwrap();
        prop_assert!(
            report.rows[1].outcome.settled >= report.rows[0].outcome.settled,
            "latency settled below throughput: {:?}",
            report.rows
        );
    }
}
