//! The complete parameter set of the fault model.

use hbm_units::Volts;
use serde::{Deserialize, Serialize};

use crate::error::FaultModelError;
use crate::landmarks::VoltageLandmarks;
use crate::response::ResponseCurve;
use crate::variation::VariationModel;

/// All parameters of the fault model, with defaults calibrated to the
/// DATE 2021 characterization (see the crate docs and `DESIGN.md` for the
/// calibration derivation).
///
/// # Examples
///
/// ```
/// use hbm_faults::FaultModelParams;
///
/// let params = FaultModelParams::date21();
/// // Bits split into stuck-at-0 / stuck-at-1 classes.
/// assert!((params.stuck0_share + params.stuck1_share() - 1.0).abs() < 1e-12);
/// params.validate();
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultModelParams {
    /// The characteristic voltages.
    pub landmarks: VoltageLandmarks,
    /// Response curve of stuck-at-0 bits (observed as 1→0 flips under an
    /// all-ones pattern).
    pub curve_stuck0: ResponseCurve,
    /// Response curve of stuck-at-1 bits (observed as 0→1 flips under an
    /// all-zeros pattern).
    pub curve_stuck1: ResponseCurve,
    /// Fraction of bits whose failure polarity is stuck-at-0.
    pub stuck0_share: f64,
    /// The process-variation model.
    pub variation: VariationModel,
    /// Slope (decades per volt) of the steep "bulk" component that collapses
    /// the whole bit population near the saturation voltage, reproducing the
    /// study's observation that *both* stacks become entirely faulty by
    /// ≈0.84 V despite their process variation.
    pub bulk_decades_per_volt: f64,
    /// Fraction of the local variation shift that still applies to the bulk
    /// component (the timing cliff varies much less than the weak-bit tail).
    pub bulk_shift_scale: f64,
}

impl FaultModelParams {
    /// Parameters calibrated to the study:
    ///
    /// - stuck-at-0 curve: saturation 0.840 V, 79.2 decades/V — first 1→0
    ///   flips around 0.97 V in 8 GB, total failure at 0.84 V;
    /// - stuck-at-1 curve: saturation 0.841 V, 86 decades/V — first 0→1
    ///   flips around 0.96 V, and averaged over the unsafe region a rate
    ///   ≈21 % above the 1→0 rate (the curves cross near 0.86 V);
    /// - 47 % of bits fail towards 0, 53 % towards 1.
    #[must_use]
    pub fn date21() -> Self {
        FaultModelParams {
            landmarks: VoltageLandmarks::date21(),
            curve_stuck0: ResponseCurve::new(Volts(0.840), 79.2),
            curve_stuck1: ResponseCurve::new(Volts(0.841), 86.0),
            stuck0_share: 0.47,
            variation: VariationModel::date21(),
            bulk_decades_per_volt: 400.0,
            bulk_shift_scale: 0.15,
        }
    }

    /// Fault probability of a bit of the class described by `curve`, at
    /// supply `v` under a local variation `shift`, combining the exponential
    /// weak-bit tail with the steep bulk collapse.
    ///
    /// The guardband gate (zero at or above V_min) is applied by callers on
    /// the *raw* supply voltage so that no variation shift can leak faults
    /// into the guardband.
    #[must_use]
    pub fn class_probability(&self, curve: &ResponseCurve, v: Volts, shift: Volts) -> f64 {
        let tail = curve.probability(v - shift);
        let bulk_arg =
            v.as_f64() - self.bulk_shift_scale * shift.as_f64() - curve.v_saturation().as_f64();
        let bulk = if bulk_arg <= 0.0 {
            1.0
        } else {
            10f64.powf(-self.bulk_decades_per_volt * bulk_arg).min(1.0)
        };
        (tail + bulk).min(1.0)
    }

    /// Both class probabilities at once, in the fixed (stuck-at-0,
    /// stuck-at-1) evaluation order.
    ///
    /// This is the single formula both injector kernels go through — the
    /// per-word reference path and the region-tile cache builder — so their
    /// results are bit-identical by construction.
    #[must_use]
    pub fn class_probabilities(&self, v: Volts, shift: Volts) -> (f64, f64) {
        (
            self.class_probability(&self.curve_stuck0, v, shift),
            self.class_probability(&self.curve_stuck1, v, shift),
        )
    }

    /// The stuck-at-1 share (`1 − stuck0_share`).
    #[must_use]
    pub fn stuck1_share(&self) -> f64 {
        1.0 - self.stuck0_share
    }

    /// Replaces the variation model (used by ablation benches).
    #[must_use]
    pub fn with_variation(mut self, variation: VariationModel) -> Self {
        self.variation = variation;
        self
    }

    /// Disables the polarity asymmetry: both classes share the stuck-at-0
    /// curve and split 50/50 (ablation).
    #[must_use]
    pub fn without_polarity_asymmetry(mut self) -> Self {
        self.curve_stuck1 = self.curve_stuck0;
        self.stuck0_share = 0.5;
        self
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`FaultModelError`] if the landmarks are mis-ordered, the
    /// share is outside `(0, 1)`, or a curve saturates above V_min (which
    /// would leak faults into the guardband even before gating).
    pub fn try_validate(&self) -> Result<(), FaultModelError> {
        self.landmarks.try_validate()?;
        if !(self.stuck0_share > 0.0 && self.stuck0_share < 1.0) {
            return Err(FaultModelError::InvalidStuck0Share {
                share: self.stuck0_share,
            });
        }
        let v_min = self.landmarks.v_min.to_volts();
        for curve in [&self.curve_stuck0, &self.curve_stuck1] {
            if curve.v_saturation() >= v_min {
                return Err(FaultModelError::CurveSaturatesAboveVmin {
                    v_saturation_volts: curve.v_saturation().as_f64(),
                    v_min_volts: v_min.as_f64(),
                });
            }
        }
        Ok(())
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if [`FaultModelParams::try_validate`] reports an error.
    pub fn validate(&self) {
        if let Err(err) = self.try_validate() {
            panic!("{err}");
        }
    }
}

impl Default for FaultModelParams {
    fn default() -> Self {
        FaultModelParams::date21()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date21_is_valid() {
        FaultModelParams::date21().validate();
    }

    #[test]
    fn shares_sum_to_one() {
        let p = FaultModelParams::date21();
        assert!((p.stuck0_share + p.stuck1_share() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn polarity_ablation() {
        let p = FaultModelParams::date21().without_polarity_asymmetry();
        assert_eq!(p.curve_stuck0, p.curve_stuck1);
        assert_eq!(p.stuck0_share, 0.5);
        p.validate();
    }

    #[test]
    fn class_probability_combines_tail_and_bulk() {
        let p = FaultModelParams::date21();
        // Deep in the tail regime the bulk is invisible.
        let tail_only = p.curve_stuck0.probability(Volts(0.95));
        let combined = p.class_probability(&p.curve_stuck0, Volts(0.95), Volts(0.0));
        assert!((combined - tail_only) / tail_only < 1e-6);
        // At the saturation voltage everything is faulty, even for a bit
        // population with a strongly negative (robust) shift.
        assert_eq!(
            p.class_probability(&p.curve_stuck0, Volts(0.83), Volts(-0.030)),
            1.0
        );
        // Monotone in voltage for positive and negative shifts.
        for shift in [-0.02, 0.0, 0.02] {
            let mut last = 2.0;
            for step in 0..150 {
                let v = 0.80 + f64::from(step) * 0.001;
                let c = p.class_probability(&p.curve_stuck0, Volts(v), Volts(shift));
                assert!(c <= last, "non-monotone at {v} shift {shift}");
                last = c;
            }
        }
    }

    #[test]
    fn curves_cross_in_the_unsafe_region() {
        // The stuck-at-1 curve must overtake the stuck-at-0 curve at low
        // voltage (so the 0→1 average ends up higher) while staying below it
        // near the onset (so 1→0 flips appear first).
        let p = FaultModelParams::date21();
        assert!(
            p.curve_stuck1.probability(Volts(0.97)) < p.curve_stuck0.probability(Volts(0.97)),
            "1→0 must onset first"
        );
        assert!(
            p.curve_stuck1.probability(Volts(0.85)) > p.curve_stuck0.probability(Volts(0.85)),
            "0→1 must dominate at low voltage"
        );
    }

    #[test]
    #[should_panic(expected = "stuck0_share")]
    fn bad_share_rejected() {
        let mut p = FaultModelParams::date21();
        p.stuck0_share = 1.5;
        p.validate();
    }

    #[test]
    fn serde_round_trip() {
        let p = FaultModelParams::date21();
        let json = serde_json::to_string(&p).unwrap();
        let back: FaultModelParams = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
