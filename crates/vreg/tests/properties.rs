//! Property-based tests for the PMBus data formats and regulator behaviour.

use hbm_units::Millivolts;
use hbm_vreg::pmbus::{
    decode_linear11, decode_linear16, encode_linear11, encode_linear16, VOUT_MODE_EXPONENT,
};
use hbm_vreg::{HostInterface, Isl68301, PmbusError};
use proptest::prelude::*;

proptest! {
    /// LINEAR11 round trip keeps relative error within the 11-bit mantissa
    /// resolution for all representable magnitudes.
    #[test]
    fn linear11_round_trip_bounded(value in -1.0e7f64..1.0e7) {
        let word = encode_linear11(value).unwrap();
        let decoded = decode_linear11(word);
        if value == 0.0 {
            prop_assert_eq!(decoded, 0.0);
        } else {
            let rel = ((decoded - value) / value).abs();
            prop_assert!(rel <= 1.0 / 1024.0, "value {} decoded {}", value, decoded);
        }
    }

    /// Decoding any 16-bit word and re-encoding it is the identity (LINEAR11
    /// words are canonical under our smallest-exponent encoder only up to
    /// value equality, so compare decoded values).
    #[test]
    fn linear11_decode_encode_value_stable(word in any::<u16>()) {
        let value = decode_linear11(word);
        let re = decode_linear11(encode_linear11(value).unwrap());
        prop_assert_eq!(re, value);
    }

    /// Millivolt-exact voltages survive the LINEAR16 round trip exactly.
    #[test]
    fn linear16_millivolt_exact(mv in 0u32..16_000) {
        let v = Millivolts(mv);
        let word = encode_linear16(v.to_volts(), VOUT_MODE_EXPONENT).unwrap();
        prop_assert_eq!(decode_linear16(word, VOUT_MODE_EXPONENT).to_millivolts(), v);
    }

    /// The regulator accepts any voltage up to VOUT_MAX and reports it back
    /// exactly; anything above is NACKed and leaves the set-point unchanged.
    #[test]
    fn regulator_setpoint_contract(mv in 0u32..1_500) {
        let mut reg = Isl68301::vcc_hbm();
        let vout_max = reg.limits().vout_max;
        let mut host = HostInterface::new(&mut reg);
        let target = Millivolts(mv);
        let result = host.set_vout(target);
        if target <= vout_max {
            prop_assert!(result.is_ok());
            prop_assert_eq!(host.read_vout().unwrap(), target);
        } else {
            let nacked = matches!(result, Err(PmbusError::InvalidData { .. }));
            prop_assert!(nacked, "expected NACK, got {:?}", result);
            prop_assert_eq!(host.read_vout().unwrap(), Millivolts(1200));
        }
    }
}
