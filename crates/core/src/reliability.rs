//! The reliability tester: Algorithm 1 of the paper.
//!
//! > Write data into the undervolted HBM sequentially and then read it back
//! > to check for any faults.
//!
//! For every voltage of a descending sweep, for every data pattern, the
//! tester runs `batchSize` write/read-back passes through the AXI traffic
//! generators and counts bit flips (split by polarity and by port).

use std::time::Instant;

use hbm_device::{DeviceError, PcIndex, PortId};
use hbm_faults::{pc_stream, FaultFieldMode, KernelBackend, PcSweepCarry};
use hbm_traffic::{DataPattern, MacroProgram, PortStats};
use hbm_units::{Millivolts, Ratio};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::engine;
use crate::error::ExperimentError;
use crate::platform::Platform;
use crate::stats::BatchSummary;
use crate::sweep::VoltageSweep;
use crate::telemetry::{Telemetry, TelemetryEvent};

/// Which part of the memory a reliability test covers — the paper's
/// `memSize` selector (entire HBM: 256M words; one PC: 8M words).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum TestScope {
    /// All pseudo channels through all ports.
    EntireHbm,
    /// A single pseudo channel through its port.
    SinglePc(PcIndex),
    /// An explicit port subset (the study's port-disabling methodology).
    Ports(Vec<u8>),
}

impl TestScope {
    fn ports(&self, total: u8) -> Result<Vec<PortId>, ExperimentError> {
        match self {
            TestScope::EntireHbm => Ok((0..total)
                .map(|i| PortId::new(i).expect("index within geometry"))
                .collect()),
            TestScope::SinglePc(pc) => Ok(vec![
                PortId::new(pc.as_u8()).expect("pc index is a port index")
            ]),
            TestScope::Ports(ids) => ids
                .iter()
                .map(|&i| {
                    if i < total {
                        Ok(PortId::new(i).expect("checked against geometry"))
                    } else {
                        Err(ExperimentError::config(format!(
                            "port {i} is out of range: the geometry has ports 0..{total}"
                        )))
                    }
                })
                .collect(),
        }
    }
}

/// Which kernel executes each voltage point of the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// Batch mask reuse: every checked word's stuck-at masks are computed
    /// once per voltage through the fault injector's region-tiled kernel,
    /// then replayed across all `batch_size` passes and every data pattern
    /// as pure mask/popcount work. Bit-identical to
    /// [`ExecutionMode::Traffic`] — the model's faults are deterministic at
    /// a fixed voltage, so each pass observes the same counts — but the
    /// per-word cost is paid once instead of `batch_size × patterns` times.
    #[default]
    CachedMasks,
    /// Full AXI emulation: every batch pass writes and reads back through
    /// the traffic generators (the paper's literal procedure). Exercises
    /// the device arrays and the parallel sharding engine; used by the
    /// tests that check that engine itself.
    Traffic,
}

/// Configuration of a reliability test run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityConfig {
    /// The voltage sweep (outer loop).
    pub sweep: VoltageSweep,
    /// Repetitions per (voltage, pattern) — the paper's `batchSize` of 130.
    pub batch_size: usize,
    /// Data patterns to test (the paper: all-1s and all-0s).
    pub patterns: Vec<DataPattern>,
    /// Memory scope.
    pub scope: TestScope,
    /// Optional cap on words tested per pseudo channel (`None` = the full
    /// array). Lets exhaustive tests bound their runtime.
    pub words_per_pc: Option<u64>,
    /// Optional sampled mode: test this many randomly drawn offsets per
    /// pseudo channel instead of a sequential walk. The offsets come from
    /// one [`hbm_faults::pc_stream`] per `(seed, voltage, pseudo channel)`
    /// work item, so the draws are identical for every engine worker count.
    pub sample_words: Option<u64>,
    /// Which kernel executes each voltage point (default:
    /// [`ExecutionMode::CachedMasks`]).
    pub mode: ExecutionMode,
    /// How the fault injector keys per-bit randomness across the sweep
    /// (default: [`FaultFieldMode::PerVoltage`], bit-compatible with every
    /// existing report). Under [`FaultFieldMode::MonotoneCoupled`] fault
    /// sets are inclusion-monotone across descending voltage, which
    /// enables the incremental carry-forward sweep kernel.
    pub fault_field: FaultFieldMode,
    /// Whether a coupled-field descending sweep carries its faulty-word
    /// working set from point to point, re-enumerating only changed words
    /// (default: `true`). Only effective with
    /// [`FaultFieldMode::MonotoneCoupled`] in sequential cached-mask runs;
    /// ignored otherwise. Carried and from-scratch points are bit-identical,
    /// so this is purely a performance knob.
    pub carry_forward: bool,
    /// Which mask-generation backend the fault-injector kernel uses
    /// (default: [`KernelBackend::Auto`], which bit-slices dense tiles and
    /// keeps sparse tiles scalar). All backends are bit-identical, so this
    /// is purely a performance knob; it is recorded in checkpoints and a
    /// resume refuses a mismatched backend the same way it refuses a
    /// mismatched fault field.
    pub kernel: KernelBackend,
}

impl ReliabilityConfig {
    /// The paper's configuration: full sweep, 130 runs, both uniform
    /// patterns, entire HBM.
    #[must_use]
    pub fn date21() -> Self {
        ReliabilityConfig {
            sweep: VoltageSweep::date21(),
            batch_size: 130,
            patterns: vec![DataPattern::AllOnes, DataPattern::AllZeros],
            scope: TestScope::EntireHbm,
            words_per_pc: None,
            sample_words: None,
            mode: ExecutionMode::CachedMasks,
            fault_field: FaultFieldMode::PerVoltage,
            carry_forward: true,
            kernel: KernelBackend::Auto,
        }
    }

    /// A fast configuration for tests and examples: the unsafe region in
    /// 20 mV steps, 3 runs, 512 words per PC.
    #[must_use]
    pub fn quick() -> Self {
        ReliabilityConfig {
            sweep: VoltageSweep::new(Millivolts(970), Millivolts(810), Millivolts(20))
                .expect("static sweep valid"),
            batch_size: 3,
            patterns: vec![DataPattern::AllOnes, DataPattern::AllZeros],
            scope: TestScope::EntireHbm,
            words_per_pc: Some(512),
            sample_words: None,
            mode: ExecutionMode::CachedMasks,
            fault_field: FaultFieldMode::PerVoltage,
            carry_forward: true,
            kernel: KernelBackend::Auto,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Configuration errors for an empty batch, no patterns, or an empty
    /// port scope.
    pub fn validate(&self) -> Result<(), ExperimentError> {
        if self.batch_size == 0 {
            return Err(ExperimentError::config("batch size must be at least 1"));
        }
        if self.patterns.is_empty() {
            return Err(ExperimentError::config(
                "at least one data pattern required",
            ));
        }
        if matches!(&self.scope, TestScope::Ports(p) if p.is_empty()) {
            return Err(ExperimentError::config("port scope must not be empty"));
        }
        if self.sample_words == Some(0) {
            return Err(ExperimentError::config(
                "sampled mode needs at least one word per pseudo channel",
            ));
        }
        if self.fault_field == FaultFieldMode::MonotoneCoupled
            && self.mode == ExecutionMode::Traffic
        {
            return Err(ExperimentError::config(
                "the coupled fault field supports only the cached-mask kernel",
            ));
        }
        Ok(())
    }
}

impl Default for ReliabilityConfig {
    fn default() -> Self {
        ReliabilityConfig::date21()
    }
}

/// The outcome of one (voltage, pattern) cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternOutcome {
    /// The pattern tested.
    pub pattern: DataPattern,
    /// Mean fault count per run.
    pub mean_fault_count: f64,
    /// Batch spread (min/max/σ across the runs).
    pub batch_min: u64,
    /// Maximum fault count across the runs.
    pub batch_max: u64,
    /// 1→0 flips in the last run.
    pub flips_1to0: u64,
    /// 0→1 flips in the last run.
    pub flips_0to1: u64,
    /// Per-port statistics of the last run.
    pub per_port: Vec<(u8, PortStats)>,
}

/// Everything measured at one sweep voltage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VoltagePoint {
    /// The swept voltage.
    pub voltage: Millivolts,
    /// `true` if the device crashed at this voltage (no data collected).
    pub crashed: bool,
    /// One outcome per pattern.
    pub outcomes: Vec<PatternOutcome>,
    /// Measured throughput: logical word transactions (writes plus
    /// read-checks, across all batch passes and patterns) per wall-clock
    /// second at this point. `None` when no measurement exists — crashed
    /// points never report a throughput (rendering a crash as
    /// "0 words/s" would fabricate a data point), and non-finite rates
    /// are excluded the same way.
    pub words_per_second: Option<f64>,
    /// Measured throughput: stuck-at mask evaluations the fault kernel
    /// performed per wall-clock second at this point. In cached-mask mode
    /// each word's masks are computed once per voltage, so this is far
    /// below `words_per_second`; in traffic mode every read evaluates a
    /// mask. `None` for crashed points, like `words_per_second`.
    pub masks_per_second: Option<f64>,
    /// Fraction of the point's faulty-word working set served unchanged
    /// from the previous point's carry under the incremental coupled-field
    /// kernel (`carried / (carried + refreshed + activated)`). `None` when
    /// the point was not carried — the legacy field, rescan runs, sampled
    /// mode, crashed points, and the first point of a carry chain all
    /// rebuilt from scratch.
    pub mask_reuse: Option<f64>,
}

/// A throughput rate that is a real measurement or nothing: non-finite
/// values (a zero or denormal elapsed time) are excluded rather than
/// surfaced as data.
fn rate(count: u64, elapsed_secs: f64) -> Option<f64> {
    let rate = count as f64 / elapsed_secs;
    rate.is_finite().then_some(rate)
}

impl PartialEq for VoltagePoint {
    /// The throughput rates and the carry-reuse ratio are measurements of
    /// *how* the point was computed, not model outputs: reports taken at
    /// different worker counts, execution modes or carry settings must
    /// still compare equal, so equality covers only the deterministic
    /// fields.
    fn eq(&self, other: &Self) -> bool {
        self.voltage == other.voltage
            && self.crashed == other.crashed
            && self.outcomes == other.outcomes
    }
}

impl VoltagePoint {
    /// Total mean fault count across patterns.
    #[must_use]
    pub fn total_mean_faults(&self) -> f64 {
        self.outcomes.iter().map(|o| o.mean_fault_count).sum()
    }

    /// The outcome for a specific pattern.
    #[must_use]
    pub fn outcome(&self, pattern: DataPattern) -> Option<&PatternOutcome> {
        self.outcomes.iter().find(|o| o.pattern == pattern)
    }
}

/// The full report of a reliability test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityReport {
    /// The configuration that produced the report.
    pub config: ReliabilityConfig,
    /// Bits checked per run per pattern (the fault-rate denominator).
    pub checked_bits_per_run: u64,
    /// One point per swept voltage, in sweep (descending) order.
    pub points: Vec<VoltagePoint>,
}

impl ReliabilityReport {
    /// The point at an exact voltage, if swept.
    #[must_use]
    pub fn at(&self, voltage: Millivolts) -> Option<&VoltagePoint> {
        self.points.iter().find(|p| p.voltage == voltage)
    }

    /// Observed fault rate (mean flips / checked bits) at a voltage for a
    /// pattern.
    #[must_use]
    pub fn fault_rate(&self, voltage: Millivolts, pattern: DataPattern) -> Option<Ratio> {
        let point = self.at(voltage)?;
        let outcome = point.outcome(pattern)?;
        Some(Ratio(
            outcome.mean_fault_count / self.checked_bits_per_run as f64,
        ))
    }

    /// The highest voltage at which the pattern showed any fault — the
    /// paper's "first bit flips occur at …".
    #[must_use]
    pub fn first_fault_voltage(&self, pattern: DataPattern) -> Option<Millivolts> {
        self.points
            .iter()
            .filter(|p| p.outcome(pattern).is_some_and(|o| o.mean_fault_count > 0.0))
            .map(|p| p.voltage)
            .max()
    }

    /// The highest voltage at which the device crashed, if any.
    #[must_use]
    pub fn crash_voltage(&self) -> Option<Millivolts> {
        self.points
            .iter()
            .filter(|p| p.crashed)
            .map(|p| p.voltage)
            .max()
    }
}

/// The carried faulty-word working sets of a descending coupled-field
/// sweep, one [`PcSweepCarry`] per scoped port's pseudo channel.
///
/// Created empty, filled by the first carried point
/// ([`ReliabilityTester::run_point_carried`]) and advanced in place by
/// every following one. Clearing it is always safe — the next carried
/// point simply rebuilds from scratch — which is how the sweep runtimes
/// keep crash-recovery semantics unchanged: the carry is dropped on every
/// power cycle, retry and resume.
#[derive(Debug, Clone, Default)]
pub struct SweepCarry {
    /// `(port id, carry)` pairs, in first-use order.
    pub(crate) carries: Vec<(u8, PcSweepCarry)>,
}

impl SweepCarry {
    /// An empty carry: the next carried point rebuilds from scratch.
    #[must_use]
    pub fn new() -> Self {
        SweepCarry::default()
    }

    /// Drops every carried working set.
    pub fn clear(&mut self) {
        self.carries.clear();
    }

    /// `true` if no port carries a working set.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.carries.is_empty()
    }
}

/// Algorithm 1: the sequential-access reliability tester.
///
/// # Examples
///
/// ```
/// use hbm_undervolt::{Platform, ReliabilityConfig, ReliabilityTester};
/// use hbm_traffic::DataPattern;
/// use hbm_units::Millivolts;
///
/// # fn main() -> Result<(), hbm_undervolt::ExperimentError> {
/// let mut platform = Platform::builder().seed(7).build();
/// let tester = ReliabilityTester::new(ReliabilityConfig::quick())?;
/// let report = tester.run(&mut platform)?;
///
/// // Deep under the guardband everything is faulty …
/// let deep = report.fault_rate(Millivolts(810), DataPattern::AllOnes).unwrap();
/// assert!(deep.as_f64() > 0.4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ReliabilityTester {
    config: ReliabilityConfig,
}

impl ReliabilityTester {
    /// Creates a tester after validating the configuration.
    ///
    /// # Errors
    ///
    /// Configuration errors from [`ReliabilityConfig::validate`].
    pub fn new(config: ReliabilityConfig) -> Result<Self, ExperimentError> {
        config.validate()?;
        Ok(ReliabilityTester { config })
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &ReliabilityConfig {
        &self.config
    }

    /// Runs the sweep on a platform. The platform is left at the last
    /// swept voltage (or power-cycled to nominal if that voltage crashed
    /// it).
    ///
    /// # Errors
    ///
    /// Propagates PMBus errors and unexpected device errors; a device
    /// *crash* at a swept voltage is expected behaviour and is recorded in
    /// the report rather than returned.
    pub fn run(&self, platform: &mut Platform) -> Result<ReliabilityReport, ExperimentError> {
        self.run_observed(platform, Telemetry::disabled())
    }

    /// [`ReliabilityTester::run`] with telemetry: emits the sweep and point
    /// lifecycle events (stamped `t_ms: 0` — the plain tester has no
    /// [`Clock`](crate::Clock); the [`SweepSupervisor`] does) and updates
    /// the scan counters.
    ///
    /// [`SweepSupervisor`]: crate::SweepSupervisor
    ///
    /// # Errors
    ///
    /// See [`ReliabilityTester::run`].
    pub fn run_observed(
        &self,
        platform: &mut Platform,
        telemetry: &Telemetry,
    ) -> Result<ReliabilityReport, ExperimentError> {
        let ports = self.scoped_ports(platform)?;
        let checked_bits_per_run = self.checked_bits_per_run(platform, &ports);
        let sweep = &self.config.sweep;
        telemetry.emit(TelemetryEvent::SweepStarted {
            experiment: "reliability".to_owned(),
            seed: platform.seed(),
            points: sweep.len() as u64,
            from_mv: sweep.from().as_u32(),
            to_mv: sweep.down_to().as_u32(),
            kernel: self.config.kernel.as_token().to_owned(),
        });

        let mut points = Vec::with_capacity(sweep.len());
        let use_carry = self.uses_carry();
        let mut carry = SweepCarry::new();
        for voltage in self.config.sweep.iter() {
            telemetry.emit(TelemetryEvent::PointStarted {
                voltage_mv: voltage.as_u32(),
                attempt: 1,
            });
            let result = if use_carry {
                self.run_point_carried(platform, &ports, voltage, &mut carry, telemetry)
            } else {
                self.run_point_observed(platform, &ports, voltage, telemetry)
            };
            match result {
                Ok(point) => {
                    if point.crashed {
                        telemetry.emit(TelemetryEvent::DeviceCrashed {
                            voltage_mv: voltage.as_u32(),
                            attempt: 1,
                            transient: false,
                        });
                        telemetry.emit(TelemetryEvent::PowerCycled {
                            restart_mv: 1200,
                            cycle: platform.power_cycle_count(),
                        });
                    }
                    telemetry.emit(TelemetryEvent::PointCompleted {
                        voltage_mv: voltage.as_u32(),
                        attempt: 1,
                        crashed: point.crashed,
                        mean_faults: point.total_mean_faults(),
                    });
                    points.push(point);
                }
                // A transient crash above the floor: the plain tester has no
                // retry machinery (that is the SweepSupervisor's job), so it
                // records the point as crashed and recovers, exactly like a
                // genuine cliff crash.
                Err(e) if e.is_crash() => {
                    carry.clear();
                    telemetry.emit(TelemetryEvent::DeviceCrashed {
                        voltage_mv: voltage.as_u32(),
                        attempt: 1,
                        transient: true,
                    });
                    points.push(VoltagePoint {
                        voltage,
                        crashed: true,
                        outcomes: Vec::new(),
                        words_per_second: None,
                        masks_per_second: None,
                        mask_reuse: None,
                    });
                    platform.power_cycle(Millivolts(1200))?;
                    telemetry.emit(TelemetryEvent::PowerCycled {
                        restart_mv: 1200,
                        cycle: platform.power_cycle_count(),
                    });
                    platform.set_voltage(Millivolts(1200))?;
                    telemetry.emit(TelemetryEvent::PointCompleted {
                        voltage_mv: voltage.as_u32(),
                        attempt: 1,
                        crashed: true,
                        mean_faults: 0.0,
                    });
                }
                Err(e) => return Err(e),
            }
        }
        telemetry.emit(TelemetryEvent::SweepCompleted {
            completed: points.len() as u64,
            skipped: 0,
            quarantined: 0,
        });

        Ok(ReliabilityReport {
            config: self.config.clone(),
            checked_bits_per_run,
            points,
        })
    }

    /// The ports the configured scope selects on this platform's geometry.
    ///
    /// # Errors
    ///
    /// Configuration errors for out-of-range or empty port scopes.
    pub fn scoped_ports(&self, platform: &Platform) -> Result<Vec<PortId>, ExperimentError> {
        let ports = self.config.scope.ports(platform.geometry().total_pcs())?;
        if ports.is_empty() {
            return Err(ExperimentError::config(
                "scope selects no ports on this geometry",
            ));
        }
        Ok(ports)
    }

    /// Bits checked per run per pattern over `ports` — the fault-rate
    /// denominator of the reports.
    #[must_use]
    pub fn checked_bits_per_run(&self, platform: &Platform, ports: &[PortId]) -> u64 {
        let geometry = platform.geometry();
        let words = self
            .config
            .words_per_pc
            .map_or(geometry.words_per_pc(), |w| w.min(geometry.words_per_pc()));
        let words_checked_per_pc = self.config.sample_words.unwrap_or(words);
        words_checked_per_pc * 256 * ports.len() as u64
    }

    /// Runs one voltage point of the sweep over `ports` and returns its
    /// measurements. This is the unit of work the [`SweepSupervisor`]
    /// checkpoints, retries and deadlines.
    ///
    /// A crash *below* the platform's crash floor is the expected cliff
    /// behaviour: the point comes back with `crashed: true` and the
    /// platform is recovered (power-cycled to nominal) before returning.
    /// A crash *at or above* the floor can only be a transient failure, so
    /// it is returned as a [`DeviceError::Crashed`] error for the caller to
    /// retry — the platform is left crashed until someone power-cycles it.
    ///
    /// [`SweepSupervisor`]: crate::SweepSupervisor
    ///
    /// # Errors
    ///
    /// PMBus errors, unexpected device errors, and transient crashes as
    /// described above.
    pub fn run_point(
        &self,
        platform: &mut Platform,
        ports: &[PortId],
        voltage: Millivolts,
    ) -> Result<VoltagePoint, ExperimentError> {
        self.run_point_observed(platform, ports, voltage, Telemetry::disabled())
    }

    /// [`ReliabilityTester::run_point`] with telemetry: threads the hub into
    /// the engine (which emits the per-port
    /// [`WorkerShardDone`](TelemetryEvent::WorkerShardDone) events) and adds
    /// the point's scanned words/masks to the counter registry. Point
    /// lifecycle events are the *caller's* to emit — the supervisor knows
    /// the attempt number and the clock; this method does not.
    ///
    /// # Errors
    ///
    /// See [`ReliabilityTester::run_point`].
    pub fn run_point_observed(
        &self,
        platform: &mut Platform,
        ports: &[PortId],
        voltage: Millivolts,
        telemetry: &Telemetry,
    ) -> Result<VoltagePoint, ExperimentError> {
        let geometry = platform.geometry();
        let words = self
            .config
            .words_per_pc
            .map_or(geometry.words_per_pc(), |w| w.min(geometry.words_per_pc()));

        platform.set_voltage(voltage)?;
        if platform.is_crashed() {
            if voltage >= platform.v_crash() {
                return Err(ExperimentError::from(DeviceError::Crashed));
            }
            platform.power_cycle(Millivolts(1200))?;
            platform.set_voltage(Millivolts(1200))?;
            return Ok(VoltagePoint {
                voltage,
                crashed: true,
                outcomes: Vec::new(),
                words_per_second: None,
                masks_per_second: None,
                mask_reuse: None,
            });
        }

        let started = Instant::now();
        let (outcomes, work) = match self.config.mode {
            ExecutionMode::CachedMasks => {
                self.run_point_cached(platform, ports, words, voltage, telemetry)?
            }
            ExecutionMode::Traffic => {
                self.run_point_traffic(platform, ports, words, voltage, telemetry)?
            }
        };
        let elapsed = started.elapsed().as_secs_f64().max(f64::MIN_POSITIVE);
        telemetry.metrics().add_words_scanned(work.words);
        telemetry.metrics().add_masks_scanned(work.masks);
        Ok(VoltagePoint {
            voltage,
            crashed: false,
            outcomes,
            words_per_second: rate(work.words, elapsed),
            masks_per_second: rate(work.masks, elapsed),
            mask_reuse: None,
        })
    }

    /// `true` if sweeps run the incremental carry-forward kernel: the
    /// coupled fault field with `carry_forward` enabled, in cached-mask
    /// mode over sequential (unsampled) word ranges. Sampled mode redraws
    /// its offsets per voltage, so there is no stable working set to carry.
    #[must_use]
    pub fn uses_carry(&self) -> bool {
        self.config.fault_field == FaultFieldMode::MonotoneCoupled
            && self.config.carry_forward
            && self.config.mode == ExecutionMode::CachedMasks
            && self.config.sample_words.is_none()
    }

    /// The carry-forward counterpart of
    /// [`ReliabilityTester::run_point_observed`]: advances `carry` to
    /// `voltage` (or builds it, when empty) and measures the point from the
    /// carried working set, touching only the words whose masks changed
    /// since the previous point. The outcomes are bit-identical to a
    /// from-scratch coupled-field rescan at the same voltage; the point's
    /// `mask_reuse` records the fraction of the working set served from the
    /// carry.
    ///
    /// Crash handling matches the non-carried path, except the carry is
    /// dropped on every crash — after a power cycle the next point rebuilds
    /// from scratch, so recovery semantics are unchanged.
    ///
    /// # Errors
    ///
    /// See [`ReliabilityTester::run_point`].
    pub fn run_point_carried(
        &self,
        platform: &mut Platform,
        ports: &[PortId],
        voltage: Millivolts,
        carry: &mut SweepCarry,
        telemetry: &Telemetry,
    ) -> Result<VoltagePoint, ExperimentError> {
        debug_assert!(
            self.uses_carry(),
            "carried points need the coupled field in sequential cached-mask mode"
        );
        let geometry = platform.geometry();
        let words = self
            .config
            .words_per_pc
            .map_or(geometry.words_per_pc(), |w| w.min(geometry.words_per_pc()));

        platform.set_voltage(voltage)?;
        if platform.is_crashed() {
            carry.clear();
            if voltage >= platform.v_crash() {
                return Err(ExperimentError::from(DeviceError::Crashed));
            }
            platform.power_cycle(Millivolts(1200))?;
            platform.set_voltage(Millivolts(1200))?;
            return Ok(VoltagePoint {
                voltage,
                crashed: true,
                outcomes: Vec::new(),
                words_per_second: None,
                masks_per_second: None,
                mask_reuse: None,
            });
        }

        let started = Instant::now();
        let (mask_sets, stats) = engine::build_mask_sets_carried(
            platform,
            ports,
            words,
            voltage,
            carry,
            self.config.kernel,
            &self.config.patterns,
            telemetry,
        )?;
        let mut work = PointWork {
            words: 0,
            masks: stats.delta_words(),
        };
        let outcomes = self.fold_mask_outcomes(&mask_sets, &mut work);
        let elapsed = started.elapsed().as_secs_f64().max(f64::MIN_POSITIVE);
        telemetry.metrics().add_words_scanned(work.words);
        telemetry.metrics().add_masks_scanned(work.masks);
        telemetry
            .metrics()
            .add_delta_words_scanned(stats.delta_words());
        telemetry.metrics().add_masks_carried(stats.carried);
        Ok(VoltagePoint {
            voltage,
            crashed: false,
            outcomes,
            words_per_second: rate(work.words, elapsed),
            masks_per_second: rate(work.masks, elapsed),
            mask_reuse: Some(stats.reuse_ratio()),
        })
    }

    /// One job (port, program) per scoped port. In sampled mode each port
    /// gets its own program over offsets drawn from the port's
    /// `(seed, voltage, pc)` stream, so the workload — and therefore the
    /// measurement — is invariant under the engine's worker count.
    fn build_jobs(
        &self,
        platform: &Platform,
        ports: &[PortId],
        words: u64,
        pattern: DataPattern,
        voltage: Millivolts,
    ) -> Vec<(PortId, MacroProgram)> {
        ports
            .iter()
            .map(|&port| {
                let program = match self.config.sample_words {
                    None => MacroProgram::write_then_check(0..words, pattern),
                    Some(samples) => {
                        let mut rng = pc_stream(platform.seed(), voltage, port.direct_pc());
                        let offsets: Vec<u64> =
                            (0..samples).map(|_| rng.gen_range(0..words)).collect();
                        MacroProgram::write_then_check_at(&offsets, pattern)
                    }
                };
                (port, program)
            })
            .collect()
    }

    /// The traffic path: the historical per-pass write/read-back loops.
    fn run_point_traffic(
        &self,
        platform: &mut Platform,
        ports: &[PortId],
        words: u64,
        voltage: Millivolts,
        telemetry: &Telemetry,
    ) -> Result<(Vec<PatternOutcome>, PointWork), ExperimentError> {
        let mut work = PointWork::default();
        let mut outcomes = Vec::with_capacity(self.config.patterns.len());
        for &pattern in &self.config.patterns {
            outcomes.push(self.run_pattern(
                platform, ports, words, pattern, voltage, &mut work, telemetry,
            )?);
        }
        Ok((outcomes, work))
    }

    /// The cached-mask fast path: every checked word's stuck-at masks come
    /// from the injector's region-tiled kernel exactly once per voltage,
    /// then get replayed across all `batch_size` passes and every pattern.
    /// The model's faults are deterministic at a fixed voltage, so every
    /// pass of the traffic path would observe identical counts — the
    /// replay is exact, not an approximation (asserted by the
    /// `cached_and_traffic_modes_agree` tests).
    fn run_point_cached(
        &self,
        platform: &mut Platform,
        ports: &[PortId],
        words: u64,
        voltage: Millivolts,
        telemetry: &Telemetry,
    ) -> Result<(Vec<PatternOutcome>, PointWork), ExperimentError> {
        let mask_sets = engine::build_mask_sets(
            platform,
            ports,
            words,
            self.config.sample_words,
            voltage,
            self.config.fault_field,
            self.config.kernel,
            &self.config.patterns,
            telemetry,
        )?;
        let mut work = PointWork {
            words: 0,
            masks: mask_sets.iter().map(|s| s.words_checked()).sum(),
        };
        let outcomes = self.fold_mask_outcomes(&mask_sets, &mut work);
        Ok((outcomes, work))
    }

    /// Replays a point's per-port mask sets across every pattern and all
    /// `batch_size` passes as pure mask/popcount work, accumulating the
    /// logical word transactions into `work`. Shared by the per-voltage
    /// cached path and the carried coupled-field path — given equal mask
    /// sets, their outcomes are equal by construction.
    fn fold_mask_outcomes(
        &self,
        mask_sets: &[engine::PortMasks],
        work: &mut PointWork,
    ) -> Vec<PatternOutcome> {
        let mut outcomes = Vec::with_capacity(self.config.patterns.len());
        for &pattern in &self.config.patterns {
            let mut per_port = Vec::with_capacity(mask_sets.len());
            let mut total = 0u64;
            for set in mask_sets {
                let stats = set.stats_for(pattern);
                work.words +=
                    (stats.words_written + stats.words_read) * self.config.batch_size as u64;
                total += stats.total_flips();
                per_port.push((set.port().as_u8(), stats));
            }
            // Every pass sees the same deterministic count.
            let run_totals = vec![total; self.config.batch_size];
            let summary = BatchSummary::of(&run_totals);
            let (flips_1to0, flips_0to1) = per_port.iter().fold((0, 0), |(a, b), (_, s)| {
                (a + s.flips_1to0, b + s.flips_0to1)
            });
            outcomes.push(PatternOutcome {
                pattern,
                mean_fault_count: summary.mean,
                batch_min: summary.min,
                batch_max: summary.max,
                flips_1to0,
                flips_0to1,
                per_port,
            });
        }
        outcomes
    }

    #[allow(clippy::too_many_arguments)]
    fn run_pattern(
        &self,
        platform: &mut Platform,
        ports: &[PortId],
        words: u64,
        pattern: DataPattern,
        voltage: Millivolts,
        work: &mut PointWork,
        telemetry: &Telemetry,
    ) -> Result<PatternOutcome, ExperimentError> {
        let jobs = self.build_jobs(platform, ports, words, pattern, voltage);
        let mut run_totals = Vec::with_capacity(self.config.batch_size);
        let mut last_run: Vec<(u8, PortStats)> = Vec::new();

        for _ in 0..self.config.batch_size {
            // The paper's reset_axi_ports().
            platform.device_mut().reset_stats();
            let results = engine::run_jobs(platform, &jobs, telemetry)?;
            let mut per_port = Vec::with_capacity(results.len());
            let mut total = 0u64;
            for (port, stats) in results {
                work.words += stats.words_written + stats.words_read;
                work.masks += stats.words_read;
                total += stats.total_flips();
                per_port.push((port.as_u8(), stats));
            }
            run_totals.push(total);
            last_run = per_port;
        }

        let summary = BatchSummary::of(&run_totals);
        let (flips_1to0, flips_0to1) = last_run.iter().fold((0, 0), |(a, b), (_, s)| {
            (a + s.flips_1to0, b + s.flips_0to1)
        });
        debug_assert!(
            !platform.is_crashed(),
            "tester only runs at operational voltages"
        );
        Ok(PatternOutcome {
            pattern,
            mean_fault_count: summary.mean,
            batch_min: summary.min,
            batch_max: summary.max,
            flips_1to0,
            flips_0to1,
            per_port: last_run,
        })
    }
}

/// Logical work performed at one voltage point, for throughput reporting.
#[derive(Debug, Default, Clone, Copy)]
struct PointWork {
    /// Word transactions exercised: writes plus read-checks, summed over
    /// all batch passes and patterns.
    words: u64,
    /// Stuck-at mask evaluations performed by the fault kernel.
    masks: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platform() -> Platform {
        Platform::builder().seed(7).build()
    }

    fn quick_tester() -> ReliabilityTester {
        ReliabilityTester::new(ReliabilityConfig::quick()).unwrap()
    }

    #[test]
    fn config_validation() {
        let mut c = ReliabilityConfig::quick();
        c.batch_size = 0;
        assert!(ReliabilityTester::new(c).is_err());

        let mut c = ReliabilityConfig::quick();
        c.patterns.clear();
        assert!(ReliabilityTester::new(c).is_err());

        let mut c = ReliabilityConfig::quick();
        c.scope = TestScope::Ports(vec![]);
        assert!(ReliabilityTester::new(c).is_err());

        // The coupled field has no traffic-mode kernel.
        let mut c = ReliabilityConfig::quick();
        c.fault_field = FaultFieldMode::MonotoneCoupled;
        c.mode = ExecutionMode::Traffic;
        assert!(ReliabilityTester::new(c).is_err());
    }

    #[test]
    fn coupled_incremental_sweep_matches_from_scratch_rescans() {
        let mut config = ReliabilityConfig::quick();
        config.fault_field = FaultFieldMode::MonotoneCoupled;
        config.scope = TestScope::Ports(vec![0, 1, 2, 3]);
        let mut rescan_config = config.clone();
        rescan_config.carry_forward = false;

        let incremental = ReliabilityTester::new(config)
            .unwrap()
            .run(&mut platform())
            .unwrap();
        let rescan = ReliabilityTester::new(rescan_config)
            .unwrap()
            .run(&mut platform())
            .unwrap();
        // Full per-point equality, including per-port statistics: the
        // carried working set must be bit-identical to re-enumerating
        // every point from scratch.
        assert_eq!(incremental.points, rescan.points);
        assert!(
            incremental
                .points
                .iter()
                .all(|p| p.mask_reuse.is_some() != p.crashed),
            "every live carried point must record its reuse ratio"
        );
        assert!(
            incremental
                .points
                .iter()
                .skip(1)
                .filter_map(|p| p.mask_reuse)
                .any(|r| r > 0.0),
            "a descending sweep must reuse carried masks after the first point"
        );
        assert!(
            rescan.points.iter().all(|p| p.mask_reuse.is_none()),
            "rescan points are not carried"
        );
    }

    #[test]
    fn auto_kernel_never_changes_results_vs_forced_scalar() {
        // The kernel backend is a pure performance knob: a quick sweep
        // under density-adaptive dispatch must be bit-identical to the
        // same sweep forced onto the scalar path, in both fault fields.
        for fault_field in [FaultFieldMode::PerVoltage, FaultFieldMode::MonotoneCoupled] {
            let mut auto = ReliabilityConfig::quick();
            auto.fault_field = fault_field;
            auto.kernel = KernelBackend::Auto;
            let mut scalar = auto.clone();
            scalar.kernel = KernelBackend::Scalar;

            let auto_report = ReliabilityTester::new(auto)
                .unwrap()
                .run(&mut platform())
                .unwrap();
            let scalar_report = ReliabilityTester::new(scalar)
                .unwrap()
                .run(&mut platform())
                .unwrap();
            assert_eq!(
                auto_report.points, scalar_report.points,
                "{fault_field:?}: auto and scalar kernels diverged"
            );
        }
    }

    #[test]
    fn coupled_rescan_sweep_shows_the_paper_phenomenology() {
        // The coupled field shares the analytic model, so the qualitative
        // results — guardband, growth, polarity split — must survive the
        // re-keying.
        let mut config = ReliabilityConfig::quick();
        config.fault_field = FaultFieldMode::MonotoneCoupled;
        config.carry_forward = false;
        let report = ReliabilityTester::new(config)
            .unwrap()
            .run(&mut platform())
            .unwrap();
        let totals: Vec<f64> = report
            .points
            .iter()
            .filter(|p| !p.crashed)
            .map(VoltagePoint::total_mean_faults)
            .collect();
        assert!(
            totals.windows(2).all(|w| w[0] <= w[1]),
            "non-monotone: {totals:?}"
        );
        assert!(totals.last().copied().unwrap_or(0.0) > 0.0);
        for point in report.points.iter().filter(|p| !p.crashed) {
            if let Some(ones) = point.outcome(DataPattern::AllOnes) {
                assert_eq!(ones.flips_0to1, 0);
            }
            if let Some(zeros) = point.outcome(DataPattern::AllZeros) {
                assert_eq!(zeros.flips_1to0, 0);
            }
        }
    }

    #[test]
    fn out_of_range_port_scope_names_the_bad_id() {
        let mut config = ReliabilityConfig::quick();
        config.scope = TestScope::Ports(vec![0, 40]);
        let err = ReliabilityTester::new(config)
            .unwrap()
            .run(&mut platform())
            .unwrap_err();
        let message = err.to_string();
        assert!(message.contains("40"), "must name the bad id: {message}");
        assert!(
            message.contains("0..32"),
            "must name the valid range: {message}"
        );
    }

    #[test]
    fn cached_and_traffic_modes_agree() {
        let mut config = ReliabilityConfig::quick();
        config.mode = ExecutionMode::Traffic;
        let traffic = ReliabilityTester::new(config.clone())
            .unwrap()
            .run(&mut platform())
            .unwrap();
        config.mode = ExecutionMode::CachedMasks;
        let cached = ReliabilityTester::new(config)
            .unwrap()
            .run(&mut platform())
            .unwrap();
        assert_eq!(traffic.checked_bits_per_run, cached.checked_bits_per_run);
        // Full equality per point, including per-port statistics — the
        // mask replay must be bit-identical to the literal procedure.
        assert_eq!(traffic.points, cached.points);
    }

    #[test]
    fn cached_and_traffic_modes_agree_in_sampled_mode() {
        let mut config = ReliabilityConfig::quick();
        config.sample_words = Some(64);
        config.batch_size = 2;
        config.mode = ExecutionMode::Traffic;
        let traffic = ReliabilityTester::new(config.clone())
            .unwrap()
            .run(&mut platform())
            .unwrap();
        config.mode = ExecutionMode::CachedMasks;
        let cached = ReliabilityTester::new(config)
            .unwrap()
            .run(&mut platform())
            .unwrap();
        assert_eq!(traffic.points, cached.points);
    }

    #[test]
    fn throughput_rates_are_reported_and_ignored_by_equality() {
        let report = quick_tester().run(&mut platform()).unwrap();
        for point in &report.points {
            assert!(!point.crashed);
            assert!(
                point.words_per_second.unwrap() > 0.0,
                "at {}",
                point.voltage
            );
            assert!(
                point.masks_per_second.unwrap() > 0.0,
                "at {}",
                point.voltage
            );
        }
        let mut scaled = report.points[0].clone();
        let original = scaled.clone();
        scaled.words_per_second = scaled.words_per_second.map(|r| r * 2.0);
        scaled.masks_per_second = None;
        assert_eq!(scaled, original, "throughput must not affect equality");
    }

    #[test]
    fn crashed_points_report_no_throughput() {
        // Regression: crashed points used to report `words_per_second: 0.0`,
        // which every renderer then displayed as a real measurement.
        let mut config = ReliabilityConfig::quick();
        config.sweep = VoltageSweep::new(Millivolts(820), Millivolts(800), Millivolts(10)).unwrap();
        config.batch_size = 1;
        config.words_per_pc = Some(16);
        let report = ReliabilityTester::new(config)
            .unwrap()
            .run(&mut platform())
            .unwrap();
        let crashed = report.at(Millivolts(800)).unwrap();
        assert!(crashed.crashed);
        assert_eq!(crashed.words_per_second, None);
        assert_eq!(crashed.masks_per_second, None);
        let live = report.at(Millivolts(820)).unwrap();
        assert!(live.words_per_second.is_some());
    }

    #[test]
    fn non_finite_rates_are_excluded() {
        assert_eq!(super::rate(10, 0.0), None, "infinite rate is not data");
        assert_eq!(super::rate(0, 0.0), None, "NaN rate is not data");
        assert_eq!(super::rate(10, 2.0), Some(5.0));
    }

    #[test]
    fn guardband_shows_no_faults() {
        let mut config = ReliabilityConfig::quick();
        config.sweep =
            VoltageSweep::new(Millivolts(1200), Millivolts(980), Millivolts(110)).unwrap();
        let report = ReliabilityTester::new(config)
            .unwrap()
            .run(&mut platform())
            .unwrap();
        for point in &report.points {
            assert!(!point.crashed);
            assert_eq!(
                point.total_mean_faults(),
                0.0,
                "faults at {}",
                point.voltage
            );
        }
    }

    #[test]
    fn fault_counts_grow_as_voltage_drops() {
        let report = quick_tester().run(&mut platform()).unwrap();
        let totals: Vec<f64> = report
            .points
            .iter()
            .filter(|p| !p.crashed)
            .map(VoltagePoint::total_mean_faults)
            .collect();
        assert!(
            totals.windows(2).all(|w| w[0] <= w[1]),
            "non-monotone: {totals:?}"
        );
        // Saturation at the bottom: both patterns show mass flips.
        let last = report.points.last().unwrap();
        assert_eq!(last.voltage, Millivolts(810));
        assert!(last.total_mean_faults() > 0.9 * report.checked_bits_per_run as f64);
    }

    #[test]
    fn polarity_separation_by_pattern() {
        let report = quick_tester().run(&mut platform()).unwrap();
        for point in report.points.iter().filter(|p| !p.crashed) {
            if let Some(ones) = point.outcome(DataPattern::AllOnes) {
                assert_eq!(ones.flips_0to1, 0, "all-1s shows only 1→0 flips");
            }
            if let Some(zeros) = point.outcome(DataPattern::AllZeros) {
                assert_eq!(zeros.flips_1to0, 0, "all-0s shows only 0→1 flips");
            }
        }
    }

    #[test]
    fn batches_are_deterministic_in_the_model() {
        // Stuck-at faults are deterministic, so every run in a batch sees
        // the same count: min == max.
        let report = quick_tester().run(&mut platform()).unwrap();
        for point in report.points.iter().filter(|p| !p.crashed) {
            for outcome in &point.outcomes {
                assert_eq!(outcome.batch_min, outcome.batch_max);
            }
        }
    }

    #[test]
    fn single_pc_scope_checks_one_port() {
        let mut config = ReliabilityConfig::quick();
        config.scope = TestScope::SinglePc(PcIndex::new(5).unwrap());
        config.batch_size = 1;
        let report = ReliabilityTester::new(config)
            .unwrap()
            .run(&mut platform())
            .unwrap();
        assert_eq!(report.checked_bits_per_run, 512 * 256);
        let point = report.at(Millivolts(850)).unwrap();
        for outcome in &point.outcomes {
            assert_eq!(outcome.per_port.len(), 1);
            assert_eq!(outcome.per_port[0].0, 5);
        }
    }

    #[test]
    fn sweep_below_critical_records_crash_and_recovers() {
        let mut config = ReliabilityConfig::quick();
        config.sweep = VoltageSweep::new(Millivolts(820), Millivolts(790), Millivolts(10)).unwrap();
        config.batch_size = 1;
        config.words_per_pc = Some(16);
        let mut p = platform();
        let report = ReliabilityTester::new(config).unwrap().run(&mut p).unwrap();
        assert!(!report.at(Millivolts(820)).unwrap().crashed);
        assert!(!report.at(Millivolts(810)).unwrap().crashed);
        assert!(report.at(Millivolts(800)).unwrap().crashed);
        assert!(report.at(Millivolts(790)).unwrap().crashed);
        assert_eq!(report.crash_voltage(), Some(Millivolts(800)));
        // The tester recovered the platform by power cycling.
        assert!(!p.is_crashed());
    }

    #[test]
    fn first_fault_voltage_ordering() {
        // At the reduced geometry the absolute onset sits lower than the
        // paper's 0.97 V (fewer bits), but the 1→0 onset must not trail the
        // 0→1 onset.
        let mut config = ReliabilityConfig::quick();
        config.sweep = VoltageSweep::new(Millivolts(970), Millivolts(850), Millivolts(10)).unwrap();
        config.batch_size = 1;
        config.words_per_pc = Some(2048);
        let report = ReliabilityTester::new(config)
            .unwrap()
            .run(&mut platform())
            .unwrap();
        let v10 = report.first_fault_voltage(DataPattern::AllOnes);
        let v01 = report.first_fault_voltage(DataPattern::AllZeros);
        assert!(v10.is_some(), "1→0 flips must appear in the unsafe region");
        assert!(
            v10 >= v01,
            "1→0 onset {v10:?} must not trail 0→1 onset {v01:?}"
        );
    }

    #[test]
    fn checkerboard_rate_is_the_mean_of_the_uniform_rates() {
        // Under stuck-at faults a checkerboard exposes half of each
        // polarity population, so its rate sits between (≈ the mean of)
        // the two uniform patterns' rates.
        let mut config = ReliabilityConfig::quick();
        config.sweep = VoltageSweep::new(Millivolts(860), Millivolts(860), Millivolts(10)).unwrap();
        config.batch_size = 1;
        config.patterns = vec![
            DataPattern::AllOnes,
            DataPattern::AllZeros,
            DataPattern::Checkerboard,
        ];
        config.words_per_pc = Some(2048);
        let report = ReliabilityTester::new(config)
            .unwrap()
            .run(&mut platform())
            .unwrap();
        let v = Millivolts(860);
        let ones = report.fault_rate(v, DataPattern::AllOnes).unwrap().as_f64();
        let zeros = report
            .fault_rate(v, DataPattern::AllZeros)
            .unwrap()
            .as_f64();
        let cb = report
            .fault_rate(v, DataPattern::Checkerboard)
            .unwrap()
            .as_f64();
        let mean = (ones + zeros) / 2.0;
        assert!(
            (cb / mean - 1.0).abs() < 0.1,
            "checkerboard {cb:e} vs mean {mean:e}"
        );
        assert!(cb >= ones.min(zeros) && cb <= ones.max(zeros));
    }

    #[test]
    fn report_lookup_helpers() {
        let report = quick_tester().run(&mut platform()).unwrap();
        assert!(report.at(Millivolts(970)).is_some());
        assert!(report.at(Millivolts(999)).is_none());
        let rate = report
            .fault_rate(Millivolts(810), DataPattern::AllZeros)
            .unwrap();
        assert!(rate.as_f64() > 0.4, "saturated 0→1 rate {rate:?}");
        assert!(report
            .fault_rate(Millivolts(810), DataPattern::Checkerboard)
            .is_none());
    }
}
