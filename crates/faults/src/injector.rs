//! The fault injector: turns the statistical model into concrete stuck-bit
//! masks for every word of the device, deterministically.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use hbm_device::{BankId, HbmGeometry, PcIndex, Word256, WordOffset};
use hbm_units::{Celsius, Millivolts, Volts};
use serde::{Deserialize, Serialize};

use crate::hash::{combine, gate_key, key_unit, unit, unit_pair};
use crate::params::FaultModelParams;
use crate::variation::ShiftTable;

/// The failure polarity of a faulty bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultPolarity {
    /// The bit reads 0 regardless of the stored value (observed as a 1→0
    /// flip when a 1 was written).
    StuckAtZero,
    /// The bit reads 1 regardless of the stored value (observed as a 0→1
    /// flip when a 0 was written).
    StuckAtOne,
}

/// Deterministic fault injector.
///
/// For every `(pseudo channel, word offset, bit)` and supply voltage, the
/// injector decides whether the bit is stuck and in which polarity, as a
/// pure function of the device seed. Key properties (all property-tested):
///
/// - **guardband**: no faults at or above V_min;
/// - **determinism**: identical masks for identical inputs;
/// - **monotonicity**: the faulty-bit set only grows as voltage drops;
/// - **exact rates**: the expected per-bit fault probability equals
///   `share_π × c_π(v_eff)` per polarity class.
///
/// # Performance
///
/// The query kernel is a three-level pipeline; each level removes work the
/// level below would otherwise repeat. With `W` words per pseudo channel,
/// `T` (PC, bank, row-region) tiles and `F` gated words at the queried
/// voltage:
///
/// 1. **Region-tile probability cache.** The local variation shift — and
///    therefore the class probabilities `(c0, c1)`, the word gates
///    `p_any = 1 − (1 − s·c)^256` and the conditional per-bit thresholds
///    `c / p_any` — is constant within a tile. They are computed once per
///    `(PC, voltage, temperature)` into a `T`-entry table (`O(T)` response
///    curve evaluations instead of `O(W)`) and invalidated when the
///    temperature changes. A per-word query is then a shift-and-mask tile
///    lookup.
/// 2. **Geometric skip enumeration of gated words.** The per-word gate
///    draws `unit(hash(seed, pc, offset, class))` never depend on voltage —
///    only the threshold `p_any` does. Per class and tile, the injector
///    keeps the words sorted by their gate draw (a voltage-independent,
///    build-once index), so the gated set at any voltage is a prefix found
///    by binary search: `O(T·log W + F)` per range scan instead of `O(W)`
///    gate hashes. Within the sorted prefix, the offset gaps between
///    consecutive gated words follow the geometric distribution implied by
///    `p_any` — this is the deterministic, replayable equivalent of drawing
///    skip distances from that distribution, so fault-free and low-fault
///    voltages cost `O(F)`, not `O(W)`. (Geometries too large to index fall
///    back to a per-word gate walk that still uses level 1.)
/// 3. **Per-bit enumeration.** Only the `F` gated words enumerate their 256
///    bits, each bit testing its class-conditional draw against `c / p_any`.
///    Because `c ↦ c/(1−(1−sc)^256)` is increasing (chord slope of a
///    concave function through the origin), monotonicity in voltage is
///    preserved and the per-bit marginal probability is exactly `s·c`.
///
/// A range scan therefore costs `O(T·log W + F·256)` after the `O(W log W)`
/// one-time index build, and a single-word query costs the tile lookup plus
/// two gate hashes. The pre-cache per-word path is kept as
/// [`FaultInjector::stuck_masks_per_word`] (selected at the experiment
/// layer by `ExecutionMode::Traffic`); property tests assert the two paths
/// are bit-identical.
///
/// # Examples
///
/// ```
/// use hbm_device::{HbmGeometry, PcIndex, Word256, WordOffset};
/// use hbm_faults::{FaultInjector, FaultModelParams};
/// use hbm_units::Millivolts;
///
/// # fn main() -> Result<(), hbm_device::DeviceError> {
/// let injector = FaultInjector::new(
///     FaultModelParams::date21(),
///     HbmGeometry::vcu128_reduced(),
///     99,
/// );
/// let pc = PcIndex::new(0)?;
/// let (stuck0, stuck1) = injector.stuck_masks(pc, WordOffset(0), Millivolts(850));
/// // Masks never overlap: a bit fails towards exactly one value.
/// assert!((stuck0 & stuck1).is_zero());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FaultInjector {
    params: FaultModelParams,
    geometry: HbmGeometry,
    seed: u64,
    temperature: Celsius,
    shift_table: ShiftTable,
    grid: TileGrid,
    /// Per-PC tile probability tables for the most recent
    /// `(voltage, temperature)`; rebuilt lazily on any mismatch.
    tile_cache: RwLock<Vec<Option<Arc<TileTable>>>>,
    /// Per-PC sorted gate-draw indexes; voltage- and temperature-free.
    gate_index: RwLock<Vec<Option<Arc<GateIndex>>>>,
    /// Lifetime tile-table lookups served from `tile_cache`.
    cache_hits: AtomicU64,
    /// Lifetime tile-table lookups that had to rebuild the table.
    cache_misses: AtomicU64,
}

/// Domain-separation tags for the hash streams.
const TAG_GATE0: u64 = 0x6761_7430;
const TAG_GATE1: u64 = 0x6761_7431;
const TAG_BIT: u64 = 0x6269_7400;

/// Largest pseudo channel (in words) the gate index is built for; larger
/// geometries fall back to per-word gate hashing (still tile-cached).
const MAX_INDEXED_WORDS_PER_PC: u64 = 1 << 16;

/// The (bank, row-region) tiling of a pseudo channel: the granularity at
/// which the variation shift — and so every derived probability — is
/// constant. Mirrors the bit layout of [`WordOffset::decode`].
#[derive(Debug, Clone, Copy)]
struct TileGrid {
    col_bits: u32,
    bank_bits: u32,
    region_rows: u32,
    regions_per_bank: u32,
    words_per_pc: u64,
    tile_count: usize,
}

impl TileGrid {
    fn new(geometry: HbmGeometry, region_rows: u32) -> Self {
        let region_rows = region_rows.max(1);
        let regions_per_bank = (geometry.rows_per_bank() - 1) / region_rows + 1;
        let banks = 1u32 << geometry.bank_bits();
        TileGrid {
            col_bits: geometry.col_bits(),
            bank_bits: geometry.bank_bits(),
            region_rows,
            regions_per_bank,
            words_per_pc: geometry.words_per_pc(),
            tile_count: (banks * regions_per_bank) as usize,
        }
    }

    /// Tile index of a word offset (same decode as [`WordOffset::decode`]).
    fn tile_of(&self, offset: u64) -> usize {
        assert!(
            offset < self.words_per_pc,
            "word offset {} out of range for geometry ({} words/pc)",
            offset,
            self.words_per_pc
        );
        let bank = ((offset >> self.col_bits) & ((1 << self.bank_bits) - 1)) as u32;
        let row = (offset >> (self.col_bits + self.bank_bits)) as u32;
        (bank * self.regions_per_bank + row / self.region_rows) as usize
    }

    /// Inverse of [`TileGrid::tile_of`]'s tile numbering.
    fn bank_and_region(&self, tile: usize) -> (BankId, u32) {
        let tile = tile as u32;
        (
            BankId((tile / self.regions_per_bank) as u16),
            tile % self.regions_per_bank,
        )
    }
}

/// Everything the bit-enumeration kernel needs about one tile at one
/// `(voltage, temperature)`.
#[derive(Debug, Clone, Copy)]
struct TileProbs {
    /// Class-conditional fault probabilities.
    c0: f64,
    c1: f64,
    /// Word-level any-fault gate probabilities, `1 − (1 − s·c)^256`.
    p_any0: f64,
    p_any1: f64,
    /// Conditional per-bit thresholds within a gated word, `(c/p_any).min(1)`.
    cond0: f64,
    cond1: f64,
}

/// One pseudo channel's tile probabilities at a fixed voltage and
/// temperature.
#[derive(Debug)]
struct TileTable {
    voltage: Millivolts,
    temperature: Celsius,
    tiles: Vec<TileProbs>,
}

/// One polarity class's gate draws for a pseudo channel, grouped by tile and
/// sorted by draw so the gated words at any voltage form a binary-searchable
/// prefix.
#[derive(Debug)]
struct GateClassIndex {
    /// Slice bounds of each tile in `keys`/`offsets` (length `tiles + 1`).
    starts: Vec<u32>,
    /// 53-bit gate keys (see [`gate_key`]), ascending within each tile.
    keys: Vec<u64>,
    /// Word offsets, parallel to `keys`.
    offsets: Vec<u32>,
}

impl GateClassIndex {
    /// The offsets of tile `tile` whose gate draw passes `p_any`.
    fn gated(&self, tile: usize, p_any: f64) -> &[u32] {
        let lo = self.starts[tile] as usize;
        let hi = self.starts[tile + 1] as usize;
        let n = self.keys[lo..hi].partition_point(|&k| key_unit(k) < p_any);
        &self.offsets[lo..lo + n]
    }
}

/// Both classes' gate indexes for one pseudo channel.
#[derive(Debug)]
struct GateIndex {
    class0: GateClassIndex,
    class1: GateClassIndex,
}

impl Clone for FaultInjector {
    fn clone(&self) -> Self {
        FaultInjector {
            params: self.params.clone(),
            geometry: self.geometry,
            seed: self.seed,
            temperature: self.temperature,
            shift_table: self.shift_table.clone(),
            grid: self.grid,
            // Cached tables are immutable snapshots behind `Arc`s, so clones
            // share them cheaply; each clone invalidates independently (its
            // own locks), so diverging temperatures cannot cross-pollute.
            tile_cache: RwLock::new(self.tile_cache.read().expect("tile cache poisoned").clone()),
            gate_index: RwLock::new(self.gate_index.read().expect("gate index poisoned").clone()),
            cache_hits: AtomicU64::new(self.cache_hits.load(Ordering::Relaxed)),
            cache_misses: AtomicU64::new(self.cache_misses.load(Ordering::Relaxed)),
        }
    }
}

impl FaultInjector {
    /// Creates an injector for a device geometry with a device seed (the
    /// seed identifies the simulated silicon specimen).
    ///
    /// # Panics
    ///
    /// Panics if `params` fail validation.
    #[must_use]
    pub fn new(params: FaultModelParams, geometry: HbmGeometry, seed: u64) -> Self {
        params.validate();
        let shift_table = ShiftTable::new(&params.variation, seed, geometry);
        let grid = TileGrid::new(geometry, params.variation.region_rows);
        let pcs = usize::from(geometry.total_pcs());
        FaultInjector {
            params,
            geometry,
            seed,
            temperature: Celsius::STUDY_AMBIENT,
            shift_table,
            grid,
            tile_cache: RwLock::new(vec![None; pcs]),
            gate_index: RwLock::new(vec![None; pcs]),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
        }
    }

    /// The model parameters.
    #[must_use]
    pub fn params(&self) -> &FaultModelParams {
        &self.params
    }

    /// The device geometry.
    #[must_use]
    pub fn geometry(&self) -> HbmGeometry {
        self.geometry
    }

    /// The device seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The modelled operating temperature.
    #[must_use]
    pub fn temperature(&self) -> Celsius {
        self.temperature
    }

    /// Lifetime `(hits, misses)` of the region-tile probability cache.
    ///
    /// A hit serves a tile-table lookup from the cached
    /// `(voltage, temperature)` snapshot; a miss rebuilds the table. The
    /// split is scheduling-dependent under parallel engine workers (whoever
    /// reaches a pseudo channel first takes the miss), so it belongs in a
    /// metrics registry, never in a deterministic trace.
    #[must_use]
    pub fn tile_cache_stats(&self) -> (u64, u64) {
        (
            self.cache_hits.load(Ordering::Relaxed),
            self.cache_misses.load(Ordering::Relaxed),
        )
    }

    /// Sets the operating temperature (the study keeps it at 35 ± 1 °C).
    ///
    /// Invalidates the region-tile probability cache: local shifts depend on
    /// temperature. The gate index survives — gate draws are functions of
    /// `(seed, PC, offset)` only.
    pub fn set_temperature(&mut self, temperature: Celsius) {
        self.temperature = temperature;
        for slot in self
            .tile_cache
            .write()
            .expect("tile cache poisoned")
            .iter_mut()
        {
            *slot = None;
        }
    }

    /// Total local variation shift of a word's location, in volts.
    fn local_shift_volts(&self, pc: PcIndex, offset: WordOffset) -> f64 {
        let decoded = offset.decode(self.geometry);
        let var = &self.params.variation;
        self.shift_table.pc_shift_volts(pc)
            + var.bank_shift_volts(self.seed, pc, decoded.bank)
            + var.region_shift_volts(self.seed, pc, decoded.bank, decoded.row)
            + var.temperature_shift_volts(self.temperature)
    }

    /// The tile probability table of `pc` at `supply` (below the guardband
    /// only), from the cache or built on demand.
    fn tile_table(&self, pc: PcIndex, supply: Millivolts) -> Arc<TileTable> {
        debug_assert!(supply < self.params.landmarks.v_min);
        {
            let cache = self.tile_cache.read().expect("tile cache poisoned");
            if let Some(table) = &cache[pc.as_usize()] {
                if table.voltage == supply && table.temperature == self.temperature {
                    self.cache_hits.fetch_add(1, Ordering::Relaxed);
                    return Arc::clone(table);
                }
            }
        }
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        let table = Arc::new(self.build_tile_table(pc, supply));
        self.tile_cache.write().expect("tile cache poisoned")[pc.as_usize()] =
            Some(Arc::clone(&table));
        table
    }

    fn build_tile_table(&self, pc: PcIndex, supply: Millivolts) -> TileTable {
        let var = &self.params.variation;
        let v = supply.to_volts();
        let pc_shift = self.shift_table.pc_shift_volts(pc);
        let temp_shift = var.temperature_shift_volts(self.temperature);
        let s0 = self.params.stuck0_share;
        let s1 = self.params.stuck1_share();
        let tiles = (0..self.grid.tile_count)
            .map(|tile| {
                let (bank, region) = self.grid.bank_and_region(tile);
                // Exactly the per-word path's shift composition — the term
                // order matters, f64 addition is not associative.
                let shift = pc_shift
                    + var.bank_shift_volts(self.seed, pc, bank)
                    + var.region_shift_volts_by_index(self.seed, pc, bank, region)
                    + temp_shift;
                let (c0, c1) = self.params.class_probabilities(v, Volts(shift));
                let p_any0 = p_any(s0 * c0);
                let p_any1 = p_any(s1 * c1);
                TileProbs {
                    c0,
                    c1,
                    p_any0,
                    p_any1,
                    cond0: if p_any0 > 0.0 {
                        (c0 / p_any0).min(1.0)
                    } else {
                        0.0
                    },
                    cond1: if p_any1 > 0.0 {
                        (c1 / p_any1).min(1.0)
                    } else {
                        0.0
                    },
                }
            })
            .collect();
        TileTable {
            voltage: supply,
            temperature: self.temperature,
            tiles,
        }
    }

    /// The gate index of `pc`, or `None` for geometries too large to index.
    fn pc_gate_index(&self, pc: PcIndex) -> Option<Arc<GateIndex>> {
        if self.grid.words_per_pc > MAX_INDEXED_WORDS_PER_PC {
            return None;
        }
        {
            let cache = self.gate_index.read().expect("gate index poisoned");
            if let Some(index) = &cache[pc.as_usize()] {
                return Some(Arc::clone(index));
            }
        }
        let index = Arc::new(GateIndex {
            class0: self.build_class_index(pc, TAG_GATE0),
            class1: self.build_class_index(pc, TAG_GATE1),
        });
        self.gate_index.write().expect("gate index poisoned")[pc.as_usize()] =
            Some(Arc::clone(&index));
        Some(index)
    }

    fn build_class_index(&self, pc: PcIndex, tag: u64) -> GateClassIndex {
        let pcu = u64::from(pc.as_u8());
        let mut entries: Vec<(u32, u64, u32)> = (0..self.grid.words_per_pc)
            .map(|w| {
                let tile = self.grid.tile_of(w) as u32;
                (tile, gate_key(combine(&[self.seed, pcu, w, tag])), w as u32)
            })
            .collect();
        entries.sort_unstable();
        let mut starts = vec![0u32; self.grid.tile_count + 1];
        for &(tile, _, _) in &entries {
            starts[tile as usize + 1] += 1;
        }
        let mut acc = 0u32;
        for s in &mut starts {
            acc += *s;
            *s = acc;
        }
        GateClassIndex {
            starts,
            keys: entries.iter().map(|&(_, key, _)| key).collect(),
            offsets: entries.iter().map(|&(_, _, w)| w).collect(),
        }
    }

    /// Class-conditional fault probabilities `(c_stuck0, c_stuck1)` at a
    /// location for a supply voltage, after guardband gating.
    #[must_use]
    pub fn class_probabilities(
        &self,
        pc: PcIndex,
        offset: WordOffset,
        supply: Millivolts,
    ) -> (f64, f64) {
        if supply >= self.params.landmarks.v_min {
            return (0.0, 0.0);
        }
        let table = self.tile_table(pc, supply);
        let probs = table.tiles[self.grid.tile_of(offset.0)];
        (probs.c0, probs.c1)
    }

    /// Reference implementation of [`FaultInjector::class_probabilities`]
    /// that recomputes the variation shift and response curves per word
    /// instead of consulting the tile cache. Kept as the validation oracle
    /// for the cached kernel.
    #[must_use]
    pub fn class_probabilities_per_word(
        &self,
        pc: PcIndex,
        offset: WordOffset,
        supply: Millivolts,
    ) -> (f64, f64) {
        if supply >= self.params.landmarks.v_min {
            return (0.0, 0.0);
        }
        let v = supply.to_volts();
        let shift = self.local_shift_volts(pc, offset);
        self.params.class_probabilities(v, Volts(shift))
    }

    /// Computes the stuck-at masks of one word at a supply voltage:
    /// `(stuck-at-0 mask, stuck-at-1 mask)`. The masks are disjoint.
    #[must_use]
    pub fn stuck_masks(
        &self,
        pc: PcIndex,
        offset: WordOffset,
        supply: Millivolts,
    ) -> (Word256, Word256) {
        if supply >= self.params.landmarks.v_min {
            return (Word256::ZERO, Word256::ZERO);
        }
        let table = self.tile_table(pc, supply);
        let probs = table.tiles[self.grid.tile_of(offset.0)];
        self.masks_from_probs(pc, offset.0, probs)
    }

    /// Reference per-word implementation of [`FaultInjector::stuck_masks`]:
    /// the pre-cache kernel, recomputing shift, probabilities and gates from
    /// scratch for every word. Property tests assert the cached kernel is
    /// bit-identical to this path; the experiment layer can select it via
    /// its traffic execution mode.
    #[must_use]
    pub fn stuck_masks_per_word(
        &self,
        pc: PcIndex,
        offset: WordOffset,
        supply: Millivolts,
    ) -> (Word256, Word256) {
        let (c0, c1) = self.class_probabilities_per_word(pc, offset, supply);
        if c0 == 0.0 && c1 == 0.0 {
            return (Word256::ZERO, Word256::ZERO);
        }

        let s0 = self.params.stuck0_share;
        let s1 = self.params.stuck1_share();
        // Word-level any-fault gates, one per polarity class.
        let p_any0 = p_any(s0 * c0);
        let p_any1 = p_any(s1 * c1);
        let base = &[self.seed, u64::from(pc.as_u8()), offset.0];
        let gate0 = p_any0 > 0.0 && unit(combine(&[base[0], base[1], base[2], TAG_GATE0])) < p_any0;
        let gate1 = p_any1 > 0.0 && unit(combine(&[base[0], base[1], base[2], TAG_GATE1])) < p_any1;
        if !gate0 && !gate1 {
            return (Word256::ZERO, Word256::ZERO);
        }

        // Conditional per-bit thresholds within a gated word.
        let cond0 = if gate0 { (c0 / p_any0).min(1.0) } else { 0.0 };
        let cond1 = if gate1 { (c1 / p_any1).min(1.0) } else { 0.0 };
        self.enumerate_bits(pc, offset.0, cond0, cond1)
    }

    /// The gate tests and bit enumeration for one word with its tile
    /// probabilities already in hand.
    fn masks_from_probs(&self, pc: PcIndex, w: u64, probs: TileProbs) -> (Word256, Word256) {
        if probs.c0 == 0.0 && probs.c1 == 0.0 {
            return (Word256::ZERO, Word256::ZERO);
        }
        let pcu = u64::from(pc.as_u8());
        let gate0 =
            probs.p_any0 > 0.0 && unit(combine(&[self.seed, pcu, w, TAG_GATE0])) < probs.p_any0;
        let gate1 =
            probs.p_any1 > 0.0 && unit(combine(&[self.seed, pcu, w, TAG_GATE1])) < probs.p_any1;
        if !gate0 && !gate1 {
            return (Word256::ZERO, Word256::ZERO);
        }
        self.enumerate_bits(
            pc,
            w,
            if gate0 { probs.cond0 } else { 0.0 },
            if gate1 { probs.cond1 } else { 0.0 },
        )
    }

    /// The per-bit draws of a gated word against the class-conditional
    /// thresholds (zero for an ungated class).
    fn enumerate_bits(&self, pc: PcIndex, w: u64, cond0: f64, cond1: f64) -> (Word256, Word256) {
        let s0 = self.params.stuck0_share;
        let pcu = u64::from(pc.as_u8());
        let mut stuck0 = Word256::ZERO;
        let mut stuck1 = Word256::ZERO;
        for bit in 0u32..Word256::BITS {
            let h = combine(&[self.seed, pcu, w, TAG_BIT, u64::from(bit)]);
            let (class_u, thresh_u) = unit_pair(h);
            if class_u < s0 {
                if thresh_u < cond0 {
                    stuck0 = stuck0.with_bit_set(bit);
                }
            } else if thresh_u < cond1 {
                stuck1 = stuck1.with_bit_set(bit);
            }
        }
        (stuck0, stuck1)
    }

    /// Applies the fault model to a stored word: what a read at `supply`
    /// observes.
    #[must_use]
    pub fn observe(
        &self,
        stored: Word256,
        pc: PcIndex,
        offset: WordOffset,
        supply: Millivolts,
    ) -> Word256 {
        let (stuck0, stuck1) = self.stuck_masks(pc, offset, supply);
        stored.with_stuck_bits(stuck0, stuck1)
    }

    /// Queries a single bit: `None` if healthy at `supply`, otherwise its
    /// polarity. Slower than [`FaultInjector::stuck_masks`] per word; meant
    /// for fault-map spot checks.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 256`.
    #[must_use]
    pub fn bit_fault(
        &self,
        pc: PcIndex,
        offset: WordOffset,
        bit: u32,
        supply: Millivolts,
    ) -> Option<FaultPolarity> {
        assert!(bit < Word256::BITS, "bit index {bit} out of range");
        let (stuck0, stuck1) = self.stuck_masks(pc, offset, supply);
        if stuck0.bit(bit) {
            Some(FaultPolarity::StuckAtZero)
        } else if stuck1.bit(bit) {
            Some(FaultPolarity::StuckAtOne)
        } else {
            None
        }
    }

    /// Runs `f` over every faulty word of the range, in unspecified order,
    /// through the skip-sampling kernel where the geometry is indexed.
    fn for_each_faulty<F: FnMut(u64, Word256, Word256)>(
        &self,
        pc: PcIndex,
        words: &Range<u64>,
        supply: Millivolts,
        mut f: F,
    ) {
        if words.is_empty() || supply >= self.params.landmarks.v_min {
            return;
        }
        assert!(
            words.end <= self.grid.words_per_pc,
            "word range end {} out of range for geometry ({} words/pc)",
            words.end,
            self.grid.words_per_pc
        );
        let table = self.tile_table(pc, supply);
        let pcu = u64::from(pc.as_u8());
        let Some(index) = self.pc_gate_index(pc) else {
            // Unindexed fallback: per-word gate hashes over the tile cache.
            for w in words.clone() {
                let probs = table.tiles[self.grid.tile_of(w)];
                let (s0, s1) = self.masks_from_probs(pc, w, probs);
                if !(s0.is_zero() && s1.is_zero()) {
                    f(w, s0, s1);
                }
            }
            return;
        };
        for (tile, probs) in table.tiles.iter().enumerate() {
            if probs.c0 == 0.0 && probs.c1 == 0.0 {
                continue;
            }
            // Words whose class-0 gate passes; their class-1 gate is an
            // extra hash test, exactly as in the per-word path.
            for &w32 in index.class0.gated(tile, probs.p_any0) {
                let w = u64::from(w32);
                if !words.contains(&w) {
                    continue;
                }
                let gate1 = probs.p_any1 > 0.0
                    && unit(combine(&[self.seed, pcu, w, TAG_GATE1])) < probs.p_any1;
                let (s0, s1) =
                    self.enumerate_bits(pc, w, probs.cond0, if gate1 { probs.cond1 } else { 0.0 });
                if !(s0.is_zero() && s1.is_zero()) {
                    f(w, s0, s1);
                }
            }
            // Words gated only by class 1 (class-0-gated ones were already
            // handled above — the recomputed gate-0 test reproduces the
            // prefix membership exactly).
            for &w32 in index.class1.gated(tile, probs.p_any1) {
                let w = u64::from(w32);
                if !words.contains(&w) {
                    continue;
                }
                let gate0 = probs.p_any0 > 0.0
                    && unit(combine(&[self.seed, pcu, w, TAG_GATE0])) < probs.p_any0;
                if gate0 {
                    continue;
                }
                let (s0, s1) = self.enumerate_bits(pc, w, 0.0, probs.cond1);
                if !(s0.is_zero() && s1.is_zero()) {
                    f(w, s0, s1);
                }
            }
        }
    }

    /// Counts faulty bits of each polarity over a contiguous word range of
    /// one pseudo channel: `(stuck-at-0, stuck-at-1)`.
    ///
    /// This is what a write/read-back test with both data patterns measures.
    #[must_use]
    pub fn count_range(&self, pc: PcIndex, words: Range<u64>, supply: Millivolts) -> (u64, u64) {
        let mut n0 = 0u64;
        let mut n1 = 0u64;
        self.for_each_faulty(pc, &words, supply, |_, s0, s1| {
            n0 += u64::from(s0.count_ones());
            n1 += u64::from(s1.count_ones());
        });
        (n0, n1)
    }

    /// Collects the faulty words of a range in ascending offset order,
    /// yielding `(offset, stuck0, stuck1)` per faulty word. This is the
    /// bulk-kernel entry point the cached-mask execution mode reuses across
    /// batch passes and data patterns.
    #[must_use]
    pub fn faulty_words(
        &self,
        pc: PcIndex,
        words: Range<u64>,
        supply: Millivolts,
    ) -> Vec<(WordOffset, Word256, Word256)> {
        let mut out = Vec::new();
        self.for_each_faulty(pc, &words, supply, |w, s0, s1| {
            out.push((WordOffset(w), s0, s1));
        });
        out.sort_unstable_by_key(|&(offset, _, _)| offset.0);
        out
    }

    /// Iterates over the *faulty* words of a range in ascending offset
    /// order, yielding `(offset, stuck0, stuck1)` and skipping clean words —
    /// the fast path for building fault maps and health scans in the
    /// sparse-fault regime.
    pub fn scan_faulty(
        &self,
        pc: PcIndex,
        words: Range<u64>,
        supply: Millivolts,
    ) -> Box<dyn Iterator<Item = (WordOffset, Word256, Word256)> + '_> {
        if supply >= self.params.landmarks.v_min || words.is_empty() {
            return Box::new(std::iter::empty());
        }
        if self.grid.words_per_pc <= MAX_INDEXED_WORDS_PER_PC {
            return Box::new(self.faulty_words(pc, words, supply).into_iter());
        }
        // Unindexed geometries keep the lazy walk (no allocation
        // proportional to the fault count).
        let table = self.tile_table(pc, supply);
        Box::new(words.filter_map(move |w| {
            let probs = table.tiles[self.grid.tile_of(w)];
            let (s0, s1) = self.masks_from_probs(pc, w, probs);
            (!(s0.is_zero() && s1.is_zero())).then_some((WordOffset(w), s0, s1))
        }))
    }
}

/// `1 − (1 − p)^256` computed stably for tiny `p`.
fn p_any(p_bit: f64) -> f64 {
    if p_bit <= 0.0 {
        return 0.0;
    }
    if p_bit >= 1.0 {
        return 1.0;
    }
    // 1 − (1−p)^256 = −expm1(256·ln1p(−p)), stable for tiny p.
    (-(256.0 * f64::ln_1p(-p_bit)).exp_m1()).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn injector() -> FaultInjector {
        FaultInjector::new(
            FaultModelParams::date21(),
            HbmGeometry::vcu128_reduced(),
            1234,
        )
    }

    fn pc(i: u8) -> PcIndex {
        PcIndex::new(i).unwrap()
    }

    #[test]
    fn p_any_matches_naive() {
        for p in [1e-12f64, 1e-9, 1e-6, 1e-3, 0.01, 0.1, 0.5, 0.999, 1.0] {
            let naive = 1.0 - (1.0 - p).powi(256);
            let fast = p_any(p);
            assert!((fast - naive).abs() < 1e-9, "p = {p}: {fast} vs {naive}");
        }
        assert_eq!(p_any(0.0), 0.0);
        // Tiny probabilities must not underflow to zero.
        assert!(p_any(1e-300) > 0.0);
    }

    #[test]
    fn guardband_is_fault_free() {
        let inj = injector();
        for v in [1200u32, 1100, 1000, 990, 980] {
            for w in 0..256 {
                let (s0, s1) = inj.stuck_masks(pc(5), WordOffset(w), Millivolts(v));
                assert!(s0.is_zero() && s1.is_zero(), "fault at {v} mV");
            }
        }
    }

    #[test]
    fn saturation_makes_everything_faulty() {
        let inj = injector();
        for w in 0..64 {
            let (s0, s1) = inj.stuck_masks(pc(0), WordOffset(w), Millivolts(820));
            assert_eq!((s0 | s1).count_ones(), 256, "word {w} not fully faulty");
            assert!((s0 & s1).is_zero());
        }
    }

    #[test]
    fn polarity_split_near_configured_share() {
        let inj = injector();
        let (n0, n1) = inj.count_range(pc(0), 0..2048, Millivolts(820));
        let total = (n0 + n1) as f64;
        let share0 = n0 as f64 / total;
        assert!((share0 - 0.47).abs() < 0.02, "share0 = {share0}");
    }

    #[test]
    fn tile_cache_stats_count_hits_and_misses() {
        let inj = injector();
        assert_eq!(inj.tile_cache_stats(), (0, 0));
        // First lookup at a voltage builds the table, repeats hit it.
        inj.stuck_masks(pc(0), WordOffset(0), Millivolts(880));
        inj.stuck_masks(pc(0), WordOffset(1), Millivolts(880));
        let (hits, misses) = inj.tile_cache_stats();
        assert_eq!(misses, 1, "one build for the first (PC, voltage)");
        assert!(hits >= 1, "second word must be served from the cache");
        // A new voltage invalidates that PC's entry: another miss.
        inj.stuck_masks(pc(0), WordOffset(0), Millivolts(870));
        assert_eq!(inj.tile_cache_stats().1, 2);
        // Clones inherit the counters but diverge independently.
        let cloned = inj.clone();
        assert_eq!(cloned.tile_cache_stats(), inj.tile_cache_stats());
        cloned.stuck_masks(pc(0), WordOffset(0), Millivolts(870));
        assert_eq!(cloned.tile_cache_stats().0, inj.tile_cache_stats().0 + 1);
    }

    #[test]
    fn masks_are_deterministic() {
        let a = injector();
        let b = injector();
        for w in [0u64, 17, 4091] {
            assert_eq!(
                a.stuck_masks(pc(9), WordOffset(w), Millivolts(880)),
                b.stuck_masks(pc(9), WordOffset(w), Millivolts(880))
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = injector();
        let b = FaultInjector::new(
            FaultModelParams::date21(),
            HbmGeometry::vcu128_reduced(),
            4321,
        );
        let mut differs = false;
        for w in 0..512 {
            if a.stuck_masks(pc(0), WordOffset(w), Millivolts(850))
                != b.stuck_masks(pc(0), WordOffset(w), Millivolts(850))
            {
                differs = true;
                break;
            }
        }
        assert!(differs, "distinct specimens must have distinct fault maps");
    }

    #[test]
    fn fault_set_monotone_in_voltage() {
        let inj = injector();
        // Sweep down in 10 mV steps; the union mask may only grow.
        for w in 0..128u64 {
            let mut prev = Word256::ZERO;
            let mut v = Millivolts(980);
            while v >= Millivolts(820) {
                let (s0, s1) = inj.stuck_masks(pc(2), WordOffset(w), v);
                let union = s0 | s1;
                assert_eq!(union & prev, prev, "fault set shrank at {v} word {w}");
                prev = union;
                v = v.saturating_sub(Millivolts(10));
            }
        }
    }

    #[test]
    fn observe_applies_polarities() {
        let inj = injector();
        let v = Millivolts(830);
        let w = WordOffset(3);
        let (s0, s1) = inj.stuck_masks(pc(1), w, v);
        // All-ones written: stuck-at-0 bits flip to 0.
        let ones = inj.observe(Word256::ONES, pc(1), w, v);
        let (f10, f01) = ones.flips_from(Word256::ONES);
        assert_eq!(f10, s0.count_ones());
        assert_eq!(f01, 0);
        // All-zeros written: stuck-at-1 bits flip to 1.
        let zeros = inj.observe(Word256::ZERO, pc(1), w, v);
        let (f10, f01) = zeros.flips_from(Word256::ZERO);
        assert_eq!(f01, s1.count_ones());
        assert_eq!(f10, 0);
    }

    #[test]
    fn bit_fault_agrees_with_masks() {
        let inj = injector();
        let v = Millivolts(845);
        let w = WordOffset(11);
        let (s0, s1) = inj.stuck_masks(pc(3), w, v);
        for bit in 0..256 {
            let expected = if s0.bit(bit) {
                Some(FaultPolarity::StuckAtZero)
            } else if s1.bit(bit) {
                Some(FaultPolarity::StuckAtOne)
            } else {
                None
            };
            assert_eq!(inj.bit_fault(pc(3), w, bit, v), expected);
        }
    }

    #[test]
    fn measured_rate_tracks_model_rate() {
        // At a mid-range voltage, the empirical rate over a decent sample
        // should approximate s0·c0 + s1·c1 averaged over variation.
        let inj = injector();
        let v = Millivolts(860);
        let words = 8192u64;
        let (n0, n1) = inj.count_range(pc(7), 0..words, v);
        let measured = (n0 + n1) as f64 / (words as f64 * 256.0);

        // Average the analytic rate over the same words.
        let mut expected = 0.0;
        for w in 0..words {
            let (c0, c1) = inj.class_probabilities(pc(7), WordOffset(w), v);
            expected += 0.47 * c0 + 0.53 * c1;
        }
        expected /= words as f64;

        let ratio = measured / expected;
        assert!(
            (0.8..1.25).contains(&ratio),
            "measured {measured:.3e} vs expected {expected:.3e}"
        );
    }

    #[test]
    fn hotter_device_is_weaker() {
        let mut hot = injector();
        hot.set_temperature(Celsius(55.0));
        let cold = injector();
        let v = Millivolts(900);
        let (h0, h1) = hot.count_range(pc(0), 0..4096, v);
        let (c0, c1) = cold.count_range(pc(0), 0..4096, v);
        assert!(h0 + h1 >= c0 + c1, "hot {h0}+{h1} vs cold {c0}+{c1}");
    }

    #[test]
    fn scan_faulty_agrees_with_full_enumeration() {
        let inj = injector();
        let v = Millivolts(880);
        let scanned: Vec<_> = inj.scan_faulty(pc(4), 0..4096, v).collect();
        // Same totals as the counting walk.
        let (n0, n1) = inj.count_range(pc(4), 0..4096, v);
        let scan0: u64 = scanned
            .iter()
            .map(|(_, s0, _)| u64::from(s0.count_ones()))
            .sum();
        let scan1: u64 = scanned
            .iter()
            .map(|(_, _, s1)| u64::from(s1.count_ones()))
            .sum();
        assert_eq!((scan0, scan1), (n0, n1));
        // Every yielded word really is faulty, and none is yielded twice.
        let mut seen = std::collections::HashSet::new();
        for (offset, s0, s1) in &scanned {
            assert!(!(*s0 | *s1).is_zero());
            assert!(seen.insert(offset.0));
        }
        // In the guardband, the scan yields nothing.
        assert_eq!(inj.scan_faulty(pc(4), 0..4096, Millivolts(990)).count(), 0);
    }

    #[test]
    fn conditional_threshold_monotone_in_c() {
        // c / p_any(s·c) must be increasing in c so fault sets are monotone.
        let s = 0.47;
        let mut last = 0.0;
        for i in 1..=10_000 {
            let c = f64::from(i) / 10_000.0;
            let ratio = c / p_any(s * c);
            assert!(ratio >= last, "non-monotone at c = {c}");
            last = ratio;
        }
    }

    #[test]
    fn cached_kernel_matches_reference_path() {
        let inj = injector();
        for v in [1000u32, 990, 979, 960, 930, 900, 870, 840, 820] {
            for w in [0u64, 1, 31, 32, 511, 512, 4095, 8191] {
                let v = Millivolts(v);
                let w = WordOffset(w);
                assert_eq!(
                    inj.stuck_masks(pc(6), w, v),
                    inj.stuck_masks_per_word(pc(6), w, v),
                    "masks diverge at {v} {w}"
                );
                assert_eq!(
                    inj.class_probabilities(pc(6), w, v),
                    inj.class_probabilities_per_word(pc(6), w, v),
                    "probabilities diverge at {v} {w}"
                );
            }
        }
    }

    #[test]
    fn count_range_matches_per_word_walk() {
        let inj = injector();
        for v in [990u32, 940, 880, 830] {
            let v = Millivolts(v);
            let range = 100u64..2100;
            let mut n0 = 0u64;
            let mut n1 = 0u64;
            for w in range.clone() {
                let (s0, s1) = inj.stuck_masks_per_word(pc(4), WordOffset(w), v);
                n0 += u64::from(s0.count_ones());
                n1 += u64::from(s1.count_ones());
            }
            assert_eq!(inj.count_range(pc(4), range, v), (n0, n1), "at {v}");
        }
    }

    #[test]
    fn temperature_change_invalidates_region_cache() {
        let mut inj = injector();
        let v = Millivolts(900);
        // Populate the tile cache at ambient …
        let cold = inj.count_range(pc(0), 0..4096, v);
        // … then heat the device: cached tile probabilities must be rebuilt,
        // matching an injector that never cached at ambient.
        inj.set_temperature(Celsius(55.0));
        let mut fresh = injector();
        fresh.set_temperature(Celsius(55.0));
        assert_eq!(
            inj.count_range(pc(0), 0..4096, v),
            fresh.count_range(pc(0), 0..4096, v)
        );
        assert_ne!(
            inj.count_range(pc(0), 0..4096, v),
            cold,
            "a 20 °C rise must change the fault count at 900 mV"
        );
        for w in 0..64 {
            assert_eq!(
                inj.stuck_masks(pc(0), WordOffset(w), v),
                inj.stuck_masks_per_word(pc(0), WordOffset(w), v),
                "stale tile cache leaked after temperature change"
            );
        }
    }

    #[test]
    fn clones_invalidate_independently() {
        let mut original = injector();
        let v = Millivolts(900);
        let at_ambient = original.count_range(pc(0), 0..512, v); // warm cache
        let clone = original.clone();
        original.set_temperature(Celsius(55.0));
        assert_eq!(
            clone.count_range(pc(0), 0..512, v),
            at_ambient,
            "heating the original must not touch the clone's cache"
        );
    }

    #[test]
    fn faulty_words_sorted_and_matches_scan() {
        let inj = injector();
        let v = Millivolts(870);
        let bulk = inj.faulty_words(pc(2), 0..4096, v);
        assert!(bulk.windows(2).all(|w| w[0].0 .0 < w[1].0 .0));
        let scanned: Vec<_> = inj.scan_faulty(pc(2), 0..4096, v).collect();
        assert_eq!(bulk, scanned);
    }

    #[test]
    fn unindexed_geometry_uses_tile_cache_fallback() {
        // 131072 words/pc exceeds the gate-index cap, exercising the
        // per-word fallback over the tile cache.
        let geometry = HbmGeometry::vcu128().scaled(64);
        assert!(geometry.words_per_pc() > MAX_INDEXED_WORDS_PER_PC);
        let inj = FaultInjector::new(FaultModelParams::date21(), geometry, 77);
        for v in [990u32, 900, 850] {
            let v = Millivolts(v);
            let mut n0 = 0u64;
            let mut n1 = 0u64;
            for w in 0..2048 {
                let (s0, s1) = inj.stuck_masks_per_word(pc(1), WordOffset(w), v);
                n0 += u64::from(s0.count_ones());
                n1 += u64::from(s1.count_ones());
            }
            assert_eq!(inj.count_range(pc(1), 0..2048, v), (n0, n1), "at {v}");
            let lazy: Vec<_> = inj.scan_faulty(pc(1), 0..2048, v).collect();
            assert_eq!(
                lazy,
                inj.faulty_words(pc(1), 0..2048, v),
                "lazy scan and bulk collection diverge at {v}"
            );
        }
    }
}
