//! Per-pseudo-channel shards: disjoint mutable views of the device used by
//! the parallel sweep engine.
//!
//! With the switching network disabled (the study's configuration) every AXI
//! port reaches exactly one pseudo channel, so the 32 PCs are independent
//! state machines: their arrays do not overlap and their access counters are
//! private. [`HbmDevice::pc_shards`] exploits that to hand out one mutable
//! borrow per pseudo channel, all alive at the same time, which lets a sweep
//! engine drive every PC from its own worker thread without locks and without
//! `unsafe`.
//!
//! A shard snapshots the port-enable flag and supply voltage at creation
//! time. Voltage changes and port reconfiguration are sweep-level operations
//! that happen *between* measurement batches, never during one, so the
//! snapshot is exact for the lifetime of a batch.

use hbm_units::Millivolts;

use crate::address::{PortId, WordOffset};
use crate::device::HbmDevice;
use crate::error::DeviceError;
use crate::stack::PseudoChannel;
use crate::word::Word256;

/// Exclusive access to one pseudo channel through its direct-mapped AXI port.
///
/// Behaves exactly like [`HbmDevice::axi_read`]/[`HbmDevice::axi_write`] on a
/// switch-disabled device: a disabled port rejects traffic, reads and writes
/// update the PC's access counters. The device-level crash check happened
/// when the shard set was created; a shard cannot observe a crash because
/// supply changes are serialized between batches.
///
/// # Examples
///
/// ```
/// use hbm_device::{HbmDevice, HbmGeometry, Word256, WordOffset};
///
/// # fn main() -> Result<(), hbm_device::DeviceError> {
/// let mut device = HbmDevice::new(HbmGeometry::vcu128_reduced());
/// let mut shards = device.pc_shards()?;
/// // All 32 shards are borrowed simultaneously and independently writable.
/// for shard in &mut shards {
///     shard.write(WordOffset(0), Word256::ONES)?;
/// }
/// assert_eq!(shards[7].read(WordOffset(0))?, Word256::ONES);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PcShard<'a> {
    pc: &'a mut PseudoChannel,
    port: PortId,
    enabled: bool,
    supply: Millivolts,
}

impl PcShard<'_> {
    /// The AXI port this shard models (direct-mapped to its pseudo channel).
    #[must_use]
    pub fn port(&self) -> PortId {
        self.port
    }

    /// Whether the port was enabled when the shard set was created.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Supply voltage snapshotted at shard creation.
    #[must_use]
    pub fn supply(&self) -> Millivolts {
        self.supply
    }

    /// Reads one word through the shard's port.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::PortDisabled`] if the port is disabled, or
    /// [`DeviceError::AddressOutOfRange`] for offsets beyond the channel
    /// capacity.
    pub fn read(&mut self, offset: WordOffset) -> Result<Word256, DeviceError> {
        self.check_enabled()?;
        self.pc.read(offset)
    }

    /// Writes one word through the shard's port.
    ///
    /// # Errors
    ///
    /// Same as [`PcShard::read`].
    pub fn write(&mut self, offset: WordOffset, word: Word256) -> Result<(), DeviceError> {
        self.check_enabled()?;
        self.pc.write(offset, word)
    }

    fn check_enabled(&self) -> Result<(), DeviceError> {
        if self.enabled {
            Ok(())
        } else {
            Err(DeviceError::PortDisabled {
                index: self.port.as_u8(),
            })
        }
    }
}

impl HbmDevice {
    /// Splits the device into one [`PcShard`] per pseudo channel, in global
    /// index order.
    ///
    /// Every shard is a live mutable borrow, so the whole set can be
    /// distributed across worker threads; the borrows are disjoint by
    /// construction (each pseudo channel owns a non-overlapping array).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::Crashed`] if the device has crashed, or
    /// [`DeviceError::ShardingUnavailable`] if the switching network is
    /// enabled — with the switch active a port may reach foreign pseudo
    /// channels, so per-PC partitioning would not be race-free.
    pub fn pc_shards(&mut self) -> Result<Vec<PcShard<'_>>, DeviceError> {
        if self.is_crashed() {
            return Err(DeviceError::Crashed);
        }
        if self.switch().is_enabled() {
            return Err(DeviceError::ShardingUnavailable);
        }
        let supply = self.supply();
        let enabled: Vec<bool> = (0..self.geometry().total_pcs())
            .map(|i| {
                PortId::new(i)
                    .map(|port| self.ports().is_enabled(port))
                    .unwrap_or(false)
            })
            .collect();
        let shards: Vec<PcShard<'_>> = self
            .stacks_mut()
            .iter_mut()
            .flat_map(|stack| stack.pseudo_channels_mut())
            .map(|pc| {
                let index = pc.index().as_u8();
                PcShard {
                    pc,
                    port: PortId::new(index).expect("pc index is a valid port index"),
                    enabled: enabled.get(usize::from(index)).copied().unwrap_or(false),
                    supply,
                }
            })
            .collect();
        Ok(shards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axi::SwitchingNetwork;
    use crate::geometry::HbmGeometry;
    use hbm_units::Millivolts;

    #[test]
    fn shards_cover_all_pcs_in_order() {
        let mut device = HbmDevice::new(HbmGeometry::vcu128_reduced());
        let shards = device.pc_shards().unwrap();
        let ports: Vec<u8> = shards.iter().map(|s| s.port().as_u8()).collect();
        assert_eq!(ports, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn shard_traffic_matches_axi_traffic() {
        let mut via_axi = HbmDevice::new(HbmGeometry::vcu128_reduced());
        let mut via_shards = HbmDevice::new(HbmGeometry::vcu128_reduced());

        for i in 0..32 {
            let port = PortId::new(i).unwrap();
            let w = Word256::splat(u64::from(i) + 1);
            via_axi.axi_write(port, WordOffset(3), w).unwrap();
            assert_eq!(via_axi.axi_read(port, WordOffset(3)).unwrap(), w);
        }
        {
            let mut shards = via_shards.pc_shards().unwrap();
            for shard in &mut shards {
                let w = Word256::splat(u64::from(shard.port().as_u8()) + 1);
                shard.write(WordOffset(3), w).unwrap();
                assert_eq!(shard.read(WordOffset(3)).unwrap(), w);
            }
        }
        assert_eq!(via_axi.total_stats(), via_shards.total_stats());
        for i in 0..32 {
            let pc = crate::address::PcIndex::new(i).unwrap();
            assert_eq!(
                via_axi.pseudo_channel(pc).stats(),
                via_shards.pseudo_channel(pc).stats()
            );
        }
    }

    #[test]
    fn disabled_port_rejected_by_shard() {
        let mut device = HbmDevice::new(HbmGeometry::vcu128_reduced());
        device
            .ports_mut()
            .set_enabled(PortId::new(5).unwrap(), false);
        let mut shards = device.pc_shards().unwrap();
        assert_eq!(
            shards[5].read(WordOffset(0)).unwrap_err(),
            DeviceError::PortDisabled { index: 5 }
        );
        assert!(!shards[5].is_enabled());
        assert!(shards[6].is_enabled());
    }

    #[test]
    fn crashed_device_refuses_to_shard() {
        let mut device = HbmDevice::new(HbmGeometry::vcu128_reduced());
        device.set_supply(Millivolts(790));
        assert_eq!(device.pc_shards().unwrap_err(), DeviceError::Crashed);
    }

    #[test]
    fn enabled_switch_refuses_to_shard() {
        let mut device = HbmDevice::new(HbmGeometry::vcu128_reduced());
        device.set_switch(SwitchingNetwork::enabled());
        assert_eq!(
            device.pc_shards().unwrap_err(),
            DeviceError::ShardingUnavailable
        );
    }

    #[test]
    fn shards_snapshot_the_supply() {
        let mut device = HbmDevice::new(HbmGeometry::vcu128_reduced());
        device.set_supply(Millivolts(900));
        let shards = device.pc_shards().unwrap();
        assert!(shards.iter().all(|s| s.supply() == Millivolts(900)));
    }
}
