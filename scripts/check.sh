#!/usr/bin/env bash
# Repo gate: lint, formatting, and the tier-1 build/test cycle.
# Run from anywhere; operates on the workspace containing this script.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> cargo bench --workspace --no-run"
cargo bench --workspace --no-run

# Kernel determinism gate: the cached fault kernel must stay bit-identical
# to the per-word reference path. The case count is fixed in-file
# (with_cases) so this run is reproducible.
echo "==> kernel bit-identity property tests"
cargo test -q -p hbm-faults --test properties kernel_

# Resilience gate: kill-at-every-point resume bit-identity, retry backoff,
# quarantine records, and the hbmctl exit-code contract.
echo "==> resilient sweep runtime tests"
cargo test -q --test resilience
cargo test -q -p hbm-undervolt --test cli

# Smoke: a checkpointed supervised sweep resumes from its own file.
echo "==> hbmctl sweep --checkpoint/--resume smoke"
ckpt="$(mktemp -u /tmp/hbmctl-check-XXXXXX.json)"
./target/release/hbmctl sweep --from 900 --to 880 --step 10 --words 8 \
    --checkpoint "$ckpt" >/dev/null
./target/release/hbmctl sweep --from 900 --to 880 --step 10 --words 8 \
    --checkpoint "$ckpt" --resume >/dev/null
rm -f "$ckpt"

echo "All checks passed."
