//! Cross-crate determinism and specimen-variation tests: the same seed must
//! reproduce identical measurements end-to-end; different seeds must behave
//! like different silicon specimens (different fault maps, same landmarks).

use hbm_undervolt_suite::device::{PcIndex, PortId, WordOffset};
use hbm_undervolt_suite::faults::FaultMap;
use hbm_undervolt_suite::traffic::{DataPattern, MacroProgram, TrafficGenerator};
use hbm_undervolt_suite::undervolt::{GuardbandFinder, Platform};
use hbm_units::{Millivolts, Ratio};

fn run_probe(seed: u64, mv: u32) -> (u64, u64) {
    let mut p = Platform::builder().seed(seed).build();
    p.set_voltage(Millivolts(mv)).unwrap();
    let port = PortId::new(4).unwrap();
    let mut total = (0, 0);
    for pattern in [DataPattern::AllOnes, DataPattern::AllZeros] {
        let program = MacroProgram::write_then_check(0..2048, pattern);
        let mut tg = TrafficGenerator::new(port);
        let stats = tg.run(&program, &mut p.port(port)).unwrap();
        total.0 += stats.flips_1to0;
        total.1 += stats.flips_0to1;
    }
    total
}

#[test]
fn identical_seeds_reproduce_identical_measurements() {
    for mv in [900u32, 870, 840] {
        assert_eq!(run_probe(11, mv), run_probe(11, mv), "at {mv} mV");
    }
}

#[test]
fn different_seeds_are_different_specimens() {
    // At a mid voltage the fault maps of different specimens differ.
    let a = run_probe(1, 860);
    let b = run_probe(2, 860);
    assert_ne!(a, b, "distinct specimens must have distinct fault maps");
}

#[test]
fn landmarks_are_stable_across_specimens() {
    // The paper's V_min and V_critical are properties of the design, not of
    // a particular die; every specimen reproduces them.
    for seed in [0u64, 1, 7, 99, 12345] {
        let mut p = Platform::builder().seed(seed).build();
        let report = GuardbandFinder::new().run(&mut p).unwrap();
        assert_eq!(report.v_min, Millivolts(980), "seed {seed}");
        assert_eq!(report.v_critical, Millivolts(810), "seed {seed}");
    }
}

#[test]
fn fault_maps_serialize_reproducibly() {
    let build = || {
        let p = Platform::builder().seed(21).build();
        FaultMap::from_predictor(
            p.full_scale_predictor(),
            Millivolts(980),
            Millivolts(900),
            Millivolts(20),
        )
    };
    let a = serde_json::to_string(&build()).unwrap();
    let b = serde_json::to_string(&build()).unwrap();
    assert_eq!(a, b);
}

#[test]
fn sensitive_pcs_are_sensitive_on_every_specimen() {
    // PC4/PC5/PC18–20 are design-level weak spots in the model (as the
    // paper observed on its specimen); they rank above the median on every
    // seed.
    for seed in [5u64, 50, 500] {
        let p = Platform::builder().seed(seed).build();
        let predictor = p.full_scale_predictor();
        let v = Millivolts(930);
        let mut rates: Vec<(u8, f64)> = (0..32u8)
            .map(|i| {
                (
                    i,
                    predictor
                        .pc_rates(PcIndex::new(i).unwrap(), v)
                        .union()
                        .as_f64(),
                )
            })
            .collect();
        rates.sort_by(|a, b| a.1.total_cmp(&b.1));
        let top_half: Vec<u8> = rates[16..].iter().map(|&(i, _)| i).collect();
        for sensitive in [4u8, 5, 18, 19, 20] {
            assert!(
                top_half.contains(&sensitive),
                "seed {seed}: PC{sensitive} must rank in the weak half"
            );
        }
    }
}

#[test]
fn reads_are_repeatable_at_fixed_voltage() {
    // Stuck-at faults: re-reading the same word yields the same value, as
    // many times as you like (the fault map is stable, not noisy).
    let mut p = Platform::builder().seed(13).build();
    p.set_voltage(Millivolts(855)).unwrap();
    let port = PortId::new(9).unwrap();
    let mut access = p.port(port);
    use hbm_undervolt_suite::device::Word256;
    use hbm_undervolt_suite::traffic::MemoryPort;
    access.write(WordOffset(17), Word256::ONES).unwrap();
    let first = access.read(WordOffset(17)).unwrap();
    for _ in 0..10 {
        assert_eq!(access.read(WordOffset(17)).unwrap(), first);
    }
}

#[test]
fn fault_fraction_independent_of_geometry_scale() {
    // Rates are intensive: the reduced-geometry predictor tracks the
    // full-scale one closely at every voltage.
    let p = Platform::builder().seed(7).build();
    for mv in [880u32, 860, 850] {
        let reduced = p.predictor().device_rate(Millivolts(mv)).as_f64();
        let full = p
            .full_scale_predictor()
            .device_rate(Millivolts(mv))
            .as_f64();
        let ratio = reduced / full;
        assert!(
            (0.7..1.4).contains(&ratio),
            "at {mv} mV: {reduced} vs {full}"
        );
    }
    assert_eq!(p.predictor().device_rate(Millivolts(1000)), Ratio::ZERO);
}
