//! Property and concurrency tests for the serving pipeline: the
//! concurrent runtime's output byte stream is identical to sequential
//! serving at every worker count (even under adversarial completion
//! jitter), and the single-flight rescan cache collapses K concurrent
//! identical model-envelope misses into exactly one kernel rescan.

use std::sync::Barrier;

use hbm_fleet::{
    artifact, model, sweep, FleetConfig, FleetRequest, FleetResponse, FleetService, FleetStore,
    PipelineOptions,
};
use hbm_units::Millivolts;
use proptest::prelude::*;

/// A small fleet whose knot grid straddles the crash-floor band
/// (810 ± 15 mV), so queries cover crashed and clean knots alike.
fn small_config(devices: u32, base_seed: u64) -> FleetConfig {
    FleetConfig {
        devices,
        base_seed,
        workers: 1,
        words_per_pc: 4,
        from: Millivolts(960),
        down_to: Millivolts(820),
        step: Millivolts(20),
        weak_reference: Millivolts(900),
        ..FleetConfig::default()
    }
}

/// A compressed (model-only) store: recommends route model-first and fall
/// back to on-demand kernel rescans, exercising the rescan cache.
fn model_only_store(devices: u32, base_seed: u64) -> FleetStore {
    let cfg = small_config(devices, base_seed);
    let records = sweep::run(&cfg).unwrap().records;
    let exact = FleetStore::from_bytes(artifact::encode(&cfg, &records)).unwrap();
    FleetStore::from_bytes(model::compress_store(&exact, false).unwrap()).unwrap()
}

/// A deterministic mixed request workload: valid recommends across the
/// device range and target-rate spectrum, summaries, fidelity probes,
/// config errors (zero rate, unknown device), parse errors, and blank
/// lines — every response class the wire format can produce.
fn mixed_request_lines(devices: u32, salt: u64) -> Vec<String> {
    let mut lines = Vec::new();
    let rates = [1e-1, 1e-2, 1e-3, 1e-4];
    for i in 0..devices {
        let rate = rates[((u64::from(i) + salt) % rates.len() as u64) as usize];
        lines.push(format!(
            "{{\"Recommend\":{{\"device_id\":{i},\"target_rate\":{rate},\"min_pcs\":16}}}}"
        ));
        if i % 2 == 0 {
            lines.push("\"Summary\"".to_owned());
        }
        if i % 3 == 0 {
            lines.push(String::new());
            lines.push(format!(
                "{{\"Recommend\":{{\"device_id\":{},\"target_rate\":0.01,\"min_pcs\":16}}}}",
                devices + 5
            ));
        }
    }
    lines.push("{\"Recommend\":{\"device_id\":0,\"target_rate\":0.0,\"min_pcs\":16}}".to_owned());
    lines.push("not json".to_owned());
    lines.push("\"Summary\"".to_owned());
    lines
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole invariant: for every worker count, with adversarial
    /// per-request completion jitter shuffling the order workers finish
    /// in, the concurrent pipeline's output bytes equal sequential
    /// serving's — and so do the request-level serving counters.
    #[test]
    fn concurrent_serving_is_byte_identical_to_sequential(
        devices in 3u32..8,
        base_seed in 0u64..100_000,
        jitter_seed in any::<u64>(),
    ) {
        let store = model_only_store(devices, base_seed);
        let input = mixed_request_lines(devices, base_seed).join("\n") + "\n";

        let sequential_service = FleetService::new(store.clone());
        let mut sequential_out = Vec::new();
        let sequential_stats = hbm_fleet::serve::serve(
            &sequential_service,
            input.as_bytes(),
            &mut sequential_out,
        ).unwrap();

        for workers in [1usize, 2, 4, 8] {
            let service = FleetService::new(store.clone());
            let mut out = Vec::new();
            let options = PipelineOptions {
                workers,
                completion_jitter: Some(jitter_seed),
            };
            let pipeline = hbm_fleet::serve_concurrent(
                &service,
                input.as_bytes(),
                &mut out,
                &options,
            ).unwrap();
            prop_assert_eq!(
                std::str::from_utf8(&out).unwrap(),
                std::str::from_utf8(&sequential_out).unwrap(),
                "output diverged at {} workers",
                workers
            );
            prop_assert_eq!(
                pipeline.serve.queries_served,
                sequential_stats.queries_served,
                "request count diverged at {} workers",
                workers
            );
            prop_assert_eq!(pipeline.workers, workers);
            prop_assert_eq!(
                pipeline.latency.count,
                sequential_stats.queries_served,
                "every request must be timed"
            );
        }
    }
}

/// Finds a `(device, rate)` whose recommend misses the model envelope on
/// a model-only store and falls back to a kernel rescan (the expensive
/// path the single-flight cache exists for).
fn find_rescanning_request(store: &FleetStore) -> Option<FleetRequest> {
    for device_id in 0..store.len() as u32 {
        for rate in [1e-1, 1e-2, 1e-3, 1e-4, 1e-5] {
            let service = FleetService::new(store.clone());
            let request = FleetRequest::Recommend {
                device_id,
                target_rate: rate,
                min_pcs: 16,
            };
            if let FleetResponse::Error(err) = service.handle(&request) {
                panic!("probe request failed: {}", err.message);
            }
            if service.stats().kernel_rescans > 0 {
                return Some(request);
            }
        }
    }
    None
}

#[test]
fn concurrent_identical_misses_share_one_kernel_rescan() {
    let store = model_only_store(6, 41);
    let request = find_rescanning_request(&store)
        .expect("some query on a model-only store must miss the envelope");

    const CLIENTS: usize = 8;
    let service = FleetService::new(store);
    let barrier = Barrier::new(CLIENTS);
    let responses: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                scope.spawn(|| {
                    barrier.wait();
                    match service.handle(&request) {
                        FleetResponse::Recommendation(rec) => format!("{rec:?}"),
                        other => panic!("unexpected response: {other:?}"),
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for response in &responses[1..] {
        assert_eq!(
            response, &responses[0],
            "waiters must see the leader's result"
        );
    }
    let stats = service.stats();
    assert_eq!(
        stats.kernel_rescans, 1,
        "K concurrent identical misses must run exactly one rescan: {stats:?}"
    );
    assert_eq!(
        stats.rescan_cache_hits + stats.singleflight_waits,
        (CLIENTS - 1) as u64,
        "the other clients are cache hits or single-flight waits: {stats:?}"
    );
}

#[test]
fn repeated_misses_hit_the_cache_instead_of_rescanning() {
    let store = model_only_store(6, 41);
    let request = find_rescanning_request(&store)
        .expect("some query on a model-only store must miss the envelope");

    let service = FleetService::new(store);
    let first = service.handle(&request);
    for _ in 0..4 {
        assert_eq!(service.handle(&request), first);
    }
    let stats = service.stats();
    assert_eq!(stats.kernel_rescans, 1, "{stats:?}");
    assert_eq!(stats.rescan_cache_hits, 4, "{stats:?}");
}

#[test]
fn zero_cache_budget_rescans_every_miss() {
    let store = model_only_store(6, 41);
    let request = find_rescanning_request(&store)
        .expect("some query on a model-only store must miss the envelope");

    let service = FleetService::with_rescan_cache(store, 0);
    let first = service.handle(&request);
    for _ in 0..2 {
        assert_eq!(service.handle(&request), first);
    }
    let stats = service.stats();
    assert_eq!(stats.kernel_rescans, 3, "{stats:?}");
    assert_eq!(stats.rescan_cache_hits, 0, "{stats:?}");
}
