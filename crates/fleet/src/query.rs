//! The fleet query API: per-device voltage recommendations straight off a
//! columnar artifact.
//!
//! Semantics: for device `X` and target fault rate `Z`, walk the knot grid
//! downward and keep the lowest knot that (a) sits on or above the
//! device's crash floor and (b) still leaves at least `min_pcs` pseudo
//! channels whose union fault rate is ≤ `Z`. The usable-PC list at that
//! knot is the answer — the fleet-scale analogue of the single-device
//! `FaultMap::usable_pcs` contract.
//!
//! The walk itself is shared by three evidence sources:
//!
//! * **exact** — the artifact's FAULTS column, every cell decidable;
//! * **model** — the compressed [`crate::model::DeviceModel`], each cell
//!   judged through its fidelity envelope and allowed to abstain
//!   ([`CellVerdict::Ambiguous`]) when the envelope straddles the target;
//! * **rescan** — the coupled-carry kernel re-deriving the exact counts on
//!   demand from the header's reconstructed [`FleetConfig`], for stores
//!   whose exact columns were dropped at compression time.
//!
//! A model-path answer is returned only when every knot the walk depends
//! on is decidable, so it is always identical to the exact answer.

use hbm_power::HbmPowerModel;
use hbm_units::{Millivolts, Ratio};
use serde::{Deserialize, Serialize};

use crate::artifact::FleetStore;
use crate::config::{FleetConfig, FleetError};
use crate::model::DeviceModel;
use crate::record::CRASHED_KNOT;
use crate::sweep;

/// One fleet query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetQuery {
    /// Device to look up.
    pub device_id: u32,
    /// Highest acceptable union fault rate per pseudo channel.
    pub target_rate: f64,
    /// Minimum pseudo channels that must stay usable.
    pub min_pcs: usize,
}

/// A voltage recommendation for one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    /// Device the recommendation is for.
    pub device_id: u32,
    /// Recommended supply in millivolts.
    pub voltage_mv: u16,
    /// Pseudo channels usable at the recommendation (rate ≤ target).
    pub usable_pcs: Vec<u8>,
    /// The device's crash floor, for operator context.
    pub crash_mv: u16,
    /// Power-saving factor versus 1.20 V nominal under the paper's fitted
    /// quadratic model (fault-free, same utilization).
    pub saving_factor: f64,
}

/// What one evidence source can say about a single `(pc, knot)` cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CellVerdict {
    /// The cell's union fault rate is provably ≤ the target.
    Usable,
    /// The cell's union fault rate is provably > the target (or the knot
    /// sits below the device's crash floor).
    Unusable,
    /// The evidence cannot decide — only the model path emits this, when
    /// its error envelope straddles the target.
    Ambiguous,
}

/// The shared recommendation walk over one device's knot grid.
///
/// Returns the chosen knot index and its usable-PC list, or `None` when
/// an [`CellVerdict::Ambiguous`] cell makes the answer undecidable: either
/// a knot below the best provably-qualifying one *might* qualify, or the
/// chosen knot's own usable list is uncertain. Exact evidence never
/// abstains, so the exact walk always returns `Some`.
fn recommend_walk(
    knots: &[Millivolts],
    crash: Millivolts,
    pcs: usize,
    min_pcs: usize,
    mut verdict: impl FnMut(usize, usize) -> CellVerdict,
) -> Option<(usize, Vec<u8>)> {
    let mut best: Option<usize> = None;
    let mut possible: Option<usize> = None;
    for (k, &v) in knots.iter().enumerate() {
        if v < crash {
            break;
        }
        let (mut usable, mut ambiguous) = (0usize, 0usize);
        for pc in 0..pcs {
            match verdict(pc, k) {
                CellVerdict::Usable => usable += 1,
                CellVerdict::Ambiguous => ambiguous += 1,
                CellVerdict::Unusable => {}
            }
        }
        if usable >= min_pcs {
            best = Some(k);
        }
        if usable + ambiguous >= min_pcs {
            possible = Some(k);
        }
    }
    // A knot below `best` might still qualify under the unproven side of
    // the envelope: the lowest-qualifying-knot answer is undecidable.
    if possible != best {
        return None;
    }
    // No knot satisfies the query: recommend the top knot — the sweep
    // proves nothing above it, so that is the safest stored answer.
    let k = best.unwrap_or(0);
    let mut usable = Vec::new();
    if knots[k] >= crash {
        for pc in 0..pcs {
            match verdict(pc, k) {
                CellVerdict::Usable => usable.push(pc as u8),
                CellVerdict::Ambiguous => return None,
                CellVerdict::Unusable => {}
            }
        }
    }
    Some((k, usable))
}

/// Assembles the public recommendation from a finished walk.
fn finish(store: &FleetStore, row: usize, k: usize, usable: Vec<u8>) -> Recommendation {
    let voltage = store.knots()[k];
    let power = HbmPowerModel::date21();
    Recommendation {
        device_id: store.device_id(row),
        voltage_mv: voltage.as_u32() as u16,
        usable_pcs: usable,
        crash_mv: store.crash_mv(row),
        saving_factor: power.saving_factor(voltage, Ratio::ONE, Ratio::ZERO),
    }
}

/// Answers a validated query from the exact FAULTS column.
///
/// # Panics
///
/// Panics when the store has no exact columns.
pub(crate) fn recommend_exact(
    store: &FleetStore,
    row: usize,
    target_rate: f64,
    min_pcs: usize,
) -> Recommendation {
    let pcs = store.meta().pc_count as usize;
    let bits = store.meta().bits_per_pc() as f64;
    let crash = Millivolts(u32::from(store.crash_mv(row)));
    let (k, usable) = recommend_walk(store.knots(), crash, pcs, min_pcs, |pc, k| {
        let count = store.fault(row, pc, k);
        if count != CRASHED_KNOT && f64::from(count) / bits <= target_rate {
            CellVerdict::Usable
        } else {
            CellVerdict::Unusable
        }
    })
    .expect("exact evidence never abstains");
    finish(store, row, k, usable)
}

/// Answers a validated query from the compressed model alone, through its
/// fidelity envelope. `None` means the envelope cannot decide and the
/// caller must fall back to exact evidence.
///
/// Comparisons happen in rate space (`count / bits ≤ target`), the same
/// expression the exact path evaluates; division by the shared positive
/// denominator is monotone, so an envelope-decided cell always agrees
/// with the exact verdict.
pub(crate) fn recommend_model(
    store: &FleetStore,
    row: usize,
    model: &DeviceModel,
    target_rate: f64,
    min_pcs: usize,
) -> Option<Recommendation> {
    let meta = *store.meta();
    let knots = store.knots().to_vec();
    let pcs = meta.pc_count as usize;
    let bits = meta.bits_per_pc() as f64;
    let crash = Millivolts(u32::from(store.crash_mv(row)));
    let (k, usable) = recommend_walk(&knots, crash, pcs, min_pcs, |pc, k| {
        let m = model.predicted_count(&meta, &knots, pc, k);
        let (lo, hi) = model.count_bounds(m, bits);
        if hi / bits <= target_rate {
            CellVerdict::Usable
        } else if lo / bits > target_rate {
            CellVerdict::Unusable
        } else {
            CellVerdict::Ambiguous
        }
    })?;
    Some(finish(store, row, k, usable))
}

/// Answers a validated query from the model's point estimate, with no
/// envelope and no abstention — the fidelity report uses this to score
/// how often the raw curve alone reproduces the exact recommendation.
pub(crate) fn recommend_model_raw(
    store: &FleetStore,
    row: usize,
    model: &DeviceModel,
    target_rate: f64,
    min_pcs: usize,
) -> Recommendation {
    let meta = *store.meta();
    let knots = store.knots().to_vec();
    let pcs = meta.pc_count as usize;
    let bits = meta.bits_per_pc() as f64;
    let crash = Millivolts(u32::from(store.crash_mv(row)));
    let (k, usable) = recommend_walk(&knots, crash, pcs, min_pcs, |pc, k| {
        let m = model.predicted_count(&meta, &knots, pc, k);
        if m / bits <= target_rate {
            CellVerdict::Usable
        } else {
            CellVerdict::Unusable
        }
    })
    .expect("point estimates never abstain");
    finish(store, row, k, usable)
}

/// Re-derives one device's exact fault-count row (pseudo-channel-major,
/// every knot) with the coupled-carry kernel, from the artifact header
/// alone. This is the expensive half of a rescan — a pure function of
/// `(store header, device_id)`, which is what makes it safe to memoize in
/// the serving layer's single-flight rescan cache.
///
/// # Errors
///
/// [`FleetError::Artifact`] when the store's header cannot be turned back
/// into a sweep configuration.
pub(crate) fn rescan_counts(store: &FleetStore, row: usize) -> Result<Vec<u16>, FleetError> {
    let cfg = FleetConfig::from_meta(store.meta(), store.knots())?;
    let spec = cfg.device_spec(store.device_id(row));
    Ok(sweep::characterize_device(&cfg, spec).faults)
}

/// Answers a validated query from an already-derived exact count row
/// (the cheap half of a rescan — the walk over memoized counts).
///
/// # Panics
///
/// Panics when `counts` is not a full `pcs × knots` row for this store.
pub(crate) fn recommend_from_counts(
    store: &FleetStore,
    row: usize,
    counts: &[u16],
    target_rate: f64,
    min_pcs: usize,
) -> Recommendation {
    let pcs = store.meta().pc_count as usize;
    let kn = store.knots().len();
    assert_eq!(counts.len(), pcs * kn, "count row shape");
    let bits = store.meta().bits_per_pc() as f64;
    let crash = Millivolts(u32::from(store.crash_mv(row)));
    let (k, usable) = recommend_walk(store.knots(), crash, pcs, min_pcs, |pc, k| {
        let count = counts[pc * kn + k];
        if count != CRASHED_KNOT && f64::from(count) / bits <= target_rate {
            CellVerdict::Usable
        } else {
            CellVerdict::Unusable
        }
    })
    .expect("exact evidence never abstains");
    finish(store, row, k, usable)
}

/// Answers a validated query by re-deriving the device's exact count row
/// with the coupled-carry kernel — the fallback for compressed stores
/// whose exact columns were dropped. [`rescan_counts`] followed by
/// [`recommend_from_counts`]; the serving layer splits the two so the
/// expensive half can be cached.
///
/// # Errors
///
/// [`FleetError::Artifact`] when the store's header cannot be turned back
/// into a sweep configuration.
pub(crate) fn recommend_rescan(
    store: &FleetStore,
    row: usize,
    target_rate: f64,
    min_pcs: usize,
) -> Result<Recommendation, FleetError> {
    let counts = rescan_counts(store, row)?;
    Ok(recommend_from_counts(
        store,
        row,
        &counts,
        target_rate,
        min_pcs,
    ))
}

impl FleetStore {
    /// Answers `query` against this artifact.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownDevice`] when the device is absent;
    /// [`FleetError::Config`] when the query itself is malformed (target
    /// rate outside `[0, 1]`, or `min_pcs` exceeding the artifact's PC
    /// count). A device whose curves never satisfy the query falls back
    /// to the highest swept knot — the artifact proves nothing above it.
    #[deprecated(
        since = "0.8.0",
        note = "route queries through `fleet::api::FleetRequest::Recommend` \
                and `fleet::serve::FleetService`, which add model-first \
                serving and the stricter open-interval validation"
    )]
    pub fn recommend(&self, query: FleetQuery) -> Result<Recommendation, FleetError> {
        if !(0.0..=1.0).contains(&query.target_rate) {
            return Err(FleetError::Config(format!(
                "target rate must be in [0, 1], got {}",
                query.target_rate
            )));
        }
        let pcs = self.meta().pc_count as usize;
        if query.min_pcs > pcs {
            return Err(FleetError::Config(format!(
                "min-pcs {} exceeds the artifact's {pcs} pseudo channels",
                query.min_pcs
            )));
        }
        let row = self.find(query.device_id)?;
        if self.has_exact_counts() {
            return Ok(recommend_exact(self, row, query.target_rate, query.min_pcs));
        }
        let model = self
            .model(row)
            .expect("decodable artifacts carry FAULTS or MODEL");
        match recommend_model(self, row, &model, query.target_rate, query.min_pcs) {
            Some(rec) => Ok(rec),
            None => recommend_rescan(self, row, query.target_rate, query.min_pcs),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)]

    use super::*;
    use crate::artifact::encode;
    use crate::config::FleetConfig;
    use crate::model::compress_store;
    use crate::sweep;

    fn store() -> (FleetConfig, FleetStore) {
        let cfg = FleetConfig {
            devices: 4,
            workers: 1,
            words_per_pc: 16,
            from: Millivolts(1000),
            down_to: Millivolts(860),
            step: Millivolts(20),
            weak_reference: Millivolts(900),
            ..FleetConfig::default()
        };
        let records = sweep::run(&cfg).unwrap().records;
        let bytes = encode(&cfg, &records);
        (cfg, FleetStore::from_bytes(bytes).unwrap())
    }

    #[test]
    fn strict_queries_recommend_higher_voltages() {
        let (_, store) = store();
        let loose = store
            .recommend(FleetQuery {
                device_id: 1,
                target_rate: 1e-2,
                min_pcs: 24,
            })
            .unwrap();
        let strict = store
            .recommend(FleetQuery {
                device_id: 1,
                target_rate: 0.0,
                min_pcs: 32,
            })
            .unwrap();
        assert!(strict.voltage_mv >= loose.voltage_mv);
        assert!(strict.usable_pcs.len() >= 32);
        assert!(loose.voltage_mv >= strict.crash_mv);
        assert!(loose.saving_factor >= strict.saving_factor);
    }

    #[test]
    fn zero_tolerance_full_width_matches_v_min() {
        let (_, store) = store();
        for row in 0..store.len() {
            let rec = store
                .recommend(FleetQuery {
                    device_id: store.device_id(row),
                    target_rate: 0.0,
                    min_pcs: store.meta().pc_count as usize,
                })
                .unwrap();
            let v_min = store.v_min_mv(row);
            if v_min != 0 {
                assert_eq!(rec.voltage_mv, v_min, "device row {row}");
            }
        }
    }

    #[test]
    fn malformed_queries_are_config_errors() {
        let (_, store) = store();
        for query in [
            FleetQuery {
                device_id: 0,
                target_rate: -0.5,
                min_pcs: 1,
            },
            FleetQuery {
                device_id: 0,
                target_rate: 1.5,
                min_pcs: 1,
            },
            FleetQuery {
                device_id: 0,
                target_rate: 0.1,
                min_pcs: 33,
            },
        ] {
            assert!(matches!(store.recommend(query), Err(FleetError::Config(_))));
        }
        assert!(matches!(
            store.recommend(FleetQuery {
                device_id: 99,
                target_rate: 0.1,
                min_pcs: 1,
            }),
            Err(FleetError::UnknownDevice(99))
        ));
    }

    #[test]
    fn model_path_agrees_with_exact_when_decided() {
        let (_, exact) = store();
        let compressed = FleetStore::from_bytes(compress_store(&exact, false).unwrap()).unwrap();
        for row in 0..exact.len() {
            let model = compressed.model(row).unwrap();
            for (target, min_pcs) in [(1e-3, 32usize), (1e-2, 16), (0.5, 1)] {
                if let Some(rec) = recommend_model(&compressed, row, &model, target, min_pcs) {
                    let want = recommend_exact(&exact, row, target, min_pcs);
                    assert_eq!(rec, want, "row {row} target {target} min_pcs {min_pcs}");
                }
            }
        }
    }

    #[test]
    fn rescan_reproduces_exact_recommendations() {
        let (_, exact) = store();
        let compressed = FleetStore::from_bytes(compress_store(&exact, false).unwrap()).unwrap();
        assert!(!compressed.has_exact_counts());
        for row in 0..exact.len() {
            for (target, min_pcs) in [(1e-3, 32usize), (1e-2, 16)] {
                let rescanned = recommend_rescan(&compressed, row, target, min_pcs).unwrap();
                let want = recommend_exact(&exact, row, target, min_pcs);
                assert_eq!(rescanned, want, "row {row} target {target}");
            }
        }
    }
}
